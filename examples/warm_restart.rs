//! Durable serving — crash, restart, and carry on warm.
//!
//! A [`RankingService`] opened with `open_durable` journals every
//! mutation (context events, rule changes, new individuals) to a
//! checksummed write-ahead log and can checkpoint its whole state — KB,
//! rules, the shared evaluation tier, and the set of live tenants — into
//! a snapshot file. After a crash, `open_durable` finds the newest valid
//! snapshot, replays the WAL suffix, and re-derives the warm tenants'
//! rule bindings, so the first post-boot request pays no cold bind and
//! every score is bit-identical to the uninterrupted run.
//!
//! The same directory also feeds read-only followers: the last section
//! opens a [`ReplicaService`] against the live writer, tails its WAL,
//! and verifies the follower serves the writer's exact scores.
//!
//! Run with: `cargo run --example warm_restart`

use capra::prelude::*;

fn main() -> Result<(), CoreError> {
    let dir = std::env::temp_dir().join(format!("capra-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── Boot a durable service and build the world through it ──────────
    // Every call below lands in a `wal-<seq>.log` segment before the
    // function returns (FlushPolicy::EveryRecord = one fsync per
    // mutation; EveryN trades a bounded tail-loss window for fewer
    // syncs).
    let service = RankingService::open_durable(
        LineageEngine::new(),
        ServiceConfig::default(),
        &dir,
        FlushPolicy::EveryRecord,
    )?;

    let viewers: Vec<_> = (0..3)
        .map(|i| {
            let v = service.individual(&format!("viewer-{i}"));
            service
                .assert(v, Fact::ConceptProb("Weekend".into(), 0.3 + 0.2 * i as f64))
                .unwrap();
            v
        })
        .collect();
    let programs: Vec<_> = (0..5)
        .map(|i| {
            let p = service.individual(&format!("programme-{i}"));
            service
                .assert(p, Fact::Concept("TvProgram".into()))
                .unwrap();
            service
                .assert(
                    p,
                    Fact::ConceptProb("HumanInterest".into(), 0.15 + 0.15 * i as f64),
                )
                .unwrap();
            p
        })
        .collect();
    let context = service.parse("Weekend")?;
    let preference = service.parse("TvProgram AND HumanInterest")?;
    service.add_rule(PreferenceRule::new(
        "weekend-hi",
        context,
        preference,
        Score::new(0.8)?,
    ))?;

    // Serve some traffic (this warms the tenants' binding caches and the
    // shared evaluation tier), then checkpoint.
    for &v in &viewers {
        service.rank(v, &programs, 3)?;
    }
    service.save_snapshot()?;

    // Post-snapshot traffic lands only in the WAL.
    service.assert(viewers[0], Fact::ConceptProb("Weekend".into(), 0.95))?;
    let before: Vec<DocScore> = service.rank(viewers[0], &programs, 3)?;
    let wal = service.stats().wal;
    println!("── before the crash ──");
    println!(
        "  {} WAL records appended ({} bytes), snapshot on disk",
        wal.records_appended, wal.bytes_appended
    );

    // ── Crash. ─────────────────────────────────────────────────────────
    drop(service);

    // ── Restart: snapshot + WAL suffix → the same service, warm ────────
    let service = RankingService::open_durable(
        LineageEngine::new(),
        ServiceConfig::default(),
        &dir,
        FlushPolicy::EveryRecord,
    )?;
    let wal = service.stats().wal;
    println!("\n── after restart ──");
    println!(
        "  replayed {} WAL records past the snapshot, {} lost",
        wal.records_replayed, wal.records_truncated
    );

    // The tenants that were live at snapshot time booted warm: their
    // first rank re-derives nothing.
    let misses_at_boot = service
        .tenant_stats(viewers[0])
        .expect("snapshot tenants boot live")
        .bindings
        .misses;
    let after = service.rank(viewers[0], &programs, 3)?;
    let misses_after = service.tenant_stats(viewers[0]).unwrap().bindings.misses;
    println!(
        "  first post-boot rank: {} new cold binds",
        misses_after - misses_at_boot
    );

    // And the ranking is bit-identical to the uninterrupted run.
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    println!("  top-3 bit-identical to the pre-crash run:");
    for s in &after {
        println!(
            "    {} ({:.4})",
            service.kb().voc.individual_name(s.doc),
            s.score
        );
    }

    // ── A read-only follower tails the live writer ─────────────────────
    // `open_follow` restores the same snapshot + WAL suffix without
    // touching the directory; `poll()` then applies whatever the writer
    // fsyncs next, following segment rotations by name.
    let mut follower =
        ReplicaService::open_follow(LineageEngine::new(), ServiceConfig::default(), &dir)?;
    assert_eq!(follower.kb().epoch(), service.kb().epoch());

    // The writer keeps serving; the follower catches up on its own clock.
    service.assert(viewers[1], Fact::ConceptProb("Weekend".into(), 0.65))?;
    service.assert(viewers[2], Fact::ConceptProb("Weekend".into(), 0.15))?;
    let applied = follower.poll()?;
    let stats = follower.stats();
    println!("\n── replica ──");
    println!(
        "  follower applied {applied} new records (applied_seq {}, lag {})",
        stats.applied_seq, stats.lag_records
    );
    assert_eq!(stats.lag_records, 0);

    // And it serves the writer's exact scores, for every tenant.
    for &v in &viewers {
        let at_writer = service.rank(v, &programs, 3)?;
        let at_follower = follower.rank(v, &programs, 3)?;
        for (a, b) in at_writer.iter().zip(&at_follower) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
    println!("  follower top-3 bit-identical to the writer's, all tenants");

    drop(follower);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
