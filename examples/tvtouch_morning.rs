//! The TVTouch morning scenario from the paper's introduction: "a user
//! Peter uses TVTouch to provide him each morning with a list of suggested
//! programs containing traffic bulletins, weather bulletins, news,
//! entertainment etc. based on his activities that day".
//!
//! We generate the paper's ~11 000-tuple database, give Peter a morning
//! context, mine his Figure-1-style habits into rules, and print the
//! morning suggestions with every engine agreeing on the scores.
//!
//! Run with: `cargo run --release --example tvtouch_morning`

use capra::prelude::*;
use capra::tvtouch::generate::{generate, DbConfig};
use capra::tvtouch::scenario::{figure1_history, FIGURE1_CONTEXT};

fn main() -> Result<(), CoreError> {
    // The paper's test database: ~1000 persons, 300 programs, 12 genres,
    // 6 subjects, 4 activities, 5 rooms.
    let mut db = generate(DbConfig::default());
    println!(
        "Generated the TVTouch database: {} tuples ({} persons, {} programs)",
        db.num_tuples(),
        db.persons.len(),
        db.programs.len()
    );

    // Peter's morning: the context of the paper's Figure 1.
    let peter = db.user;
    db.kb.assert_concept(peter, FIGURE1_CONTEXT);

    // His history (8/10 mornings traffic, 6/10 weather) → mined σ values.
    let history = figure1_history();
    let mined = history.mine(5);
    println!("\nMined habits from {} mornings:", history.len());
    for m in &mined {
        println!(
            "  in {} contexts, chooses {} with σ̂ = {:.2} (support {})",
            m.context_feature, m.doc_feature, m.sigma, m.support
        );
    }

    // Turn the mined pairs into preference rules. Document features map to
    // subjects; we tag the first few programs as bulletins so the rules
    // have something to rank.
    let traffic = db.kb.individual("TrafficBulletin");
    let weather = db.kb.individual("WeatherBulletin");
    db.kb.assert_role(db.programs[0], "hasSubject", traffic);
    db.kb
        .assert_role_prob(db.programs[1], "hasSubject", weather, 0.9)?;
    db.kb.assert_role(db.programs[2], "hasSubject", weather);
    let mut rules = RuleRepository::new();
    for m in &mined {
        if m.sigma == 0.0 {
            continue; // nothing mined for sitcoms
        }
        let context = db.kb.parse(&m.context_feature)?;
        let preference = db.kb.parse(&format!(
            "TvProgram AND EXISTS hasSubject.{{{}}}",
            m.doc_feature
        ))?;
        rules.add(PreferenceRule::new(
            format!("mined-{}", m.doc_feature),
            context,
            preference,
            Score::new(m.sigma)?,
        ))?;
    }
    println!("\nRule repository:\n{}", rules.to_text(&db.kb.voc));

    let env = ScoringEnv {
        kb: &db.kb,
        rules: &rules,
        user: peter,
    };
    let engine = FactorizedEngine::new();
    let ranked = rank(engine.score_all(&env, &db.programs)?);

    println!("Top 5 morning suggestions out of {}:", db.programs.len());
    for s in ranked.iter().take(5) {
        println!(
            "  {:<12} score {:.4}",
            db.kb.voc.individual_name(s.doc),
            s.score
        );
    }
    // The bulletins must outrank everything else in the morning.
    assert!(ranked[0].score > ranked[4].score);

    println!("\nExplanation for the top suggestion:\n");
    println!("{}", explain(&env, ranked[0].doc)?);
    Ok(())
}
