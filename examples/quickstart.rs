//! Quickstart: score four TV programs in a breakfast-on-a-weekend context.
//!
//! This is the paper's Section 4.2 worked example, built from scratch with
//! the public API (no pre-canned scenario), then explained rule by rule.
//!
//! Run with: `cargo run --example quickstart`

use capra::prelude::*;

fn main() -> Result<(), CoreError> {
    // 1. A knowledge base: the user's context and the candidate programs.
    let mut kb = Kb::new();
    let peter = kb.individual("Peter");
    kb.assert_concept(peter, "Weekend");
    kb.assert_concept(peter, "Breakfast");

    let human_interest = kb.individual("HUMAN-INTEREST");
    let weather = kb.individual("WeatherBulletin");

    let oprah = kb.individual("Oprah");
    let bbc = kb.individual("BBC news");
    let ch5 = kb.individual("Channel 5 news");
    let mpfc = kb.individual("Monty Python's Flying Circus");
    let programs = vec![oprah, bbc, ch5, mpfc];
    for &p in &programs {
        kb.assert_concept(p, "TvProgram");
    }
    // Uncertain features, straight from the paper's Table 1.
    kb.assert_role_prob(oprah, "hasGenre", human_interest, 0.85)?;
    kb.assert_role(bbc, "hasSubject", weather);
    kb.assert_role_prob(ch5, "hasGenre", human_interest, 0.95)?;
    kb.assert_role_prob(ch5, "hasSubject", weather, 0.85)?;

    // 2. Two scored preference rules (R1 and R2 of the paper).
    let mut rules = RuleRepository::new();
    rules.add(PreferenceRule::new(
        "R1",
        kb.parse("Weekend")?,
        kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")?,
        Score::new(0.8)?,
    ))?;
    rules.add(PreferenceRule::new(
        "R2",
        kb.parse("Breakfast")?,
        kb.parse("TvProgram AND EXISTS hasSubject.{WeatherBulletin}")?,
        Score::new(0.9)?,
    ))?;

    // 3. Score and rank.
    let env = ScoringEnv {
        kb: &kb,
        rules: &rules,
        user: peter,
    };
    let engine = FactorizedEngine::new();
    let ranked = rank(engine.score_all(&env, &programs)?);

    println!("Context-aware ranking (breakfast on a weekend):\n");
    for s in &ranked {
        println!("  {:<30} {:.4}", kb.voc.individual_name(s.doc), s.score);
    }

    // 4. Explain the winner — the paper's traceability goal.
    println!("\nWhy is the winner on top?\n");
    println!("{}", explain(&env, ranked[0].doc)?);
    Ok(())
}
