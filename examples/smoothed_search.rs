//! Smoothing the query-dependent and query-independent parts of
//! equation (3) — the paper's "Evaluation of ranking" discussion item.
//!
//! A fuzzy search for "news" matches the two news programs exactly and
//! Oprah partially. The naive model multiplies by 0/1 query membership;
//! Jelinek–Mercer smoothing blends query relevance with context relevance,
//! and λ moves the ranking between the two extremes. The example also
//! prints the `EXPLAIN`-style plan of the ranked SQL query.
//!
//! Run with: `cargo run --example smoothed_search`

use capra::core::smoothing::{blend, QueryRelevance, Smoothing};
use capra::prelude::*;
use capra::reldb::explain_plan;
use capra::tvtouch::scenario::paper_scenario;

fn main() -> Result<(), CoreError> {
    let scenario = paper_scenario();
    let env = scenario.env();

    // Context scores: the paper's Section 4.2 numbers.
    let context = FactorizedEngine::new().score_all(&env, &scenario.programs)?;

    // Query relevance for the query "news": exact title matches score 1,
    // Oprah (a talk show that often covers news topics) 0.4, MPFC 0.05.
    let relevance = [0.4, 1.0, 1.0, 0.05];
    let query: Vec<QueryRelevance> = scenario
        .programs
        .iter()
        .zip(relevance)
        .map(|(&doc, relevance)| QueryRelevance { doc, relevance })
        .collect();

    println!("query = \"news\"  (query relevance × context score)\n");
    println!(
        "{:<30} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "program", "query", "context", "product", "JM λ=.7", "JM λ=.2"
    );
    let product = blend(&query, &context, Smoothing::Product)?;
    let jm_hi = blend(&query, &context, Smoothing::JelinekMercer(0.7))?;
    let jm_lo = blend(&query, &context, Smoothing::JelinekMercer(0.2))?;
    for i in 0..scenario.programs.len() {
        println!(
            "{:<30} {:>7.2} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            scenario.kb.voc.individual_name(scenario.programs[i]),
            relevance[i],
            context[i].score,
            product[i].score,
            jm_hi[i].score,
            jm_lo[i].score,
        );
    }

    for (label, scores) in [
        ("strict product (the paper's naive combination)", product),
        ("query-heavy smoothing (λ=0.7)", jm_hi),
        ("context-heavy smoothing (λ=0.2)", jm_lo),
    ] {
        let ranked = rank(scores);
        println!(
            "\n{label}\n  winner: {}",
            scenario.kb.voc.individual_name(ranked[0].doc)
        );
    }

    // What the ranked SQL query's plan looks like.
    let plan = capra::reldb::Plan::scan("programs")
        .select(capra::reldb::ScalarExpr::cmp(
            capra::reldb::CmpOp::Gt,
            capra::reldb::ScalarExpr::col(2),
            capra::reldb::ScalarExpr::lit(0.5),
        ))
        .project(vec![
            (capra::reldb::ScalarExpr::col(1), "name".into()),
            (capra::reldb::ScalarExpr::col(2), "preferencescore".into()),
        ])
        .order_by(vec![capra::reldb::SortKey {
            expr: capra::reldb::ScalarExpr::col(1),
            desc: true,
        }]);
    println!(
        "\nEXPLAIN of the paper's intro query:\n{}",
        explain_plan(&plan)
    );
    Ok(())
}
