//! The commerce preference flip — the same catalog, the same rules, and
//! a top-1 result that inverts purely because the session context
//! changed (Ieong et al.'s observation, served through a
//! `RankingService`).
//!
//! Dana is gift shopping: premium products and the trusted brand win.
//! Erin is bargain hunting: the discounted blender wins. Every score
//! below is hand-derivable from the rule factors (see the
//! `capra::commerce::scenario` module docs).
//!
//! Run with: `cargo run --example commerce_flip`

use capra::commerce::scenario::catalog_scenario;
use capra::prelude::*;

fn main() -> Result<(), CoreError> {
    // The catalog starts context-free: four products, three rules, no
    // session context asserted yet.
    let s = catalog_scenario();
    let service = RankingService::new(LineageEngine::new(), s.kb, s.rules);
    let dana = s.shopper;
    let erin = service.individual("Erin");

    // Context arrives as typed events, per shopper.
    service.assert(dana, Fact::Concept("GiftShopping".into()))?;
    service.assert(erin, Fact::Concept("BargainHunting".into()))?;

    for (who, label) in [
        (dana, "Dana (gift shopping)"),
        (erin, "Erin (bargain hunting)"),
    ] {
        println!("{label}:");
        for doc in service.rank(who, &s.products, s.products.len())? {
            println!(
                "  {:<22} {:.4}",
                service.kb().voc.individual_name(doc.doc),
                doc.score
            );
        }
    }

    // The flip, asserted: same service, same candidates, inverted top-1.
    let gift_top = service.rank(dana, &s.products, 1)?;
    let bargain_top = service.rank(erin, &s.products, 1)?;
    assert_eq!(
        service.kb().voc.individual_name(gift_top[0].doc),
        "Silk scarf"
    );
    assert_eq!(
        service.kb().voc.individual_name(bargain_top[0].doc),
        "Discount blender"
    );
    println!("top-1 flipped: Silk scarf (gift) vs Discount blender (bargain)");
    Ok(())
}
