//! End-to-end SQL ranking: the query from the paper's introduction.
//!
//! ```sql
//! SELECT name, preferencescore
//! FROM Programs
//! WHERE preferencescore > 0.5
//! ORDER BY preferencescore DESC
//! ```
//!
//! The programs live in an ordinary SQL table; the context-aware layer
//! computes `preferencescore` dynamically from the user's context and rules
//! and the query runs through the SQL front-end.
//!
//! Run with: `cargo run --example sql_ranking`

use capra::core::compile::individual_datum;
use capra::core::ranking::ranked_query;
use capra::prelude::*;
use capra::reldb::{certain_rows, DataType, Schema};
use capra::tvtouch::scenario::paper_scenario;

fn main() -> Result<(), CoreError> {
    let scenario = paper_scenario();
    let env = scenario.env();

    // An ordinary SQL catalog holding the programs table.
    let catalog = Catalog::new();
    let programs = catalog
        .create_table(
            "programs",
            Schema::of(&[("id", DataType::Id), ("name", DataType::Str)]),
        )
        .map_err(CoreError::Db)?;
    programs
        .insert(certain_rows(
            scenario
                .programs
                .iter()
                .map(|&p| {
                    vec![
                        individual_datum(p),
                        Datum::str(scenario.kb.voc.individual_name(p)),
                    ]
                })
                .collect(),
        ))
        .map_err(CoreError::Db)?;

    // The paper's query, threshold 0.5.
    println!("SELECT name, preferencescore FROM Programs");
    println!("WHERE preferencescore > 0.5 ORDER BY preferencescore DESC;\n");
    let out = ranked_query(
        &env,
        &NaiveViewEngine::new(), // the paper's own engine, views and all
        &scenario.programs,
        &catalog,
        "programs",
        "id",
        &["name"],
        0.5,
    )?;
    print!("{}", out.to_text(None));

    // And the full ranking with threshold 0.
    println!("\n… and with the threshold at 0 (full ranking):\n");
    let out = ranked_query(
        &env,
        &FactorizedEngine::new(),
        &scenario.programs,
        &catalog,
        "programs",
        "id",
        &["name"],
        0.0,
    )?;
    print!("{}", out.to_text(None));

    // Plain SQL keeps working against the same catalog.
    let db_stats =
        capra::reldb::sql::execute(&catalog, None, "SELECT COUNT(*) AS programs FROM programs")
            .map_err(CoreError::Db)?;
    println!("\nCatalog check — {}", db_stats.to_text(None));
    Ok(())
}
