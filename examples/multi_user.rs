//! Group TV — the paper's "Modeling multiple users" future-work item.
//!
//! Peter likes human-interest shows at the weekend; Ling prefers news over
//! breakfast. They want to watch together: we score the programs per user
//! and compare aggregation strategies.
//!
//! Run with: `cargo run --example multi_user`

use capra::prelude::*;

fn build_kb() -> Result<(Kb, Vec<capra::dl::IndividualId>), CoreError> {
    let mut kb = Kb::new();
    let human_interest = kb.individual("HUMAN-INTEREST");
    let news = kb.individual("News");
    let oprah = kb.individual("Oprah");
    let bbc = kb.individual("BBC news");
    let ch5 = kb.individual("Channel 5 news");
    for p in [oprah, bbc, ch5] {
        kb.assert_concept(p, "TvProgram");
    }
    kb.assert_role_prob(oprah, "hasGenre", human_interest, 0.85)?;
    kb.assert_role(bbc, "hasSubject", news);
    kb.assert_role_prob(ch5, "hasGenre", human_interest, 0.95)?;
    kb.assert_role_prob(ch5, "hasSubject", news, 0.7)?;
    // Both users share the same situation: weekend breakfast.
    for user in ["Peter", "Ling"] {
        let u = kb.individual(user);
        kb.assert_concept(u, "Weekend");
        kb.assert_concept(u, "Breakfast");
    }
    Ok((kb, vec![oprah, bbc, ch5]))
}

fn main() -> Result<(), CoreError> {
    let (mut kb, programs) = build_kb()?;

    // Per-user rule repositories.
    let mut peter_rules = RuleRepository::new();
    peter_rules.add(PreferenceRule::new(
        "peter-weekend-hi",
        kb.parse("Weekend")?,
        kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")?,
        Score::new(0.8)?,
    ))?;
    let mut ling_rules = RuleRepository::new();
    ling_rules.add(PreferenceRule::new(
        "ling-breakfast-news",
        kb.parse("Breakfast")?,
        kb.parse("TvProgram AND EXISTS hasSubject.{News}")?,
        Score::new(0.9)?,
    ))?;

    let peter = kb.voc.find_individual("Peter").expect("registered");
    let ling = kb.voc.find_individual("Ling").expect("registered");
    let engine = LineageEngine::new();
    let peter_scores = engine.score_all(
        &ScoringEnv {
            kb: &kb,
            rules: &peter_rules,
            user: peter,
        },
        &programs,
    )?;
    let ling_scores = engine.score_all(
        &ScoringEnv {
            kb: &kb,
            rules: &ling_rules,
            user: ling,
        },
        &programs,
    )?;

    println!("{:<16} {:>8} {:>8}", "program", "Peter", "Ling");
    for (p, l) in peter_scores.iter().zip(&ling_scores) {
        println!(
            "{:<16} {:>8.4} {:>8.4}",
            kb.voc.individual_name(p.doc),
            p.score,
            l.score
        );
    }

    let per_user = vec![peter_scores, ling_scores];
    for (label, strategy) in [
        ("product (unanimity)", GroupStrategy::Product),
        ("average", GroupStrategy::average(2)),
        ("least misery", GroupStrategy::LeastMisery),
        ("most pleasure", GroupStrategy::MostPleasure),
    ] {
        let combined = rank(group_scores(&per_user, &strategy)?);
        let winner = kb.voc.individual_name(combined[0].doc);
        println!(
            "\n{label:<20} → watch {winner} (group score {:.4})",
            combined[0].score
        );
        for s in &combined {
            println!("    {:<16} {:.4}", kb.voc.individual_name(s.doc), s.score);
        }
    }
    Ok(())
}
