//! Correlated sensor context: the smart-home scenario.
//!
//! Location and activity come from sensors, so they are uncertain — and
//! *correlated*: a person is in exactly one room at a time. The factorized
//! engine (which assumes independent features) refuses such a context in
//! strict mode; the lineage engine evaluates it exactly. This example shows
//! the difference end to end, including how large the independence error
//! would have been.
//!
//! Run with: `cargo run --example smart_home`

use capra::prelude::*;
use capra::tvtouch::sensors::{apply_reading, SensorReading};

fn main() -> Result<(), CoreError> {
    let mut kb = Kb::new();
    let peter = kb.individual("Peter");
    let rooms: Vec<_> = ["Kitchen", "Lounge", "Office"]
        .iter()
        .map(|r| kb.individual(r))
        .collect();
    let activities: Vec<_> = ["Cooking", "Relaxing"]
        .iter()
        .map(|a| kb.individual(a))
        .collect();

    // A sensor snapshot: probably in the kitchen, probably cooking.
    let reading = SensorReading {
        room_distribution: vec![0.7, 0.2, 0.1],
        activity_distribution: vec![0.8, 0.2],
        p_morning: 0.95,
        p_workday: 0.3,
    };
    apply_reading(&mut kb, peter, &rooms, &activities, &reading, "now")
        .map_err(CoreError::Event)?;

    // Candidate programs.
    let recipes = kb.individual("Recipe show");
    let movie = kb.individual("Feel-good movie");
    let news = kb.individual("Morning news");
    for p in [recipes, movie, news] {
        kb.assert_concept(p, "TvProgram");
    }
    kb.assert_concept(recipes, "CookingShow");
    kb.assert_concept(movie, "Movie");
    kb.assert_concept(news, "NewsShow");

    // Rules over the *correlated* context: the kitchen rule and the lounge
    // rule reference mutually exclusive rooms.
    let mut rules = RuleRepository::new();
    rules.add(PreferenceRule::new(
        "kitchen-cooking",
        kb.parse("EXISTS inRoom.{Kitchen}")?,
        kb.parse("CookingShow")?,
        Score::new(0.9)?,
    ))?;
    rules.add(PreferenceRule::new(
        "lounge-movie",
        kb.parse("EXISTS inRoom.{Lounge}")?,
        kb.parse("Movie")?,
        Score::new(0.8)?,
    ))?;
    rules.add(PreferenceRule::new(
        "morning-news",
        kb.parse("Morning")?,
        kb.parse("NewsShow")?,
        Score::new(0.7)?,
    ))?;

    let env = ScoringEnv {
        kb: &kb,
        rules: &rules,
        user: peter,
    };
    let docs = [recipes, movie, news];

    // Strict factorized scoring refuses: the room features share a variable.
    match FactorizedEngine::new().score_all(&env, &docs) {
        Err(CoreError::CorrelatedFeatures { variable }) => {
            println!("factorized engine: refused — features correlated via `{variable}`\n")
        }
        other => panic!("expected a correlation error, got {other:?}"),
    }

    // The lineage engine computes the exact scores.
    let exact = LineageEngine::new().score_all(&env, &docs)?;
    // For comparison: the (wrong) independence approximation.
    let approx = FactorizedEngine::assuming_independence().score_all(&env, &docs)?;

    println!(
        "{:<18} {:>10} {:>14} {:>10}",
        "program", "exact", "independence", "error"
    );
    for (e, a) in exact.iter().zip(&approx) {
        println!(
            "{:<18} {:>10.4} {:>14.4} {:>10.4}",
            kb.voc.individual_name(e.doc),
            e.score,
            a.score,
            (e.score - a.score).abs()
        );
    }

    let ranked = rank(exact);
    println!(
        "\nSuggestion: {} (probability {:.3} of being ideal)",
        kb.voc.individual_name(ranked[0].doc),
        ranked[0].score
    );
    Ok(())
}
