//! The serving layer — a multi-tenant [`RankingService`] running a small
//! TV-guide front-end: many viewers, one shared programme list, context
//! switches arriving between requests.
//!
//! Demonstrates the typed request API (`rank`, `rank_group`, `assert`,
//! batched `submit`), per-tenant session reuse (warm hit rates), LRU
//! session eviction, the bounded shared evaluation tier, and — since the
//! serving surface takes `&self` — producer threads sharing one service
//! through a batching [`ServiceQueue`].
//!
//! Run with: `cargo run --example serving`

use std::sync::Arc;

use capra::prelude::*;

fn main() -> Result<(), CoreError> {
    // ── Build the shared world: programmes + rules ─────────────────────
    let mut kb = Kb::new();
    let programs: Vec<_> = (0..8)
        .map(|i| {
            let p = kb.individual(&format!("programme-{i}"));
            kb.assert_concept(p, "TvProgram");
            // Half the guide is certain about its genres (those programmes
            // share constant events — the columnar path broadcasts across
            // them), half carries its own uncertainty (one lane each).
            if i % 2 == 0 {
                kb.assert_concept(p, "HumanInterest");
                kb.assert_concept(p, "News");
            } else {
                kb.assert_concept_prob(p, "HumanInterest", 0.15 + 0.1 * i as f64)
                    .unwrap();
                kb.assert_concept_prob(p, "News", 0.9 - 0.1 * i as f64)
                    .unwrap();
            }
            p
        })
        .collect();
    let viewers: Vec<_> = (0..6)
        .map(|i| {
            let v = kb.individual(&format!("viewer-{i}"));
            kb.assert_concept_prob(v, "Weekend", 0.2 + 0.12 * i as f64)
                .unwrap();
            kb.assert_concept(v, "Breakfast");
            v
        })
        .collect();
    let mut rules = RuleRepository::new();
    rules.add(PreferenceRule::new(
        "weekend-hi",
        kb.parse("Weekend")?,
        kb.parse("TvProgram AND HumanInterest")?,
        Score::new(0.8)?,
    ))?;
    rules.add(PreferenceRule::new(
        "breakfast-news",
        kb.parse("Breakfast")?,
        kb.parse("TvProgram AND News")?,
        Score::new(0.9)?,
    ))?;

    // ── One service serves every viewer ────────────────────────────────
    // A small session cap so this demo shows LRU eviction in action; a
    // real deployment sizes this to its active-user working set.
    let service = RankingService::with_config(
        LineageEngine::new(),
        kb,
        rules,
        ServiceConfig {
            max_sessions: 4,
            ..ServiceConfig::default()
        },
    );

    println!("── top-3 per viewer (cold) ──");
    for &viewer in &viewers {
        let top = service.rank(viewer, &programs, 3)?;
        let names: Vec<String> = top
            .iter()
            .map(|s| {
                format!(
                    "{} ({:.3})",
                    service.kb().voc.individual_name(s.doc),
                    s.score
                )
            })
            .collect();
        println!(
            "  {:<10} {}",
            service.kb().voc.individual_name(viewer),
            names.join(", ")
        );
    }

    // Warm repeats for the viewers whose sessions are still live (the
    // cold round evicted the two least recently seen): all cache hits.
    for &viewer in &viewers[2..] {
        service.rank(viewer, &programs, 3)?;
    }
    let stats = service.stats();
    println!("\n── service stats after one warm round ──");
    println!(
        "  sessions: {} live / {} evicted (cap 4 for 6 viewers)",
        stats.sessions_live, stats.sessions_evicted
    );
    println!(
        "  binding cache hit rate {:.0}%, evaluation footprint {} entries in {} tiers",
        100.0 * stats.sessions.bindings.hit_rate(),
        stats.sessions.footprint.entries,
        stats.sessions.footprint.tiers,
    );

    // ── A batched burst: context switch + re-ranks in one submit ───────
    let burst = vec![
        Request::Assert {
            subject: viewers[0],
            fact: Fact::ConceptProb("Weekend".into(), 0.95),
        },
        Request::Rank {
            user: viewers[0],
            docs: programs.clone(),
            k: 3,
        },
        Request::RankGroup {
            users: viewers[..3].to_vec(),
            docs: programs.clone(),
            k: 3,
            strategy: GroupStrategy::LeastMisery,
        },
    ];
    println!("\n── batched burst: assert + rank + group rank ──");
    for (i, response) in service.submit(burst).into_iter().enumerate() {
        match response {
            Ok(Response::Asserted) => println!("  [{i}] asserted"),
            Ok(Response::Ranked(top)) => {
                let names: Vec<String> = top
                    .iter()
                    .map(|s| {
                        format!(
                            "{} ({:.3})",
                            service.kb().voc.individual_name(s.doc),
                            s.score
                        )
                    })
                    .collect();
                println!("  [{i}] {}", names.join(", "));
            }
            Err(e) => println!("  [{i}] error: {e}"),
        }
    }
    let stats = service.stats();
    println!(
        "\n{} rank requests served in {} coalesced dispatch runs",
        stats.rank_requests, stats.coalesced_runs
    );

    // ── A direct group request, and what the columnar path did ─────────
    // Everyone watches together: one ranking the least-happy member can
    // live with. Scoring ran as column sweeps (one per rule or factor
    // signature, a lane per programme) — the batch counters show how many
    // lanes were served per sweep and how few needed their own evaluation.
    let family = service.rank_group(&viewers[3..], &programs, 3, &GroupStrategy::LeastMisery)?;
    let names: Vec<String> = family
        .iter()
        .map(|s| {
            format!(
                "{} ({:.3})",
                service.kb().voc.individual_name(s.doc),
                s.score
            )
        })
        .collect();
    println!("\n── family top-3 (least misery) ──");
    println!("  {}", names.join(", "));
    let batch = service.stats().sessions.batch;
    println!(
        "  columnar batch path: {} sweeps, {:.1} lanes/sweep, {} fallbacks ({:.0}% broadcast)",
        batch.sweeps,
        batch.lanes_per_sweep(),
        batch.fallbacks,
        100.0 * batch.broadcast_rate(),
    );

    // ── Many threads, one service: the batching front-end ──────────────
    // Every request path takes `&self`, so producer threads could call
    // `service.rank` directly through a shared reference. A bounded
    // ServiceQueue adds backpressure and coalescing on top: producers
    // enqueue typed requests and wait on tickets while one worker drains
    // arrivals in order, batching same-epoch runs through `submit`.
    let service = Arc::new(service);
    let queue = ServiceQueue::start(
        Arc::clone(&service),
        QueueConfig {
            capacity: 16,
            batch: 4,
        },
    );
    std::thread::scope(|scope| {
        for chunk in viewers.chunks(2) {
            let handle = queue.handle();
            let programs = programs.clone();
            scope.spawn(move || {
                for &viewer in chunk {
                    let response = handle
                        .enqueue(Request::Rank {
                            user: viewer,
                            docs: programs.clone(),
                            k: 3,
                        })
                        .expect("enqueue blocks rather than fails under capacity")
                        .wait()
                        .expect("ranking a warm viewer succeeds");
                    assert!(response.ranked().is_some());
                }
            });
        }
    });
    let stats = queue.stats();
    println!("\n── queued round: 3 producer threads, one worker ──");
    println!(
        "  {} enqueued / {} drained (depth high-water {}), {} coalesced runs total",
        stats.queue.enqueued,
        stats.queue.drained,
        stats.queue.depth_high_water,
        stats.coalesced_runs,
    );
    queue.shutdown();
    Ok(())
}
