//! Mining preferences from history — the paper's "Mining/learning
//! preferences" research question, answered experimentally.
//!
//! A simulated user behaves according to known ground-truth σ values; we
//! mine the growing history with the paper's exact estimator semantics and
//! watch σ̂ converge to σ.
//!
//! Run with: `cargo run --release --example preference_mining`

use capra::tvtouch::history_sim::{simulate, GroundTruth, SimConfig};

fn main() {
    let ground_truth = vec![
        GroundTruth::new("WorkdayMorning", "TrafficBulletin", 0.8),
        GroundTruth::new("WorkdayMorning", "WeatherBulletin", 0.6),
        GroundTruth::new("WeekendEvening", "Movie", 0.75),
        GroundTruth::new("WeekendEvening", "Documentary", 0.25),
    ];

    println!("Ground truth:");
    for gt in &ground_truth {
        println!(
            "  σ({}, {}) = {:.2}",
            gt.context_feature, gt.doc_feature, gt.sigma
        );
    }

    println!("\nConvergence of the mined estimates:");
    println!(
        "{:>9} {:>22} {:>22} {:>16} {:>16}",
        "episodes", "traffic (0.80)", "weather (0.60)", "movie (0.75)", "doc (0.25)"
    );
    for &episodes in &[20usize, 100, 500, 2500, 10000] {
        let log = simulate(&ground_truth, episodes, &SimConfig::default());
        let cell = |g: &str, f: &str| -> String {
            match log.sigma(g, f) {
                Some((sigma, support)) => format!("{sigma:.3} (n={support})"),
                None => "—".to_string(),
            }
        };
        println!(
            "{:>9} {:>22} {:>22} {:>16} {:>16}",
            episodes,
            cell("WorkdayMorning", "TrafficBulletin"),
            cell("WorkdayMorning", "WeatherBulletin"),
            cell("WeekendEvening", "Movie"),
            cell("WeekendEvening", "Documentary"),
        );
    }

    // Induce rules from the largest log and display the repository.
    let log = simulate(&ground_truth, 10000, &SimConfig::default());
    let mined = log.mine(100);
    println!("\nMined rules (support ≥ 100):");
    for m in &mined {
        println!(
            "  IF {} PREFER documents with {} — σ̂ = {:.3} (support {})",
            m.context_feature, m.doc_feature, m.sigma, m.support
        );
    }

    // Sanity: the estimates are close to the truth.
    for gt in &ground_truth {
        let (estimate, _) = log
            .sigma(&gt.context_feature, &gt.doc_feature)
            .expect("pair present");
        assert!(
            (estimate - gt.sigma).abs() < 0.05,
            "σ̂ diverged: {estimate} vs {}",
            gt.sigma
        );
    }
    println!("\nAll estimates within ±0.05 of the ground truth.");
}
