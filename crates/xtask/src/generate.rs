//! `xtask generate` — build a workload file from a domain pack.

use crate::args::Args;
use capra_core::persist::Workload;

/// Builds the selected domain's workload (default-sized, or `--tiny`),
/// applying `--seed` / `--requests` overrides to the request stream.
pub fn run(args: &Args) -> Result<(), String> {
    let domain = args.require("domain")?;
    let out = args.require("out")?.to_string();
    let tiny = args.has("tiny");
    let seed = args.u64_opt("seed")?;
    let requests = args.usize_opt("requests")?;

    let workload = build(domain, tiny, seed, requests)?;
    workload
        .save(&out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: domain={} seed={} records={} ranks={} digest={:#018x}",
        workload.meta.domain,
        workload.meta.seed,
        workload.records.len(),
        workload.rank_records(),
        workload.file_digest()
    );
    Ok(())
}

fn build(
    domain: &str,
    tiny: bool,
    seed: Option<u64>,
    requests: Option<usize>,
) -> Result<Workload, String> {
    Ok(match domain {
        "commerce" => {
            use capra_commerce::workload::{build_workload, WorkloadConfig};
            let mut config = if tiny {
                WorkloadConfig::tiny()
            } else {
                WorkloadConfig::default()
            };
            if let Some(seed) = seed {
                config.seed = seed;
            }
            if let Some(requests) = requests {
                config.requests = requests;
            }
            build_workload(config)
        }
        "teamctx" => {
            use capra_teamctx::workload::{build_workload, WorkloadConfig};
            let mut config = if tiny {
                WorkloadConfig::tiny()
            } else {
                WorkloadConfig::default()
            };
            if let Some(seed) = seed {
                config.seed = seed;
            }
            if let Some(requests) = requests {
                config.requests = requests;
            }
            build_workload(config)
        }
        "tvtouch" => {
            use capra_tvtouch::workload::{build_workload, WorkloadConfig};
            let mut config = if tiny {
                WorkloadConfig::tiny()
            } else {
                WorkloadConfig::default()
            };
            if let Some(seed) = seed {
                config.seed = seed;
            }
            if let Some(requests) = requests {
                config.requests = requests;
            }
            build_workload(config)
        }
        other => {
            return Err(format!(
                "unknown domain `{other}` (expected commerce, teamctx or tvtouch)"
            ))
        }
    })
}
