//! Hand-rolled `--flag [value]` argument parsing (this workspace takes
//! no external dependencies; a clap would be its whole tree).

/// Parsed `--key value` / `--switch` arguments.
pub struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses an argument list. Every argument must be a `--key`
    /// optionally followed by a value; stray positionals are an error
    /// (each command names its inputs explicitly).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                _ => None,
            };
            pairs.push((key.to_string(), value));
        }
        Ok(Self { pairs })
    }

    /// The value of `--name`, if given with a value.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// The value of a required `--name value`.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.opt(name)
            .ok_or_else(|| format!("missing required --{name} <value>"))
    }

    /// Whether `--name` appeared (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    /// `--name N` parsed as u64, if given.
    pub fn u64_opt(&self, name: &str) -> Result<Option<u64>, String> {
        self.opt(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{name} expects an integer, got `{v}`"))
            })
            .transpose()
    }

    /// `--name N` parsed as usize, if given.
    pub fn usize_opt(&self, name: &str) -> Result<Option<usize>, String> {
        Ok(self.u64_opt(name)?.map(|v| v as usize))
    }
}
