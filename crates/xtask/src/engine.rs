//! Runtime engine selection: a `--engine` name to a boxed
//! [`ScoringEngine`] (the service is generic, and `ScoringEngine` is
//! implemented for `Box<dyn ScoringEngine + Sync>`, so one service type
//! serves every engine).

use capra_core::{
    FactorizedEngine, LineageEngine, NaiveEnumEngine, NaiveViewEngine, ScoringEngine,
};

/// Every accepted `--engine` name, for usage messages.
pub const ENGINE_NAMES: [&str; 4] = ["naive-view", "naive-enum", "factorized", "lineage"];

/// Builds the named engine. The default elsewhere is `lineage` — the
/// only engine that accepts *every* workload (the strict factorized
/// engine rejects correlated context by design).
pub fn by_name(name: &str) -> Result<Box<dyn ScoringEngine + Sync>, String> {
    Ok(match name {
        "naive-view" => Box::new(NaiveViewEngine::new()),
        "naive-enum" => Box::new(NaiveEnumEngine::new()),
        "factorized" => Box::new(FactorizedEngine::new()),
        "lineage" => Box::new(LineageEngine::new()),
        other => {
            return Err(format!(
                "unknown engine `{other}` (expected one of {})",
                ENGINE_NAMES.join(", ")
            ))
        }
    })
}
