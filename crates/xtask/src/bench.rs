//! `xtask bench` — time repeated replays of a workload file.
//!
//! A coarse wall-clock harness for interactive use; the guarded
//! regression gauge lives in `crates/bench/benches/workload.rs`.

use std::time::Instant;

use crate::args::Args;
use crate::engine;
use capra_core::persist::Workload;
use capra_core::serve::{replay_workload, workload_service, ServiceConfig};

/// Replays `--file` `--iters` times (default 3) on `--engine` and
/// prints per-iteration wall time and request throughput. The service
/// is rebuilt each iteration so every replay pays the cold path.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.require("file")?;
    let engine_name = args.opt("engine").unwrap_or("lineage");
    let iters = args.usize_opt("iters")?.unwrap_or(3).max(1);
    let threads = args.usize_opt("threads")?.unwrap_or(1);

    let workload = Workload::load(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut first_hash = None;
    for i in 0..iters {
        let config = ServiceConfig {
            threads,
            ..ServiceConfig::default()
        };
        let service = workload_service(engine::by_name(engine_name)?, config, &workload);
        let start = Instant::now();
        let report = replay_workload(&service, &workload).map_err(|e| e.to_string())?;
        let elapsed = start.elapsed();
        let per_sec = report.requests as f64 / elapsed.as_secs_f64().max(1e-9);
        println!(
            "iter {i}: {:?} for {} requests ({per_sec:.0} req/s), transcript {:#018x}",
            elapsed, report.requests, report.transcript_hash
        );
        match first_hash {
            None => first_hash = Some(report.transcript_hash),
            Some(h) if h != report.transcript_hash => {
                return Err("transcript hash changed between iterations".into())
            }
            Some(_) => {}
        }
    }
    Ok(())
}
