//! `xtask stats` — describe a workload file without replaying it.

use crate::args::Args;
use capra_core::persist::{Workload, WorkloadRecord};

/// Loads `--file` and prints its provenance, record mix and sizes.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.require("file")?;
    let workload = Workload::load(path).map_err(|e| format!("reading {path}: {e}"))?;

    let (mut asserts, mut ranks, mut group_ranks, mut docs) = (0usize, 0usize, 0usize, 0usize);
    for record in &workload.records {
        match record {
            WorkloadRecord::Assert { .. } => asserts += 1,
            WorkloadRecord::Rank { docs: d, .. } => {
                ranks += 1;
                docs += d.len();
            }
            WorkloadRecord::RankGroup { docs: d, .. } => {
                group_ranks += 1;
                docs += d.len();
            }
        }
    }
    println!("file {path}: digest {:#018x}", workload.file_digest());
    println!(
        "  meta: domain={} seed={} comment={:?}",
        workload.meta.domain, workload.meta.seed, workload.meta.comment
    );
    println!(
        "  initial state: {} ABox tuples, {} rules",
        workload.kb.abox.num_tuples(),
        workload.rules.len()
    );
    println!(
        "  records: {} total ({asserts} assert, {ranks} rank, {group_ranks} group-rank, \
         {docs} candidate docs)",
        workload.records.len()
    );
    Ok(())
}
