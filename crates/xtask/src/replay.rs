//! `xtask replay` — drive a workload file through a fresh
//! [`capra_core::serve::RankingService`] and print the transcript hash.
//!
//! Two replays of the same file with the same engine print the same
//! transcript line, bit for bit — the property the CI determinism step
//! diffs for.

use crate::args::Args;
use crate::engine;
use capra_core::persist::Workload;
use capra_core::serve::{replay_workload, workload_service, ServiceConfig};

/// Loads `--file`, replays it on `--engine` (default `lineage`) with
/// `--threads` scoring threads, and prints the digest + report.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.require("file")?;
    let engine = engine::by_name(args.opt("engine").unwrap_or("lineage"))?;
    let threads = args.usize_opt("threads")?.unwrap_or(1);

    let workload = Workload::load(path).map_err(|e| format!("reading {path}: {e}"))?;
    let config = ServiceConfig {
        threads,
        ..ServiceConfig::default()
    };
    let service = workload_service(engine, config, &workload);
    let report = replay_workload(&service, &workload).map_err(|e| e.to_string())?;
    println!(
        "file {path}: domain={} seed={} digest={:#018x}",
        workload.meta.domain,
        workload.meta.seed,
        workload.file_digest()
    );
    println!("{report}");
    Ok(())
}
