//! `xtask` — the workload CLI: one command per file, in the cargo-xtask
//! style. Workload files are the `.capra` format of
//! [`capra_core::persist::Workload`]; every command is deterministic,
//! which is what the CI replay-determinism check leans on:
//!
//! ```text
//! cargo run -p xtask -- generate --domain commerce --tiny --out w.capra
//! cargo run -p xtask -- replay --file w.capra --engine lineage
//! cargo run -p xtask -- bench --file w.capra --iters 3
//! cargo run -p xtask -- stats --file w.capra
//! ```

mod args;
mod bench;
mod engine;
mod generate;
mod replay;
mod stats;

use std::process::ExitCode;

const USAGE: &str = "\
xtask — capra workload CLI

USAGE:
    xtask <COMMAND> [OPTIONS]

COMMANDS:
    generate   Build a workload file from a domain pack generator
               --domain commerce|teamctx|tvtouch  --out FILE
               [--tiny] [--seed N] [--requests N]
    replay     Replay a workload file against a fresh RankingService
               --file FILE  [--engine naive-view|naive-enum|factorized|lineage]
               [--threads N]
    bench      Time repeated replays of a workload file
               --file FILE  [--engine E] [--iters N] [--threads N]
    stats      Describe a workload file without replaying it
               --file FILE
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let parsed = match args::Args::parse(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => generate::run(&parsed),
        "replay" => replay::run(&parsed),
        "bench" => bench::run(&parsed),
        "stats" => stats::run(&parsed),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
