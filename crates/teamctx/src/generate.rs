//! The seeded synthetic team population and genre-tagged catalog.
//!
//! Teams are contiguous member slices over one shared KB; every member
//! carries an independent uncertain mood per genre (so all four engines
//! accept the workload) and the rule set maps each mood to its genre.

use capra_core::{Kb, PreferenceRule, RuleRepository, Score};
use capra_dl::IndividualId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The genre axes shared by moods, tags and rules.
pub const GENRES: [&str; 4] = ["Action", "Romance", "Docu", "Comedy"];

/// Per-genre rule strengths (how strongly the matching mood prefers the
/// genre), in [`GENRES`] order.
pub const SIGMAS: [f64; 4] = [0.9, 0.85, 0.8, 0.75];

/// Configuration for the synthetic team database.
#[derive(Debug, Clone)]
pub struct TeamConfig {
    /// Number of teams.
    pub teams: usize,
    /// Members per team.
    pub team_size: usize,
    /// Number of movies in the catalog.
    pub movies: usize,
    /// Expected genre tags per movie (each genre tagged independently
    /// with probability `tags_per_movie / GENRES.len()`).
    pub tags_per_movie: f64,
    /// RNG seed; same seed ⇒ identical database.
    pub seed: u64,
}

impl Default for TeamConfig {
    fn default() -> Self {
        Self {
            teams: 200,
            team_size: 4,
            movies: 300,
            tags_per_movie: 1.5,
            seed: 0x7EA8,
        }
    }
}

impl TeamConfig {
    /// A scaled-down configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            teams: 4,
            team_size: 3,
            movies: 10,
            tags_per_movie: 1.5,
            seed: 3,
        }
    }
}

/// The generated database and its entity handles.
pub struct TeamDb {
    /// The knowledge base.
    pub kb: Kb,
    /// Teams, each a vector of member ids.
    pub teams: Vec<Vec<IndividualId>>,
    /// All movies (the scoring candidates).
    pub movies: Vec<IndividualId>,
    /// The configuration used.
    pub config: TeamConfig,
}

/// Generates the database: genre-tagged movies, then teams of members
/// with independent uncertain moods (each member leans towards one
/// favourite genre but carries some probability of every mood).
pub fn generate(config: TeamConfig) -> TeamDb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut kb = Kb::new();

    let movies: Vec<IndividualId> = (0..config.movies)
        .map(|i| {
            let m = kb.individual(&format!("Movie_{i}"));
            kb.assert_concept(m, "Movie");
            m
        })
        .collect();
    let tag_rate = (config.tags_per_movie / GENRES.len() as f64).clamp(0.0, 1.0);
    for &movie in &movies {
        for genre in GENRES {
            if rng.gen_bool(tag_rate) {
                kb.assert_concept_prob(movie, genre, rng.gen_range(0.4..=1.0))
                    .expect("valid probability");
            }
        }
    }

    let teams: Vec<Vec<IndividualId>> = (0..config.teams)
        .map(|t| {
            (0..config.team_size)
                .map(|j| {
                    let member = kb.individual(&format!("Member_{t}_{j}"));
                    kb.assert_concept(member, "Person");
                    member
                })
                .collect()
        })
        .collect();
    for team in &teams {
        for &member in team {
            let favourite = rng.gen_range(0..GENRES.len());
            for (g, genre) in GENRES.iter().enumerate() {
                let p = if g == favourite {
                    rng.gen_range(0.6..=0.95)
                } else {
                    rng.gen_range(0.05..=0.4)
                };
                kb.assert_concept_prob(member, &format!("Mood{genre}"), p)
                    .expect("valid probability");
            }
        }
    }

    TeamDb {
        kb,
        teams,
        movies,
        config,
    }
}

/// The mood → genre rule set: one rule per genre, σ from [`SIGMAS`].
pub fn mood_rules(db: &TeamDb) -> RuleRepository {
    let mut kb = db.kb.clone();
    let mut rules = RuleRepository::new();
    for (genre, sigma) in GENRES.iter().zip(SIGMAS) {
        rules
            .add(PreferenceRule::new(
                format!("T-{genre}"),
                kb.parse(&format!("Mood{genre}")).expect("valid concept"),
                kb.parse(&format!("Movie AND {genre}"))
                    .expect("valid concept"),
                Score::new(sigma).expect("valid score"),
            ))
            .expect("unique name");
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_core::{
        group_scores, FactorizedEngine, GroupStrategy, NaiveEnumEngine, ScoringEngine, ScoringEnv,
    };

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TeamConfig::tiny());
        let b = generate(TeamConfig::tiny());
        assert_eq!(a.kb.abox.num_tuples(), b.kb.abox.num_tuples());
    }

    #[test]
    fn group_scoring_agrees_across_engines() {
        let db = generate(TeamConfig::tiny());
        let rules = mood_rules(&db);
        let team = &db.teams[0];
        let score_team = |engine: &dyn ScoringEngine| {
            let per_user: Vec<_> = team
                .iter()
                .map(|&user| {
                    let env = ScoringEnv {
                        kb: &db.kb,
                        rules: &rules,
                        user,
                    };
                    engine.score_all(&env, &db.movies).unwrap()
                })
                .collect();
            group_scores(&per_user, &GroupStrategy::Product).unwrap()
        };
        let fact = score_team(&FactorizedEngine::new());
        let naive = score_team(&NaiveEnumEngine::new());
        for (a, b) in fact.iter().zip(&naive) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        let distinct: std::collections::BTreeSet<u64> =
            fact.iter().map(|s| s.score.to_bits()).collect();
        assert!(distinct.len() > 1, "tags must discriminate");
    }
}
