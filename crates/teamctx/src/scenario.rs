//! The fixed group fixture: three members in conflicting moods, three
//! movies, and hand-derivable group rankings that *diverge by strategy*.
//!
//! ## The catalog and moods
//!
//! | Movie | Action | Romance | Docu |
//! |-------|--------|---------|------|
//! | Action Blast | 0.9 | — | — |
//! | Rom Com | — | 0.8 | 0.5 |
//! | Documentary | — | — | 0.7 |
//!
//! Members: `alice` (certain `MoodAction`), `bob` (certain
//! `MoodRomance`), `carol` (certain `MoodDocu`). Rules: mood →
//! matching genre, σ = 0.9 / 0.85 / 0.8 respectively.
//!
//! ## The hand derivation
//!
//! Each member has exactly one applicable rule, so their score for a
//! movie is `P(genre)·σ + (1 − P(genre))·(1 − σ)`; the per-member
//! matrix is [`PER_MEMBER_EXPECTED`]. Combining it:
//!
//! * **Product** / **average** pick *Rom Com* (broad mild appeal: it is
//!   nobody's last choice),
//! * **least misery** and **most pleasure** pick *Action Blast*
//!   (carried entirely by alice's 0.82 — misery-wise the strategies tie
//!   elsewhere at 0.10, pleasure-wise nothing beats her enthusiasm),
//! * a **weighted average** favouring alice (0.6/0.2/0.2) also flips to
//!   *Action Blast*.
//!
//! The same matrix, four different winners' rationales — the
//! group-strategy divergence the oracle tests pin.

use capra_core::{GroupStrategy, Kb, PreferenceRule, RuleRepository, Score, ScoringEnv};
use capra_dl::IndividualId;

/// The movies, in score-matrix order.
pub const MOVIE_NAMES: [&str; 3] = ["Action Blast", "Rom Com", "Documentary"];

/// The members, in score-matrix order.
pub const MEMBER_NAMES: [&str; 3] = ["alice", "bob", "carol"];

/// Hand-computed per-member scores, `[member][movie]` in
/// [`MEMBER_NAMES`] × [`MOVIE_NAMES`] order:
///
/// * alice (σ 0.9): `0.9·0.9 + 0.1·0.1 = 0.82`, else `0.1`
/// * bob (σ 0.85): `0.8·0.85 + 0.2·0.15 = 0.71`, else `0.15`
/// * carol (σ 0.8): Rom Com `0.5·0.8 + 0.5·0.2 = 0.5`, Documentary
///   `0.7·0.8 + 0.3·0.2 = 0.62`, else `0.2`
pub const PER_MEMBER_EXPECTED: [[f64; 3]; 3] =
    [[0.82, 0.1, 0.1], [0.15, 0.71, 0.15], [0.2, 0.5, 0.62]];

/// Expected top movie per strategy (see the module docs): consensus
/// strategies pick *Rom Com*, extremal and alice-weighted strategies
/// pick *Action Blast*.
pub const PRODUCT_TOP: &str = "Rom Com";
/// See [`PRODUCT_TOP`].
pub const AVERAGE_TOP: &str = "Rom Com";
/// See [`PRODUCT_TOP`].
pub const LEAST_MISERY_TOP: &str = "Action Blast";
/// See [`PRODUCT_TOP`].
pub const MOST_PLEASURE_TOP: &str = "Action Blast";
/// See [`PRODUCT_TOP`] — the weights are [`ALICE_HEAVY_WEIGHTS`].
pub const WEIGHTED_TOP: &str = "Action Blast";

/// Weights that let alice dominate the weighted average.
pub const ALICE_HEAVY_WEIGHTS: [f64; 3] = [0.6, 0.2, 0.2];

/// Expected group scores for `strategy`, in [`MOVIE_NAMES`] order,
/// computed from [`PER_MEMBER_EXPECTED`] with the same arithmetic as
/// [`capra_core::group_scores`].
pub fn expected_group_scores(strategy: &GroupStrategy) -> [f64; 3] {
    let mut out = [0.0; 3];
    for (m, slot) in out.iter_mut().enumerate() {
        let values = [
            PER_MEMBER_EXPECTED[0][m],
            PER_MEMBER_EXPECTED[1][m],
            PER_MEMBER_EXPECTED[2][m],
        ];
        *slot = match strategy {
            GroupStrategy::Product => values.iter().product(),
            GroupStrategy::WeightedAverage(w) => {
                let total: f64 = w.iter().sum();
                values.iter().zip(w).map(|(v, wi)| v * wi).sum::<f64>() / total
            }
            GroupStrategy::LeastMisery => values.iter().copied().fold(f64::INFINITY, f64::min),
            GroupStrategy::MostPleasure => values.iter().copied().fold(0.0, f64::max),
        };
    }
    out
}

/// Every (strategy, expected top movie) pair the fixture pins.
pub fn strategy_expectations() -> Vec<(GroupStrategy, &'static str)> {
    vec![
        (GroupStrategy::Product, PRODUCT_TOP),
        (GroupStrategy::average(3), AVERAGE_TOP),
        (GroupStrategy::LeastMisery, LEAST_MISERY_TOP),
        (GroupStrategy::MostPleasure, MOST_PLEASURE_TOP),
        (
            GroupStrategy::WeightedAverage(ALICE_HEAVY_WEIGHTS.to_vec()),
            WEIGHTED_TOP,
        ),
    ]
}

/// The fixture: KB, rules, members and movies in matrix order.
pub struct TeamScenario {
    /// Knowledge base with members' moods and movies' genre tags.
    pub kb: Kb,
    /// One mood → genre rule per member.
    pub rules: RuleRepository,
    /// The members, in [`MEMBER_NAMES`] order.
    pub members: Vec<IndividualId>,
    /// The movies, in [`MOVIE_NAMES`] order.
    pub movies: Vec<IndividualId>,
}

impl TeamScenario {
    /// A scoring environment for one member.
    pub fn env(&self, member: usize) -> ScoringEnv<'_> {
        ScoringEnv {
            kb: &self.kb,
            rules: &self.rules,
            user: self.members[member],
        }
    }
}

/// Builds the fixture.
pub fn scenario() -> TeamScenario {
    let mut kb = Kb::new();
    let members: Vec<IndividualId> = MEMBER_NAMES.iter().map(|n| kb.individual(n)).collect();
    let movies: Vec<IndividualId> = MOVIE_NAMES.iter().map(|n| kb.individual(n)).collect();
    for &movie in &movies {
        kb.assert_concept(movie, "Movie");
    }
    kb.assert_concept_prob(movies[0], "Action", 0.9)
        .expect("valid probability");
    kb.assert_concept_prob(movies[1], "Romance", 0.8)
        .expect("valid probability");
    kb.assert_concept_prob(movies[1], "Docu", 0.5)
        .expect("valid probability");
    kb.assert_concept_prob(movies[2], "Docu", 0.7)
        .expect("valid probability");

    kb.assert_concept(members[0], "MoodAction");
    kb.assert_concept(members[1], "MoodRomance");
    kb.assert_concept(members[2], "MoodDocu");

    let mut rules = RuleRepository::new();
    for (name, mood, genre, sigma) in [
        ("R-action", "MoodAction", "Action", 0.9),
        ("R-romance", "MoodRomance", "Romance", 0.85),
        ("R-docu", "MoodDocu", "Docu", 0.8),
    ] {
        rules
            .add(PreferenceRule::new(
                name,
                kb.parse(mood).expect("valid concept"),
                kb.parse(&format!("Movie AND {genre}"))
                    .expect("valid concept"),
                Score::new(sigma).expect("valid score"),
            ))
            .expect("unique name");
    }

    TeamScenario {
        kb,
        rules,
        members,
        movies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_core::{group_scores, FactorizedEngine, ScoringEngine};

    #[test]
    fn per_member_matrix_holds() {
        let s = scenario();
        let engine = FactorizedEngine::new();
        for (m, row) in PER_MEMBER_EXPECTED.iter().enumerate() {
            let scores = engine.score_all(&s.env(m), &s.movies).unwrap();
            for (score, expected) in scores.iter().zip(row) {
                assert!(
                    (score.score - expected).abs() < 1e-12,
                    "{}: {} vs {}",
                    MEMBER_NAMES[m],
                    score.score,
                    expected
                );
            }
        }
    }

    #[test]
    fn strategies_diverge_as_pinned() {
        let s = scenario();
        let engine = FactorizedEngine::new();
        let per_user: Vec<_> = (0..3)
            .map(|m| engine.score_all(&s.env(m), &s.movies).unwrap())
            .collect();
        for (strategy, expected_top) in strategy_expectations() {
            let combined = group_scores(&per_user, &strategy).unwrap();
            let expected = expected_group_scores(&strategy);
            let mut best = 0;
            for (i, score) in combined.iter().enumerate() {
                assert!(
                    (score.score - expected[i]).abs() < 1e-12,
                    "{strategy:?}: {} vs {}",
                    score.score,
                    expected[i]
                );
                if score.score > combined[best].score {
                    best = i;
                }
            }
            assert_eq!(MOVIE_NAMES[best], expected_top, "{strategy:?}");
        }
    }
}
