//! # capra-teamctx — the group-context domain pack
//!
//! The paper's motivating scenario is a *group* watching TV together:
//! the ideal program is the one whose probability of being ideal is
//! highest **for the group**, not for any single member. This pack
//! exercises that joint-selection surface
//! ([`capra_core::serve::RankingService::rank_group`] and every
//! [`capra_core::GroupStrategy`]) with members whose context-activated
//! preferences *conflict* — so the strategies genuinely disagree about
//! the winner, not just about the margins.
//!
//! * [`scenario`] — a fixed, hand-derivable fixture: three members in
//!   three moods, three movies, and a per-member score matrix from which
//!   every group strategy's expected scores (and their diverging top-1
//!   picks) follow by hand;
//! * [`generate`] — a seeded synthetic population of teams, members with
//!   independent uncertain moods, and a genre-tagged catalog;
//! * [`workload`] — a deterministic [`capra_core::persist::Workload`]
//!   builder interleaving mood churn with `RankGroup` requests across
//!   all strategies, for the `xtask` replay CLI.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod scenario;
pub mod workload;
