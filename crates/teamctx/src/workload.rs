//! Deterministic team workload builder for the `xtask` replay CLI.
//!
//! Interleaves mood churn (`ConceptProb` re-asserts) with `RankGroup`
//! requests cycling through every [`GroupStrategy`] — the replay
//! counterpart of the commerce pack's single-user stream, exercising
//! the group code path and the strategy serialization.

use crate::generate::{generate, mood_rules, TeamConfig, GENRES};
use capra_core::persist::{Workload, WorkloadFact, WorkloadMeta, WorkloadRecord};
use capra_core::{GroupStrategy, Kb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the request stream layered over a [`TeamConfig`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// The population to generate first.
    pub team: TeamConfig,
    /// Number of group-rank requests.
    pub requests: usize,
    /// Candidate movies per request.
    pub docs_per_request: usize,
    /// Top-k per request.
    pub k: u32,
    /// Probability a request is preceded by a mood-churn context event.
    pub churn: f64,
    /// Seed for the request stream (independent of the catalog seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            team: TeamConfig::default(),
            requests: 150,
            docs_per_request: 24,
            k: 5,
            churn: 0.35,
            seed: 0x9000,
        }
    }
}

impl WorkloadConfig {
    /// A scaled-down configuration for fast unit tests and CI.
    pub fn tiny() -> Self {
        Self {
            team: TeamConfig::tiny(),
            requests: 20,
            docs_per_request: 5,
            k: 3,
            churn: 0.5,
            seed: 8,
        }
    }
}

/// Picks a strategy deterministically, cycling all four shapes
/// (weighted averages get seeded random weights).
fn pick_strategy(i: usize, size: usize, rng: &mut StdRng) -> GroupStrategy {
    match i % 4 {
        0 => GroupStrategy::Product,
        1 => {
            let weights = (0..size).map(|_| rng.gen_range(0.1..1.0)).collect();
            GroupStrategy::WeightedAverage(weights)
        }
        2 => GroupStrategy::LeastMisery,
        _ => GroupStrategy::MostPleasure,
    }
}

/// Builds the deterministic workload (identities carried by name).
pub fn build_workload(config: WorkloadConfig) -> Workload {
    let db = generate(config.team.clone());
    let rules = mood_rules(&db);
    let name = |kb: &Kb, id| kb.voc.individual_name(id).to_string();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut records = Vec::with_capacity(config.requests * 2);
    for i in 0..config.requests {
        let team = &db.teams[rng.gen_range(0..db.teams.len())];
        if rng.gen_bool(config.churn) {
            let member = team[rng.gen_range(0..team.len())];
            let genre = GENRES[rng.gen_range(0..GENRES.len())];
            records.push(WorkloadRecord::Assert {
                subject: name(&db.kb, member),
                fact: WorkloadFact::ConceptProb(format!("Mood{genre}"), rng.gen_range(0.05..=0.95)),
            });
        }
        // Sample distinct movies: group aggregation requires each member
        // to score a duplicate-free document set.
        let mut docs: Vec<String> = Vec::with_capacity(config.docs_per_request);
        while docs.len() < config.docs_per_request.min(db.movies.len()) {
            let candidate = name(&db.kb, db.movies[rng.gen_range(0..db.movies.len())]);
            if !docs.contains(&candidate) {
                docs.push(candidate);
            }
        }
        records.push(WorkloadRecord::RankGroup {
            users: team.iter().map(|&m| name(&db.kb, m)).collect(),
            docs,
            k: config.k,
            strategy: pick_strategy(i, team.len(), &mut rng),
        });
    }

    Workload {
        meta: WorkloadMeta {
            domain: "teamctx".into(),
            seed: config.seed,
            comment: format!(
                "teams={} size={} movies={} requests={} churn={}",
                config.team.teams,
                config.team.team_size,
                config.team.movies,
                config.requests,
                config.churn
            ),
        },
        kb: db.kb,
        rules,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_core::serve::{replay_workload, workload_service, ServiceConfig};
    use capra_core::LineageEngine;

    #[test]
    fn same_config_same_bytes() {
        let a = build_workload(WorkloadConfig::tiny());
        let b = build_workload(WorkloadConfig::tiny());
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn covers_every_strategy_shape() {
        let w = build_workload(WorkloadConfig::tiny());
        let mut shapes = std::collections::BTreeSet::new();
        for r in &w.records {
            if let WorkloadRecord::RankGroup { strategy, .. } = r {
                shapes.insert(match strategy {
                    GroupStrategy::Product => 0,
                    GroupStrategy::WeightedAverage(_) => 1,
                    GroupStrategy::LeastMisery => 2,
                    GroupStrategy::MostPleasure => 3,
                });
            }
        }
        assert_eq!(shapes.len(), 4);
    }

    #[test]
    fn replays_deterministically() {
        let w = build_workload(WorkloadConfig::tiny());
        let run = || {
            let svc = workload_service(LineageEngine::new(), ServiceConfig::default(), &w);
            replay_workload(&svc, &w).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.transcript_hash, b.transcript_hash);
        assert_eq!(a.errors, 0);
        assert_eq!(a.group_ranks as usize, w.rank_records());
    }
}
