//! Text syntax for concept expressions.
//!
//! Grammar (case-insensitive keywords, `SOME`/`ONLY` accepted as synonyms
//! for `EXISTS`/`FORALL`):
//!
//! ```text
//! concept := conj ( OR conj )*
//! conj    := unary ( AND unary )*
//! unary   := NOT unary
//!          | EXISTS role '.' unary
//!          | FORALL role '.' unary
//!          | primary
//! primary := '(' concept ')'
//!          | '{' name ( ',' name )* '}'
//!          | TOP | BOTTOM
//!          | name
//! name    := [A-Za-z_][A-Za-z0-9_-]*
//! ```
//!
//! Unknown names are interned into the supplied [`Vocabulary`]: bare names
//! become atomic concepts, names inside `{…}` become individuals, and names
//! after `EXISTS`/`FORALL` become roles. [`crate::Concept::display`] prints
//! concepts back in this syntax, and the round-trip is property-tested.

use crate::{Concept, DlError, Result, Vocabulary};

/// Parses a concept expression, interning names into `voc`.
pub fn parse_concept(input: &str, voc: &mut Vocabulary) -> Result<Concept> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        voc,
        input_len: input.len(),
    };
    let concept = parser.concept()?;
    parser.expect_end()?;
    Ok(concept)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Name(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Dot,
}

/// A token with its byte offset (for error messages).
type Spanned = (Tok, usize);

fn lex(input: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            b'{' => {
                out.push((Tok::LBrace, i));
                i += 1;
            }
            b'}' => {
                out.push((Tok::RBrace, i));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            b'.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                out.push((Tok::Name(input[start..i].to_string()), start));
            }
            other => {
                return Err(DlError::Parse {
                    at: i,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'v> {
    tokens: Vec<Spanned>,
    pos: usize,
    voc: &'v mut Vocabulary,
    input_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at(&self) -> usize {
        self.peek().map_or(self.input_len, |(_, at)| *at)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(DlError::Parse {
            at: self.at(),
            message: message.into(),
        })
    }

    /// Is the next token the given (case-insensitive) keyword?
    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some((Tok::Name(n), _)) if n.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn concept(&mut self) -> Result<Concept> {
        let mut parts = vec![self.conj()?];
        while self.eat_keyword("OR") {
            parts.push(self.conj()?);
        }
        Ok(Concept::or(parts))
    }

    fn conj(&mut self) -> Result<Concept> {
        let mut parts = vec![self.unary()?];
        while self.eat_keyword("AND") {
            parts.push(self.unary()?);
        }
        Ok(Concept::and(parts))
    }

    fn unary(&mut self) -> Result<Concept> {
        if self.eat_keyword("NOT") {
            return Ok(Concept::not(self.unary()?));
        }
        if self.eat_keyword("EXISTS") || self.eat_keyword("SOME") {
            return self.restriction(true);
        }
        if self.eat_keyword("FORALL") || self.eat_keyword("ONLY") {
            return self.restriction(false);
        }
        self.primary()
    }

    fn restriction(&mut self, existential: bool) -> Result<Concept> {
        let role = match self.bump() {
            Some((Tok::Name(n), _)) => self.voc.role(&n),
            _ => return self.err("expected role name after EXISTS/FORALL"),
        };
        match self.bump() {
            Some((Tok::Dot, _)) => {}
            _ => return self.err("expected `.` after role name"),
        }
        let filler = self.unary()?;
        Ok(if existential {
            Concept::exists(role, filler)
        } else {
            Concept::forall(role, filler)
        })
    }

    fn primary(&mut self) -> Result<Concept> {
        match self.bump() {
            Some((Tok::LParen, _)) => {
                let inner = self.concept()?;
                match self.bump() {
                    Some((Tok::RParen, _)) => Ok(inner),
                    _ => self.err("expected `)`"),
                }
            }
            Some((Tok::LBrace, _)) => {
                let mut inds = Vec::new();
                loop {
                    match self.bump() {
                        Some((Tok::Name(n), _)) => inds.push(self.voc.individual(&n)),
                        _ => return self.err("expected individual name inside `{…}`"),
                    }
                    match self.bump() {
                        Some((Tok::Comma, _)) => continue,
                        Some((Tok::RBrace, _)) => break,
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
                Ok(Concept::one_of(inds))
            }
            Some((Tok::Name(n), _)) => {
                if n.eq_ignore_ascii_case("TOP") {
                    Ok(Concept::Top)
                } else if n.eq_ignore_ascii_case("BOTTOM") {
                    Ok(Concept::Bottom)
                } else {
                    Ok(Concept::atomic(self.voc.concept(&n)))
                }
            }
            _ => self.err("expected a concept"),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Concept, Vocabulary) {
        let mut voc = Vocabulary::new();
        let c = parse_concept(s, &mut voc).unwrap_or_else(|e| panic!("parse `{s}`: {e}"));
        (c, voc)
    }

    #[test]
    fn parses_paper_rule_r1_preference() {
        let (c, voc) = parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}");
        let program = voc.find_concept("TvProgram").unwrap();
        let genre = voc.find_role("hasGenre").unwrap();
        let hi = voc.find_individual("HUMAN-INTEREST").unwrap();
        assert_eq!(
            c,
            Concept::and([
                Concept::atomic(program),
                Concept::exists(genre, Concept::one_of([hi])),
            ])
        );
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let (c, voc) = parse("A AND B OR C");
        let a = Concept::atomic(voc.find_concept("A").unwrap());
        let b = Concept::atomic(voc.find_concept("B").unwrap());
        let cc = Concept::atomic(voc.find_concept("C").unwrap());
        assert_eq!(c, Concept::or([Concept::and([a, b]), cc]));
    }

    #[test]
    fn parentheses_override_precedence() {
        let (c, voc) = parse("A AND (B OR C)");
        let a = Concept::atomic(voc.find_concept("A").unwrap());
        let b = Concept::atomic(voc.find_concept("B").unwrap());
        let cc = Concept::atomic(voc.find_concept("C").unwrap());
        assert_eq!(c, Concept::and([a, Concept::or([b, cc])]));
    }

    #[test]
    fn keywords_case_insensitive_and_synonyms() {
        let (c1, _) = parse("some hasSubject.{News}");
        let (c2, _) = parse("EXISTS hasSubject.{News}");
        // Same shape modulo vocabulary (fresh per parse) — compare display.
        assert!(matches!(c1, Concept::Exists(..)));
        assert!(matches!(c2, Concept::Exists(..)));
        let (c3, _) = parse("only watches.TvProgram");
        assert!(matches!(c3, Concept::Forall(..)));
        let (c4, _) = parse("not Weekend");
        assert!(matches!(c4, Concept::Not(_)));
    }

    #[test]
    fn top_bottom_literals() {
        assert_eq!(parse("TOP").0, Concept::Top);
        assert_eq!(parse("bottom").0, Concept::Bottom);
    }

    #[test]
    fn multi_individual_nominal() {
        let (c, voc) = parse("{News, Sports, Weather}");
        match c {
            Concept::OneOf(inds) => {
                assert_eq!(inds.len(), 3);
                assert!(inds.contains(&voc.find_individual("Sports").unwrap()));
            }
            other => panic!("expected nominal, got {other:?}"),
        }
    }

    #[test]
    fn nested_restrictions() {
        let (c, _) = parse("EXISTS watches.(TvProgram AND EXISTS hasGenre.{News})");
        match c {
            Concept::Exists(_, filler) => assert!(matches!(*filler, Concept::And(_))),
            other => panic!("expected Exists, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_reported() {
        let mut voc = Vocabulary::new();
        let err = parse_concept("A AND ?", &mut voc).unwrap_err();
        assert!(matches!(err, DlError::Parse { at: 6, .. }), "{err}");
        let err = parse_concept("EXISTS r X", &mut voc).unwrap_err();
        assert!(err.to_string().contains('.'), "{err}");
        let err = parse_concept("A B", &mut voc).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        let err = parse_concept("{}", &mut voc).unwrap_err();
        assert!(err.to_string().contains("individual"), "{err}");
    }

    #[test]
    fn display_parser_round_trip() {
        let inputs = [
            "TvProgram AND EXISTS hasGenre.{HumanInterest}",
            "NOT (Weekend OR Holiday)",
            "FORALL watches.(News OR Sports)",
            "TOP",
            "A AND B AND NOT C",
        ];
        for s in inputs {
            let mut voc = Vocabulary::new();
            let c = parse_concept(s, &mut voc).unwrap();
            let printed = c.display(&voc).to_string();
            let reparsed = parse_concept(&printed, &mut voc).unwrap();
            assert_eq!(reparsed, c, "round-trip failed for `{s}` → `{printed}`");
        }
    }
}
