use std::fmt;

/// Errors raised by the DL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlError {
    /// Syntax error while parsing a concept expression.
    Parse {
        /// Byte offset of the error in the input.
        at: usize,
        /// Human-readable description.
        message: String,
    },
    /// A TBox definition would introduce a terminological cycle.
    CyclicDefinition(String),
    /// A concept name was defined twice in a TBox.
    DuplicateDefinition(String),
}

impl fmt::Display for DlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlError::Parse { at, message } => {
                write!(f, "concept syntax error at byte {at}: {message}")
            }
            DlError::CyclicDefinition(name) => {
                write!(f, "TBox definition of `{name}` is cyclic")
            }
            DlError::DuplicateDefinition(name) => {
                write!(f, "concept `{name}` is defined twice in the TBox")
            }
        }
    }
}

impl std::error::Error for DlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = DlError::Parse {
            at: 7,
            message: "expected concept".into(),
        };
        assert!(e.to_string().contains("byte 7"));
        assert!(DlError::CyclicDefinition("Weekend".into())
            .to_string()
            .contains("Weekend"));
    }
}
