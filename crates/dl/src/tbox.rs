use std::collections::{BTreeMap, BTreeSet};

use crate::{Concept, ConceptName, DlError, Result, Vocabulary};

/// A terminology: acyclic concept definitions `A ≡ C`.
///
/// Definitions let applications name reusable context/preference concepts
/// (e.g. `WorkdayMorning ≡ Workday AND Morning`) and use the names inside
/// preference rules. [`TBox::unfold`] expands all defined names, which is
/// how the reasoner applies the terminology; cycles are rejected at
/// definition time so unfolding always terminates.
#[derive(Debug, Clone, Default)]
pub struct TBox {
    definitions: BTreeMap<ConceptName, Concept>,
    /// Monotonic version counter, bumped on every accepted definition.
    epoch: u64,
}

impl TBox {
    /// Creates an empty TBox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the definition `name ≡ concept`.
    ///
    /// Fails if `name` is already defined or if the definition would create
    /// a cycle (directly or through other definitions). The vocabulary is
    /// only used for error messages.
    pub fn define(&mut self, name: ConceptName, concept: Concept, voc: &Vocabulary) -> Result<()> {
        if self.definitions.contains_key(&name) {
            return Err(DlError::DuplicateDefinition(
                voc.concept_name(name).to_string(),
            ));
        }
        // Cycle check: walk the dependency graph from the new definition.
        let mut stack: Vec<ConceptName> = concept.atomic_names().into_iter().collect();
        let mut seen: BTreeSet<ConceptName> = BTreeSet::new();
        while let Some(dep) = stack.pop() {
            if dep == name {
                return Err(DlError::CyclicDefinition(
                    voc.concept_name(name).to_string(),
                ));
            }
            if !seen.insert(dep) {
                continue;
            }
            if let Some(body) = self.definitions.get(&dep) {
                stack.extend(body.atomic_names());
            }
        }
        self.definitions.insert(name, concept);
        self.epoch += 1;
        Ok(())
    }

    /// Monotonic mutation counter; rejected definitions do not bump it.
    /// Unfolding results (and anything derived from them) are valid while
    /// the epoch they were computed at still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The definition of `name`, if any.
    pub fn definition(&self, name: ConceptName) -> Option<&Concept> {
        self.definitions.get(&name)
    }

    /// Iterates over all definitions in `ConceptName` order. Replaying the
    /// yielded pairs through [`TBox::define`] on an empty TBox (against a
    /// vocabulary holding the same handles) rebuilds an equal TBox with an
    /// equal epoch: the epoch counts accepted definitions, and acyclicity
    /// of the whole set makes the replay order irrelevant.
    pub fn definitions(&self) -> impl Iterator<Item = (ConceptName, &Concept)> + '_ {
        self.definitions.iter().map(|(name, c)| (*name, c))
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.definitions.len()
    }

    /// True if the TBox has no definitions.
    pub fn is_empty(&self) -> bool {
        self.definitions.is_empty()
    }

    /// Expands every defined concept name in `concept`, recursively.
    /// Terminates because definitions are acyclic.
    pub fn unfold(&self, concept: &Concept) -> Concept {
        match concept {
            Concept::Atomic(name) => match self.definitions.get(name) {
                Some(body) => self.unfold(body),
                None => concept.clone(),
            },
            Concept::Top | Concept::Bottom | Concept::OneOf(_) => concept.clone(),
            Concept::Not(inner) => Concept::not(self.unfold(inner)),
            Concept::And(kids) => Concept::and(kids.iter().map(|k| self.unfold(k))),
            Concept::Or(kids) => Concept::or(kids.iter().map(|k| self.unfold(k))),
            Concept::Exists(r, filler) => Concept::exists(*r, self.unfold(filler)),
            Concept::Forall(r, filler) => Concept::forall(*r, self.unfold(filler)),
        }
    }

    /// Sound, incomplete structural subsumption: returns `true` only if
    /// `general` provably subsumes (⊒) `specific` by structural rules; a
    /// `false` answer is *unknown*, not a refutation.
    ///
    /// Used to prune preference rules whose context can never apply. Both
    /// sides are unfolded first.
    pub fn subsumes(&self, general: &Concept, specific: &Concept) -> bool {
        let g = self.unfold(general);
        let s = self.unfold(specific);
        structural_subsumes(&g, &s)
    }
}

/// Structural subsumption `general ⊒ specific` (sound, incomplete).
fn structural_subsumes(general: &Concept, specific: &Concept) -> bool {
    if general == specific || *general == Concept::Top || *specific == Concept::Bottom {
        return true;
    }
    match (general, specific) {
        // ⊓ on the general side: every conjunct must subsume.
        (Concept::And(gs), _) => gs.iter().all(|g| structural_subsumes(g, specific)),
        // ⊔ on the specific side: every disjunct must be subsumed.
        (_, Concept::Or(ss)) => ss.iter().all(|s| structural_subsumes(general, s)),
        // ⊔ on the general side: some disjunct subsumes.
        (Concept::Or(gs), _) => gs.iter().any(|g| structural_subsumes(g, specific)),
        // ⊓ on the specific side: some conjunct is subsumed.
        (_, Concept::And(ss)) => ss.iter().any(|s| structural_subsumes(general, s)),
        (Concept::OneOf(gset), Concept::OneOf(sset)) => sset.is_subset(gset),
        (Concept::Exists(gr, gf), Concept::Exists(sr, sf)) => {
            gr == sr && structural_subsumes(gf, sf)
        }
        (Concept::Forall(gr, gf), Concept::Forall(sr, sf)) => {
            gr == sr && structural_subsumes(gf, sf)
        }
        (Concept::Not(g), Concept::Not(s)) => structural_subsumes(s, g),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_concept;

    fn setup() -> (Vocabulary, TBox) {
        (Vocabulary::new(), TBox::new())
    }

    #[test]
    fn define_and_unfold() {
        let (mut voc, mut tbox) = setup();
        let wm = voc.concept("WorkdayMorning");
        let def = parse_concept("Workday AND Morning", &mut voc).unwrap();
        tbox.define(wm, def.clone(), &voc).unwrap();
        assert_eq!(tbox.len(), 1);
        assert_eq!(tbox.definition(wm), Some(&def));

        let query = parse_concept("WorkdayMorning AND AtHome", &mut voc).unwrap();
        let unfolded = tbox.unfold(&query);
        let expected = parse_concept("Workday AND Morning AND AtHome", &mut voc).unwrap();
        assert_eq!(unfolded, expected);
    }

    #[test]
    fn nested_definitions_unfold_transitively() {
        let (mut voc, mut tbox) = setup();
        let a = voc.concept("A");
        let b = voc.concept("B");
        tbox.define(a, parse_concept("B AND X", &mut voc).unwrap(), &voc)
            .unwrap();
        tbox.define(b, parse_concept("Y OR Z", &mut voc).unwrap(), &voc)
            .unwrap();
        let unfolded = tbox.unfold(&Concept::atomic(a));
        let expected = parse_concept("(Y OR Z) AND X", &mut voc).unwrap();
        assert_eq!(unfolded, expected);
    }

    #[test]
    fn rejects_duplicate_definition() {
        let (mut voc, mut tbox) = setup();
        let a = voc.concept("A");
        assert_eq!(tbox.epoch(), 0);
        tbox.define(a, Concept::Top, &voc).unwrap();
        assert_eq!(tbox.epoch(), 1);
        assert!(matches!(
            tbox.define(a, Concept::Bottom, &voc),
            Err(DlError::DuplicateDefinition(_))
        ));
        assert_eq!(tbox.epoch(), 1, "rejected definition must not bump");
    }

    #[test]
    fn rejects_direct_cycle() {
        let (mut voc, mut tbox) = setup();
        let a = voc.concept("A");
        let body = parse_concept("A AND B", &mut voc).unwrap();
        assert!(matches!(
            tbox.define(a, body, &voc),
            Err(DlError::CyclicDefinition(_))
        ));
    }

    #[test]
    fn rejects_indirect_cycle() {
        let (mut voc, mut tbox) = setup();
        let a = voc.concept("A");
        let b = voc.concept("B");
        tbox.define(a, parse_concept("B", &mut voc).unwrap(), &voc)
            .unwrap();
        assert!(matches!(
            tbox.define(b, parse_concept("A OR C", &mut voc).unwrap(), &voc),
            Err(DlError::CyclicDefinition(_))
        ));
    }

    #[test]
    fn subsumption_basics() {
        let (mut voc, tbox) = setup();
        let ab = parse_concept("A AND B", &mut voc).unwrap();
        let a = parse_concept("A", &mut voc).unwrap();
        assert!(tbox.subsumes(&a, &ab), "A ⊒ A ⊓ B");
        assert!(!tbox.subsumes(&ab, &a), "A ⊓ B ⋣ A");
        assert!(tbox.subsumes(&Concept::Top, &a));
        assert!(tbox.subsumes(&a, &Concept::Bottom));
        let a_or_b = parse_concept("A OR B", &mut voc).unwrap();
        assert!(tbox.subsumes(&a_or_b, &a), "A ⊔ B ⊒ A");
    }

    #[test]
    fn subsumption_through_restrictions_and_nominals() {
        let (mut voc, tbox) = setup();
        let some_any = parse_concept("EXISTS r.{x, y}", &mut voc).unwrap();
        let some_x = parse_concept("EXISTS r.{x}", &mut voc).unwrap();
        assert!(tbox.subsumes(&some_any, &some_x));
        assert!(!tbox.subsumes(&some_x, &some_any));
        let not_a = parse_concept("NOT A", &mut voc).unwrap();
        let not_ab = parse_concept("NOT (A AND B)", &mut voc).unwrap();
        assert!(tbox.subsumes(&not_ab, &not_a), "¬(A⊓B) ⊒ ¬A");
    }

    #[test]
    fn subsumption_uses_definitions() {
        let (mut voc, mut tbox) = setup();
        let wm = voc.concept("WorkdayMorning");
        tbox.define(
            wm,
            parse_concept("Workday AND Morning", &mut voc).unwrap(),
            &voc,
        )
        .unwrap();
        let workday = parse_concept("Workday", &mut voc).unwrap();
        assert!(tbox.subsumes(&workday, &Concept::atomic(wm)));
    }
}
