use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use capra_events::EventExpr;

use crate::{ABox, Concept, IndividualId, TBox};

/// Closed-world instance retrieval with event-expression lineage.
///
/// For every individual `x` in the ABox domain and concept `C`, the reasoner
/// derives the event expression under which `x : C`, following the paper's
/// view construction: *"we can construct a database view for each concept
/// expression containing all tuples that are included in the concept
/// expression, together with an event expression as a measure of the
/// probability by which they are included."*
///
/// Lineage propagation rules (Fuhr–Rölleke style):
///
/// * `C ⊓ D` — conjunction of the membership events,
/// * `C ⊔ D` — disjunction,
/// * `¬C` — complement (closed world over the domain),
/// * `∃R.C` — disjunction over `R`-edges of (edge event ∧ filler event),
/// * `∀R.C` — conjunction over `R`-edges of (¬edge event ∨ filler event);
///   vacuously true for individuals without edges (closed world).
///
/// Every derived sub-concept view is **memoised per reasoner**: conjuncts,
/// fillers and whole concepts shared across preference rules are computed
/// once, then returned as shared maps (`Arc`). Reuse one reasoner when
/// binding a rule set (see `bind_rules` in `capra-core`) so that rules with
/// overlapping concept structure share the derivation work.
pub struct Reasoner<'a> {
    abox: &'a ABox,
    tbox: Option<&'a TBox>,
    /// Per-sub-concept view cache.
    cache: RefCell<HashMap<Concept, Arc<BTreeMap<IndividualId, EventExpr>>>>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
}

impl<'a> Reasoner<'a> {
    /// A reasoner over an ABox alone (atomic concepts mean their assertions).
    pub fn new(abox: &'a ABox) -> Self {
        Self {
            abox,
            tbox: None,
            cache: RefCell::new(HashMap::new()),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
        }
    }

    /// A reasoner that first unfolds defined concept names through a TBox.
    pub fn with_tbox(abox: &'a ABox, tbox: &'a TBox) -> Self {
        Self {
            tbox: Some(tbox),
            ..Self::new(abox)
        }
    }

    /// `(hits, misses)` of the sub-concept view cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }

    /// Retrieves all instances of `concept` with their membership events.
    /// Individuals whose membership simplifies to `False` are omitted.
    pub fn instances(&self, concept: &Concept) -> BTreeMap<IndividualId, EventExpr> {
        (*self.instances_shared(concept)).clone()
    }

    /// Shared-map variant of [`Reasoner::instances`]: the returned view is
    /// the memoised one (cheap to clone, safe to hold across calls). The
    /// hot path for rule binding.
    pub fn instances_shared(&self, concept: &Concept) -> Arc<BTreeMap<IndividualId, EventExpr>> {
        let unfolded;
        let concept = match self.tbox {
            Some(tbox) => {
                unfolded = tbox.unfold(concept);
                &unfolded
            }
            None => concept,
        };
        self.instances_memo(concept)
    }

    /// The event under which a single individual is a member of `concept`.
    pub fn membership(&self, ind: IndividualId, concept: &Concept) -> EventExpr {
        self.instances_shared(concept)
            .get(&ind)
            .cloned()
            .unwrap_or(EventExpr::False)
    }

    fn all_true(&self) -> BTreeMap<IndividualId, EventExpr> {
        self.abox
            .domain()
            .iter()
            .map(|&i| (i, EventExpr::True))
            .collect()
    }

    /// Memoising wrapper around [`Reasoner::instances_rec`].
    fn instances_memo(&self, concept: &Concept) -> Arc<BTreeMap<IndividualId, EventExpr>> {
        if let Some(hit) = self.cache.borrow().get(concept) {
            self.cache_hits.set(self.cache_hits.get() + 1);
            return Arc::clone(hit);
        }
        self.cache_misses.set(self.cache_misses.get() + 1);
        let mut computed = self.instances_rec(concept);
        // `False` rows carry no information under closed-world semantics;
        // dropping them here keeps every memoised view canonical.
        computed.retain(|_, e| !e.is_false());
        let shared = Arc::new(computed);
        self.cache
            .borrow_mut()
            .insert(concept.clone(), Arc::clone(&shared));
        shared
    }

    fn instances_rec(&self, concept: &Concept) -> BTreeMap<IndividualId, EventExpr> {
        match concept {
            Concept::Top => self.all_true(),
            Concept::Bottom => BTreeMap::new(),
            Concept::Atomic(name) => self
                .abox
                .concept_rows(*name)
                .map(|(i, e)| (i, e.clone()))
                .collect(),
            Concept::OneOf(inds) => inds
                .iter()
                .filter(|i| self.abox.domain().contains(i))
                .map(|&i| (i, EventExpr::True))
                .collect(),
            Concept::Not(inner) => {
                let pos = self.instances_memo(inner);
                self.abox
                    .domain()
                    .iter()
                    .map(|&i| {
                        let e = pos.get(&i).cloned().unwrap_or(EventExpr::False);
                        (i, EventExpr::not(e))
                    })
                    .collect()
            }
            Concept::And(kids) => {
                let views: Vec<_> = kids.iter().map(|k| self.instances_memo(k)).collect();
                // Intersect starting from the smallest view; each conjunct
                // view was derived (or fetched) once, even when the same
                // sub-concept appears in several rules.
                let smallest = views
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, v)| v.len())
                    .map(|(i, _)| i)
                    .expect("And constructor guarantees ≥ 2 children");
                let mut out = BTreeMap::new();
                'candidates: for (&ind, first_event) in views[smallest].iter() {
                    let mut parts = vec![first_event.clone()];
                    for (j, view) in views.iter().enumerate() {
                        if j == smallest {
                            continue;
                        }
                        match view.get(&ind) {
                            Some(e) => parts.push(e.clone()),
                            None => continue 'candidates,
                        }
                    }
                    out.insert(ind, EventExpr::and(parts));
                }
                out
            }
            Concept::Or(kids) => {
                let mut acc: BTreeMap<IndividualId, Vec<EventExpr>> = BTreeMap::new();
                for kid in kids.iter() {
                    for (&i, e) in self.instances_memo(kid).iter() {
                        acc.entry(i).or_default().push(e.clone());
                    }
                }
                acc.into_iter()
                    .map(|(i, events)| (i, EventExpr::or(events)))
                    .collect()
            }
            Concept::Exists(role, filler) => {
                let members = self.instances_memo(filler);
                let mut acc: BTreeMap<IndividualId, Vec<EventExpr>> = BTreeMap::new();
                for edge in self.abox.role_edges(*role) {
                    if let Some(filler_event) = members.get(&edge.dst) {
                        acc.entry(edge.src)
                            .or_default()
                            .push(EventExpr::and([edge.event.clone(), filler_event.clone()]));
                    }
                }
                acc.into_iter()
                    .map(|(i, alts)| (i, EventExpr::or(alts)))
                    .collect()
            }
            Concept::Forall(role, filler) => {
                let members = self.instances_memo(filler);
                let mut acc: BTreeMap<IndividualId, Vec<EventExpr>> = self
                    .abox
                    .domain()
                    .iter()
                    .map(|&i| (i, Vec::new()))
                    .collect();
                for edge in self.abox.role_edges(*role) {
                    let filler_event = members.get(&edge.dst).cloned().unwrap_or(EventExpr::False);
                    // Edge present ⇒ filler must hold: ¬edge ∨ filler.
                    acc.entry(edge.src).or_default().push(EventExpr::or([
                        EventExpr::not(edge.event.clone()),
                        filler_event,
                    ]));
                }
                acc.into_iter()
                    .map(|(i, constraints)| (i, EventExpr::and(constraints)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_concept, Vocabulary};
    use capra_events::{Evaluator, Universe};

    /// Small certain-world KB: two programs, one genre edge each.
    fn kb() -> (Vocabulary, ABox) {
        let mut voc = Vocabulary::new();
        let mut abox = ABox::new();
        let program = voc.concept("TvProgram");
        let news = voc.concept("NewsShow");
        let genre = voc.role("hasGenre");
        let oprah = voc.individual("Oprah");
        let bbc = voc.individual("BBC");
        let hi = voc.individual("HumanInterest");
        let weather = voc.individual("Weather");
        abox.assert_concept(oprah, program, EventExpr::True);
        abox.assert_concept(bbc, program, EventExpr::True);
        abox.assert_concept(bbc, news, EventExpr::True);
        abox.assert_role(oprah, genre, hi, EventExpr::True);
        abox.assert_role(bbc, genre, weather, EventExpr::True);
        (voc, abox)
    }

    #[test]
    fn atomic_and_top_bottom() {
        let (mut voc, abox) = kb();
        let r = Reasoner::new(&abox);
        let programs = r.instances(&parse_concept("TvProgram", &mut voc).unwrap());
        assert_eq!(programs.len(), 2);
        assert_eq!(r.instances(&Concept::Top).len(), abox.domain().len());
        assert!(r.instances(&Concept::Bottom).is_empty());
    }

    #[test]
    fn conjunction_intersects() {
        let (mut voc, abox) = kb();
        let r = Reasoner::new(&abox);
        let c = parse_concept("TvProgram AND NewsShow", &mut voc).unwrap();
        let m = r.instances(&c);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&voc.find_individual("BBC").unwrap()));
    }

    #[test]
    fn negation_is_closed_world() {
        let (mut voc, abox) = kb();
        let r = Reasoner::new(&abox);
        let c = parse_concept("TvProgram AND NOT NewsShow", &mut voc).unwrap();
        let m = r.instances(&c);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&voc.find_individual("Oprah").unwrap()));
    }

    #[test]
    fn exists_follows_edges() {
        let (mut voc, abox) = kb();
        let r = Reasoner::new(&abox);
        let c = parse_concept("EXISTS hasGenre.{HumanInterest}", &mut voc).unwrap();
        let m = r.instances(&c);
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.get(&voc.find_individual("Oprah").unwrap()),
            Some(&EventExpr::True)
        );
    }

    #[test]
    fn forall_vacuous_without_edges() {
        let (mut voc, abox) = kb();
        let r = Reasoner::new(&abox);
        let c = parse_concept("FORALL hasGenre.{HumanInterest}", &mut voc).unwrap();
        let m = r.instances(&c);
        // Oprah's only edge goes to HumanInterest → true. BBC's edge goes to
        // Weather → false. Everything without edges (genres) → vacuously true.
        assert!(m.contains_key(&voc.find_individual("Oprah").unwrap()));
        assert!(!m.contains_key(&voc.find_individual("BBC").unwrap()));
        assert!(m.contains_key(&voc.find_individual("Weather").unwrap()));
    }

    #[test]
    fn uncertain_membership_propagates_lineage() {
        let mut voc = Vocabulary::new();
        let mut u = Universe::new();
        let mut abox = ABox::new();
        let program = voc.concept("TvProgram");
        let genre = voc.role("hasGenre");
        let ch5 = voc.individual("Channel5");
        let hi = voc.individual("HumanInterest");
        let weather = voc.individual("Weather");
        abox.assert_concept(ch5, program, EventExpr::True);
        // Channel 5 news: human interest 0.95, weather 0.85 (paper Table 1).
        let t1 = u.add_bool("hi-tag", 0.95).unwrap();
        let t2 = u.add_bool("weather-tag", 0.85).unwrap();
        abox.assert_role(ch5, genre, hi, u.bool_event(t1).unwrap());
        abox.assert_role(ch5, genre, weather, u.bool_event(t2).unwrap());

        let r = Reasoner::new(&abox);
        let mut ev = Evaluator::new(&u);
        let c = parse_concept("EXISTS hasGenre.{HumanInterest}", &mut voc).unwrap();
        let e = r.membership(ch5, &c);
        assert!((ev.prob(&e) - 0.95).abs() < 1e-12);

        // Either genre: 1 − 0.05·0.15.
        let c = parse_concept("EXISTS hasGenre.{HumanInterest, Weather}", &mut voc).unwrap();
        let e = r.membership(ch5, &c);
        assert!((ev.prob(&e) - (1.0 - 0.05 * 0.15)).abs() < 1e-12);

        // Both genres: 0.95 · 0.85.
        let c = parse_concept(
            "EXISTS hasGenre.{HumanInterest} AND EXISTS hasGenre.{Weather}",
            &mut voc,
        )
        .unwrap();
        let e = r.membership(ch5, &c);
        assert!((ev.prob(&e) - 0.95 * 0.85).abs() < 1e-12);
    }

    #[test]
    fn membership_of_absent_individual_is_false() {
        let (mut voc, abox) = kb();
        let r = Reasoner::new(&abox);
        let ghost = voc.individual("Ghost");
        let c = parse_concept("TvProgram", &mut voc).unwrap();
        assert_eq!(r.membership(ghost, &c), EventExpr::False);
    }

    #[test]
    fn nominals_restricted_to_domain() {
        let (mut voc, abox) = kb();
        let ghost = voc.individual("Ghost");
        let r = Reasoner::new(&abox);
        let c = Concept::one_of([ghost, voc.find_individual("Oprah").unwrap()]);
        let m = r.instances(&c);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn shared_subconcepts_are_derived_once() {
        let (mut voc, abox) = kb();
        let r = Reasoner::new(&abox);
        let c1 = parse_concept("TvProgram AND EXISTS hasGenre.{HumanInterest}", &mut voc).unwrap();
        let c2 = parse_concept("TvProgram AND EXISTS hasGenre.{Weather}", &mut voc).unwrap();
        let m1 = r.instances(&c1);
        let (hits_before, _) = r.cache_stats();
        let _ = r.instances(&c2);
        let (hits_after, _) = r.cache_stats();
        assert!(
            hits_after > hits_before,
            "the shared TvProgram conjunct must be served from cache"
        );
        // Re-running a whole query derives nothing new.
        let (_, misses_before) = r.cache_stats();
        let m1_again = r.instances(&c1);
        let (_, misses_after) = r.cache_stats();
        assert_eq!(misses_before, misses_after, "repeat query is a pure hit");
        assert_eq!(m1, m1_again);
    }

    #[test]
    fn tbox_unfolding_applies() {
        let (mut voc, abox) = kb();
        let mut tbox = TBox::new();
        let hi_show = voc.concept("HumanInterestShow");
        let def = parse_concept("TvProgram AND EXISTS hasGenre.{HumanInterest}", &mut voc).unwrap();
        tbox.define(hi_show, def, &voc).unwrap();
        let r = Reasoner::with_tbox(&abox, &tbox);
        let m = r.instances(&Concept::atomic(hi_show));
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&voc.find_individual("Oprah").unwrap()));
    }
}
