use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::{ConceptName, IndividualId, RoleName, Vocabulary};

/// A Description Logic concept expression.
///
/// The language is the fragment the paper's preference rules need — atomic
/// concepts, nominals (`{HUMAN-INTEREST}`), boolean combinations and
/// existential restrictions — extended with value restrictions (`∀R.C`) for
/// completeness. Constructors simplify eagerly (flattening, deduplication,
/// canonical child ordering, constant folding, double-negation and
/// complement cancellation), mirroring `capra_events::EventExpr`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Concept {
    /// The universal concept ⊤ (every individual).
    Top,
    /// The empty concept ⊥.
    Bottom,
    /// An atomic (named) concept.
    Atomic(ConceptName),
    /// A nominal concept: exactly the listed individuals.
    OneOf(Arc<BTreeSet<IndividualId>>),
    /// Complement ¬C (closed-world over the ABox domain).
    Not(Arc<Concept>),
    /// Conjunction C₁ ⊓ … ⊓ Cₙ (children sorted, deduplicated).
    And(Arc<[Concept]>),
    /// Disjunction C₁ ⊔ … ⊔ Cₙ (children sorted, deduplicated).
    Or(Arc<[Concept]>),
    /// Existential restriction ∃R.C.
    Exists(RoleName, Arc<Concept>),
    /// Value restriction ∀R.C.
    Forall(RoleName, Arc<Concept>),
}

impl Concept {
    /// The atomic concept with the given name.
    pub fn atomic(name: ConceptName) -> Self {
        Concept::Atomic(name)
    }

    /// The nominal concept `{individuals…}`; empty nominals are ⊥.
    pub fn one_of<I: IntoIterator<Item = IndividualId>>(individuals: I) -> Self {
        let set: BTreeSet<IndividualId> = individuals.into_iter().collect();
        if set.is_empty() {
            Concept::Bottom
        } else {
            Concept::OneOf(Arc::new(set))
        }
    }

    /// Complement with double-negation and constant elimination.
    #[allow(clippy::should_implement_trait)] // constructor over values, not `!` on refs
    pub fn not(c: Concept) -> Self {
        match c {
            Concept::Top => Concept::Bottom,
            Concept::Bottom => Concept::Top,
            Concept::Not(inner) => inner.as_ref().clone(),
            other => Concept::Not(Arc::new(other)),
        }
    }

    /// Conjunction (empty conjunction is ⊤).
    pub fn and<I: IntoIterator<Item = Concept>>(items: I) -> Self {
        Self::nary(items, true)
    }

    /// Disjunction (empty disjunction is ⊥).
    pub fn or<I: IntoIterator<Item = Concept>>(items: I) -> Self {
        Self::nary(items, false)
    }

    /// Existential restriction `∃role.filler`.
    pub fn exists(role: RoleName, filler: Concept) -> Self {
        if filler == Concept::Bottom {
            // ∃R.⊥ has no instances.
            Concept::Bottom
        } else {
            Concept::Exists(role, Arc::new(filler))
        }
    }

    /// Value restriction `∀role.filler`.
    pub fn forall(role: RoleName, filler: Concept) -> Self {
        if filler == Concept::Top {
            // ∀R.⊤ is trivially true for every individual.
            Concept::Top
        } else {
            Concept::Forall(role, Arc::new(filler))
        }
    }

    fn nary<I: IntoIterator<Item = Concept>>(items: I, is_and: bool) -> Self {
        let (absorbing, neutral) = if is_and {
            (Concept::Bottom, Concept::Top)
        } else {
            (Concept::Top, Concept::Bottom)
        };
        let mut children: BTreeSet<Concept> = BTreeSet::new();
        let mut stack: Vec<Concept> = items.into_iter().collect();
        while let Some(item) = stack.pop() {
            match item {
                ref c if *c == neutral => {}
                ref c if *c == absorbing => return absorbing,
                Concept::And(kids) if is_and => stack.extend(kids.iter().cloned()),
                Concept::Or(kids) if !is_and => stack.extend(kids.iter().cloned()),
                other => {
                    children.insert(other);
                }
            }
        }
        for child in &children {
            if let Concept::Not(inner) = child {
                if children.contains(inner.as_ref()) {
                    return absorbing;
                }
            }
        }
        match children.len() {
            0 => neutral,
            1 => children.into_iter().next().expect("len checked"),
            _ => {
                let kids: Arc<[Concept]> = children.into_iter().collect();
                if is_and {
                    Concept::And(kids)
                } else {
                    Concept::Or(kids)
                }
            }
        }
    }

    /// All atomic concept names referenced (transitively).
    pub fn atomic_names(&self) -> BTreeSet<ConceptName> {
        let mut out = BTreeSet::new();
        self.walk(&mut |c| {
            if let Concept::Atomic(n) = c {
                out.insert(*n);
            }
        });
        out
    }

    /// All role names referenced (transitively).
    pub fn role_names(&self) -> BTreeSet<RoleName> {
        let mut out = BTreeSet::new();
        self.walk(&mut |c| match c {
            Concept::Exists(r, _) | Concept::Forall(r, _) => {
                out.insert(*r);
            }
            _ => {}
        });
        out
    }

    /// Pre-order traversal of the concept tree.
    pub fn walk(&self, f: &mut impl FnMut(&Concept)) {
        f(self);
        match self {
            Concept::Not(inner) => inner.walk(f),
            Concept::And(kids) | Concept::Or(kids) => {
                for k in kids.iter() {
                    k.walk(f);
                }
            }
            Concept::Exists(_, filler) | Concept::Forall(_, filler) => filler.walk(f),
            _ => {}
        }
    }

    /// Number of nodes in the concept tree.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Renders the concept with names resolved against a vocabulary, in the
    /// same syntax accepted by [`crate::parse_concept`].
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayConcept<'a> {
        DisplayConcept { concept: self, voc }
    }
}

/// Helper returned by [`Concept::display`]; round-trips through the parser.
pub struct DisplayConcept<'a> {
    concept: &'a Concept,
    voc: &'a Vocabulary,
}

impl DisplayConcept<'_> {
    fn fmt_concept(&self, c: &Concept, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match c {
            Concept::Top => write!(f, "TOP"),
            Concept::Bottom => write!(f, "BOTTOM"),
            Concept::Atomic(n) => write!(f, "{}", self.voc.concept_name(*n)),
            Concept::OneOf(inds) => {
                write!(f, "{{")?;
                for (i, ind) in inds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.voc.individual_name(*ind))?;
                }
                write!(f, "}}")
            }
            Concept::Not(inner) => {
                write!(f, "NOT ")?;
                self.fmt_child(inner, f)
            }
            Concept::And(kids) => self.fmt_nary(kids, " AND ", f),
            Concept::Or(kids) => self.fmt_nary(kids, " OR ", f),
            Concept::Exists(r, filler) => {
                write!(f, "EXISTS {}.", self.voc.role_name(*r))?;
                self.fmt_child(filler, f)
            }
            Concept::Forall(r, filler) => {
                write!(f, "FORALL {}.", self.voc.role_name(*r))?;
                self.fmt_child(filler, f)
            }
        }
    }

    fn fmt_child(&self, c: &Concept, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if matches!(c, Concept::And(_) | Concept::Or(_)) {
            write!(f, "(")?;
            self.fmt_concept(c, f)?;
            write!(f, ")")
        } else {
            self.fmt_concept(c, f)
        }
    }

    fn fmt_nary(&self, kids: &[Concept], sep: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in kids.iter().enumerate() {
            if i > 0 {
                write!(f, "{sep}")?;
            }
            self.fmt_child(k, f)?;
        }
        Ok(())
    }
}

impl fmt::Display for DisplayConcept<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_concept(self.concept, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> (Vocabulary, Concept, Concept, Concept) {
        let mut v = Vocabulary::new();
        let a = Concept::atomic(v.concept("A"));
        let b = Concept::atomic(v.concept("B"));
        let c = Concept::atomic(v.concept("C"));
        (v, a, b, c)
    }

    #[test]
    fn constants_fold() {
        let (_, a, ..) = voc();
        assert_eq!(Concept::and([a.clone(), Concept::Top]), a);
        assert_eq!(Concept::and([a.clone(), Concept::Bottom]), Concept::Bottom);
        assert_eq!(Concept::or([a.clone(), Concept::Top]), Concept::Top);
        assert_eq!(Concept::or([a.clone(), Concept::Bottom]), a);
        assert_eq!(Concept::and([]), Concept::Top);
        assert_eq!(Concept::or([]), Concept::Bottom);
    }

    #[test]
    fn flatten_dedup_and_order() {
        let (_, a, b, _) = voc();
        let n1 = Concept::and([a.clone(), Concept::and([b.clone(), a.clone()])]);
        let n2 = Concept::and([b.clone(), a.clone()]);
        assert_eq!(n1, n2);
        match n1 {
            Concept::And(kids) => assert_eq!(kids.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn complement_laws() {
        let (_, a, ..) = voc();
        assert_eq!(Concept::not(Concept::not(a.clone())), a);
        assert_eq!(
            Concept::and([a.clone(), Concept::not(a.clone())]),
            Concept::Bottom
        );
        assert_eq!(
            Concept::or([a.clone(), Concept::not(a.clone())]),
            Concept::Top
        );
        assert_eq!(Concept::not(Concept::Top), Concept::Bottom);
    }

    #[test]
    fn restriction_simplification() {
        let (mut v, a, ..) = voc();
        let r = v.role("r");
        assert_eq!(Concept::exists(r, Concept::Bottom), Concept::Bottom);
        assert_eq!(Concept::forall(r, Concept::Top), Concept::Top);
        assert!(matches!(Concept::exists(r, a.clone()), Concept::Exists(..)));
    }

    #[test]
    fn empty_nominal_is_bottom() {
        assert_eq!(Concept::one_of([]), Concept::Bottom);
    }

    #[test]
    fn collects_names() {
        let (mut v, a, b, _) = voc();
        let r = v.role("r");
        let c = Concept::and([a.clone(), Concept::exists(r, b.clone())]);
        assert_eq!(c.atomic_names().len(), 2);
        assert_eq!(c.role_names().len(), 1);
        assert_eq!(c.size(), 4);
    }

    #[test]
    fn display_round_trip_syntax() {
        let mut v = Vocabulary::new();
        let program = Concept::atomic(v.concept("TvProgram"));
        let genre = v.role("hasGenre");
        let hi = v.individual("HumanInterest");
        let c = Concept::and([program, Concept::exists(genre, Concept::one_of([hi]))]);
        let s = c.display(&v).to_string();
        assert!(s.contains("TvProgram"), "{s}");
        assert!(s.contains("EXISTS hasGenre.{HumanInterest}"), "{s}");
        let reparsed = crate::parse_concept(&s, &mut v).unwrap();
        assert_eq!(reparsed, c);
    }
}
