use std::collections::{BTreeMap, BTreeSet, HashMap};

use capra_events::EventExpr;

use crate::{ConceptName, IndividualId, RoleName};

/// A role assertion `(source, destination)` annotated with the event
/// expression under which it holds — the paper's role table row
/// `(SOURCE, DESTINATION, event expression)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleEdge {
    /// Source individual.
    pub src: IndividualId,
    /// Destination individual.
    pub dst: IndividualId,
    /// Event expression under which the edge exists.
    pub event: EventExpr,
}

/// An assertional knowledge base with uncertain assertions.
///
/// Mirrors the paper's naive implementation: each concept is a table of
/// `(individual, event expression)` rows and each role a table of
/// `(source, destination, event expression)` rows. The *domain* of the ABox
/// (used for closed-world negation and ⊤) is the set of individuals that
/// appear in any assertion plus any explicitly registered ones.
#[derive(Debug, Clone, Default)]
pub struct ABox {
    concepts: HashMap<ConceptName, BTreeMap<IndividualId, EventExpr>>,
    roles: HashMap<RoleName, Vec<RoleEdge>>,
    domain: BTreeSet<IndividualId>,
    /// Monotonic version counter, bumped on every mutation (assertions and
    /// domain registrations — a new domain member changes closed-world
    /// answers even without assertions).
    epoch: u64,
}

impl ABox {
    /// Creates an empty ABox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an individual in the domain without asserting anything
    /// about it (it will then be an instance of ⊤ and of closed-world
    /// negations).
    pub fn register_individual(&mut self, ind: IndividualId) {
        // Only an actual change bumps the epoch: lookup-style re-registration
        // (e.g. `Kb::individual` resolving an existing name per request) must
        // not invalidate binding caches.
        if self.domain.insert(ind) {
            self.epoch += 1;
        }
    }

    /// Monotonic mutation counter. Caches of reasoner-derived views (rule
    /// bindings, materialised concept tables) are valid exactly while the
    /// epoch they were built at still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Asserts `ind : concept` under `event`. Repeated assertions for the
    /// same pair are combined disjunctively (the membership holds if any of
    /// the asserted events happens).
    pub fn assert_concept(&mut self, ind: IndividualId, concept: ConceptName, event: EventExpr) {
        let grew = self.domain.insert(ind);
        if event.is_false() {
            // The dropped assertion still changed the KB iff it introduced
            // the individual to the closed-world domain.
            self.epoch += u64::from(grew);
            return;
        }
        self.epoch += 1;
        let slot = self
            .concepts
            .entry(concept)
            .or_default()
            .entry(ind)
            .or_insert(EventExpr::False);
        *slot = EventExpr::or([slot.clone(), event]);
    }

    /// Asserts `(src, dst) : role` under `event`.
    ///
    /// The destination joins the domain too: nominals reference genre/subject
    /// individuals that often carry no concept assertions of their own.
    pub fn assert_role(
        &mut self,
        src: IndividualId,
        role: RoleName,
        dst: IndividualId,
        event: EventExpr,
    ) {
        let grew = self.domain.insert(src) | self.domain.insert(dst);
        if event.is_false() {
            self.epoch += u64::from(grew);
            return;
        }
        self.epoch += 1;
        self.roles
            .entry(role)
            .or_default()
            .push(RoleEdge { src, dst, event });
    }

    /// The closed-world domain of the ABox.
    pub fn domain(&self) -> &BTreeSet<IndividualId> {
        &self.domain
    }

    /// Membership rows of an atomic concept (empty if never asserted).
    pub fn concept_rows(
        &self,
        concept: ConceptName,
    ) -> impl Iterator<Item = (IndividualId, &EventExpr)> {
        self.concepts
            .get(&concept)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&i, e)| (i, e)))
    }

    /// The event under which `ind : concept`, `False` if never asserted.
    pub fn concept_event(&self, ind: IndividualId, concept: ConceptName) -> EventExpr {
        self.concepts
            .get(&concept)
            .and_then(|m| m.get(&ind))
            .cloned()
            .unwrap_or(EventExpr::False)
    }

    /// All edges of a role.
    pub fn role_edges(&self, role: RoleName) -> &[RoleEdge] {
        self.roles.get(&role).map_or(&[], Vec::as_slice)
    }

    /// Edges of a role leaving `src`.
    pub fn role_edges_from(
        &self,
        role: RoleName,
        src: IndividualId,
    ) -> impl Iterator<Item = &RoleEdge> {
        self.role_edges(role).iter().filter(move |e| e.src == src)
    }

    /// Concept names that have at least one assertion.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptName> + '_ {
        self.concepts.keys().copied()
    }

    /// Role names that have at least one assertion.
    pub fn roles(&self) -> impl Iterator<Item = RoleName> + '_ {
        self.roles.keys().copied()
    }

    /// Reassembles an ABox from previously exported parts — the import path
    /// of the persistence layer, which reads the tables back through
    /// [`ABox::concept_rows`] / [`ABox::role_edges`] / [`ABox::domain`].
    ///
    /// The epoch is taken verbatim: unlike the TBox, an ABox epoch is not
    /// derivable from the final state (disjoined re-assertions and dropped
    /// `False` events each bumped it without leaving a distinct row), so
    /// restoring the exact counter is the caller's responsibility. Callers
    /// must pass parts exported from one consistent ABox; this constructor
    /// does not re-validate domain membership.
    pub fn from_parts(
        concepts: HashMap<ConceptName, BTreeMap<IndividualId, EventExpr>>,
        roles: HashMap<RoleName, Vec<RoleEdge>>,
        domain: BTreeSet<IndividualId>,
        epoch: u64,
    ) -> Self {
        Self {
            concepts,
            roles,
            domain,
            epoch,
        }
    }

    /// Number of concept assertions plus role assertions (the paper reports
    /// its test database size in tuples; this is the same measure).
    pub fn num_tuples(&self) -> usize {
        let c: usize = self.concepts.values().map(BTreeMap::len).sum();
        let r: usize = self.roles.values().map(Vec::len).sum();
        c + r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;
    use capra_events::Universe;

    #[test]
    fn assertions_build_domain() {
        let mut voc = Vocabulary::new();
        let mut abox = ABox::new();
        let program = voc.concept("TvProgram");
        let genre = voc.role("hasGenre");
        let (oprah, hi, lonely) = (
            voc.individual("Oprah"),
            voc.individual("HumanInterest"),
            voc.individual("Lonely"),
        );
        abox.assert_concept(oprah, program, EventExpr::True);
        abox.assert_role(oprah, genre, hi, EventExpr::True);
        abox.register_individual(lonely);
        assert_eq!(abox.domain().len(), 3);
        assert_eq!(abox.num_tuples(), 2);
    }

    #[test]
    fn duplicate_concept_assertions_disjoin() {
        let mut voc = Vocabulary::new();
        let mut u = Universe::new();
        let mut abox = ABox::new();
        let c = voc.concept("C");
        let x = voc.individual("x");
        let v1 = u01(&mut u, "e1", 0.5);
        let v2 = u01(&mut u, "e2", 0.5);
        let e1 = u.bool_event(v1).unwrap();
        let e2 = u.bool_event(v2).unwrap();
        abox.assert_concept(x, c, e1.clone());
        abox.assert_concept(x, c, e2.clone());
        assert_eq!(abox.concept_event(x, c), EventExpr::or([e1, e2]));
    }

    fn u01(u: &mut Universe, name: &str, p: f64) -> capra_events::VarId {
        u.add_bool(name, p).unwrap()
    }

    #[test]
    fn false_assertions_are_dropped() {
        let mut voc = Vocabulary::new();
        let mut abox = ABox::new();
        let c = voc.concept("C");
        let r = voc.role("r");
        let x = voc.individual("x");
        let y = voc.individual("y");
        abox.assert_concept(x, c, EventExpr::False);
        abox.assert_role(x, r, y, EventExpr::False);
        assert_eq!(abox.concept_event(x, c), EventExpr::False);
        assert!(abox.role_edges(r).is_empty());
        // …but the individuals still joined the domain.
        assert_eq!(abox.domain().len(), 2);
    }

    #[test]
    fn epoch_tracks_real_mutations_only() {
        let mut voc = Vocabulary::new();
        let mut abox = ABox::new();
        assert_eq!(abox.epoch(), 0);
        let c = voc.concept("C");
        let r = voc.role("r");
        let x = voc.individual("x");
        let y = voc.individual("y");
        let z = voc.individual("z");
        abox.register_individual(x);
        assert_eq!(abox.epoch(), 1);
        // Lookup-style re-registration is a no-op and must not bump.
        abox.register_individual(x);
        assert_eq!(abox.epoch(), 1);
        abox.assert_concept(x, c, EventExpr::True);
        abox.assert_role(x, r, y, EventExpr::True);
        assert_eq!(abox.epoch(), 3);
        // A dropped (False-event) assertion counts only if it grew the
        // closed-world domain.
        abox.assert_concept(y, c, EventExpr::False);
        assert_eq!(abox.epoch(), 3);
        abox.assert_concept(z, c, EventExpr::False);
        assert_eq!(abox.epoch(), 4);
    }

    #[test]
    fn unknown_lookups_are_empty() {
        let mut voc = Vocabulary::new();
        let abox = ABox::new();
        let c = voc.concept("C");
        let r = voc.role("r");
        let x = voc.individual("x");
        assert_eq!(abox.concept_rows(c).count(), 0);
        assert!(abox.role_edges(r).is_empty());
        assert_eq!(abox.concept_event(x, c), EventExpr::False);
    }

    #[test]
    fn role_edges_from_filters_by_source() {
        let mut voc = Vocabulary::new();
        let mut abox = ABox::new();
        let r = voc.role("r");
        let (a, b, c) = (
            voc.individual("a"),
            voc.individual("b"),
            voc.individual("c"),
        );
        abox.assert_role(a, r, b, EventExpr::True);
        abox.assert_role(a, r, c, EventExpr::True);
        abox.assert_role(b, r, c, EventExpr::True);
        assert_eq!(abox.role_edges_from(r, a).count(), 2);
        assert_eq!(abox.role_edges_from(r, b).count(), 1);
        assert_eq!(abox.role_edges_from(r, c).count(), 0);
    }
}
