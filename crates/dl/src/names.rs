use std::collections::HashMap;
use std::fmt;

macro_rules! symbol_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Dense index of the symbol, usable as an array key.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

symbol_type!(
    /// Interned name of an atomic concept (e.g. `TvProgram`).
    ConceptName
);
symbol_type!(
    /// Interned name of a role (e.g. `hasGenre`).
    RoleName
);
symbol_type!(
    /// Interned identifier of an individual (e.g. `Oprah`).
    IndividualId
);

/// A simple string interner shared by the three symbol kinds.
#[derive(Debug, Clone, Default)]
struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("too many symbols");
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }
}

/// The interned vocabulary of a DL knowledge base: concept names, role
/// names, and individuals.
///
/// Symbols are cheap `Copy` handles; all name lookups go through the
/// vocabulary. A vocabulary is append-only.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    concepts: Interner,
    roles: Interner,
    individuals: Interner,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or retrieves) a concept name.
    pub fn concept(&mut self, name: &str) -> ConceptName {
        ConceptName(self.concepts.intern(name))
    }

    /// Interns (or retrieves) a role name.
    pub fn role(&mut self, name: &str) -> RoleName {
        RoleName(self.roles.intern(name))
    }

    /// Interns (or retrieves) an individual.
    pub fn individual(&mut self, name: &str) -> IndividualId {
        IndividualId(self.individuals.intern(name))
    }

    /// Looks up an existing concept name without interning.
    pub fn find_concept(&self, name: &str) -> Option<ConceptName> {
        self.concepts.get(name).map(ConceptName)
    }

    /// Looks up an existing role name without interning.
    pub fn find_role(&self, name: &str) -> Option<RoleName> {
        self.roles.get(name).map(RoleName)
    }

    /// Looks up an existing individual without interning.
    pub fn find_individual(&self, name: &str) -> Option<IndividualId> {
        self.individuals.get(name).map(IndividualId)
    }

    /// Name of a concept.
    pub fn concept_name(&self, c: ConceptName) -> &str {
        self.concepts.name(c.0).unwrap_or("<unknown-concept>")
    }

    /// Name of a role.
    pub fn role_name(&self, r: RoleName) -> &str {
        self.roles.name(r.0).unwrap_or("<unknown-role>")
    }

    /// Name of an individual.
    pub fn individual_name(&self, i: IndividualId) -> &str {
        self.individuals.name(i.0).unwrap_or("<unknown-individual>")
    }

    /// Number of interned concept names.
    pub fn num_concepts(&self) -> usize {
        self.concepts.names.len()
    }

    /// Number of interned roles.
    pub fn num_roles(&self) -> usize {
        self.roles.names.len()
    }

    /// Number of interned individuals.
    pub fn num_individuals(&self) -> usize {
        self.individuals.names.len()
    }

    /// Iterates over all interned individuals.
    pub fn individual_ids(&self) -> impl Iterator<Item = IndividualId> + '_ {
        (0..self.individuals.names.len()).map(|i| IndividualId(i as u32))
    }

    /// Iterates over concept names in interning order. Re-interning the
    /// yielded names into a fresh vocabulary, in order, reproduces the
    /// exact same [`ConceptName`] handles — the contract persistence
    /// relies on to keep symbol handles stable across a save/restore.
    pub fn concept_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.concepts.names.iter().map(String::as_str)
    }

    /// Iterates over role names in interning order (see
    /// [`Vocabulary::concept_names`] for the reproducibility contract).
    pub fn role_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.roles.names.iter().map(String::as_str)
    }

    /// Iterates over individual names in interning order (see
    /// [`Vocabulary::concept_names`] for the reproducibility contract).
    pub fn individual_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.individuals.names.iter().map(String::as_str)
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vocabulary: {} concepts, {} roles, {} individuals",
            self.num_concepts(),
            self.num_roles(),
            self.num_individuals()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.concept("TvProgram");
        let b = v.concept("TvProgram");
        assert_eq!(a, b);
        assert_eq!(v.num_concepts(), 1);
        assert_eq!(v.concept_name(a), "TvProgram");
    }

    #[test]
    fn kinds_are_separate_namespaces() {
        let mut v = Vocabulary::new();
        let c = v.concept("News");
        let i = v.individual("News");
        assert_eq!(c.index(), 0);
        assert_eq!(i.index(), 0);
        assert_eq!(v.num_concepts(), 1);
        assert_eq!(v.num_individuals(), 1);
    }

    #[test]
    fn find_does_not_intern() {
        let mut v = Vocabulary::new();
        assert_eq!(v.find_role("hasGenre"), None);
        let r = v.role("hasGenre");
        assert_eq!(v.find_role("hasGenre"), Some(r));
        assert_eq!(v.role_name(r), "hasGenre");
    }

    #[test]
    fn display_summary() {
        let mut v = Vocabulary::new();
        v.concept("A");
        v.role("r");
        v.individual("x");
        v.individual("y");
        assert_eq!(
            v.to_string(),
            "vocabulary: 1 concepts, 1 roles, 2 individuals"
        );
    }
}
