//! # capra-dl — the Description Logic layer
//!
//! The paper (van Bunningen et al., ICDE 2007) represents both context
//! features and document features as **Description Logic concept
//! expressions** — e.g. the preference of rule R1 is
//! `TvProgram ⊓ ∃hasGenre.{HUMAN-INTEREST}` — and maps concepts and roles to
//! database tables carrying event expressions (its refs \[4\] and \[16\]). This
//! crate provides that layer:
//!
//! * [`Vocabulary`] — interned concept / role / individual names;
//! * [`Concept`] — the concept language `⊤ | ⊥ | A | {a,…} | ¬C | C ⊓ D |
//!   C ⊔ D | ∃R.C | ∀R.C` with simplifying constructors;
//! * [`parse_concept`] — a small text syntax
//!   (`TvProgram AND EXISTS hasGenre.{HumanInterest}`);
//! * [`TBox`] — acyclic concept definitions with unfolding and a sound
//!   (incomplete) structural subsumption check;
//! * [`ABox`] — concept and role assertions annotated with
//!   [`capra_events::EventExpr`] lineage, exactly like the paper's tables
//!   `(ID, event-expression)` and `(SOURCE, DESTINATION, event-expression)`;
//! * [`Reasoner`] — closed-world instance retrieval that propagates event
//!   expressions, so the *probability of membership* of an individual in a
//!   concept can be computed exactly by `capra-events`.
//!
//! ## Example
//!
//! ```
//! use capra_dl::{Vocabulary, ABox, Reasoner, parse_concept};
//! use capra_events::{Universe, EventExpr, Evaluator};
//!
//! let mut voc = Vocabulary::new();
//! let mut universe = Universe::new();
//! let mut abox = ABox::new();
//!
//! let program = voc.concept("TvProgram");
//! let has_genre = voc.role("hasGenre");
//! let oprah = voc.individual("Oprah");
//! let human_interest = voc.individual("HumanInterest");
//!
//! abox.assert_concept(oprah, program, EventExpr::True);
//! // The EPG tags Oprah as human interest with probability 0.85.
//! let tag = universe.add_bool("tag-oprah-hi", 0.85).unwrap();
//! abox.assert_role(oprah, has_genre, human_interest,
//!                  universe.bool_event(tag).unwrap());
//!
//! let query = parse_concept("TvProgram AND EXISTS hasGenre.{HumanInterest}", &mut voc).unwrap();
//! let members = Reasoner::new(&abox).instances(&query);
//! let mut ev = Evaluator::new(&universe);
//! assert!((ev.prob(&members[&oprah]) - 0.85).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abox;
mod concept;
mod error;
mod names;
mod parser;
mod reasoner;
mod tbox;

pub use abox::{ABox, RoleEdge};
pub use concept::Concept;
pub use error::DlError;
pub use names::{ConceptName, IndividualId, RoleName, Vocabulary};
pub use parser::parse_concept;
pub use reasoner::Reasoner;
pub use tbox::TBox;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, DlError>;
