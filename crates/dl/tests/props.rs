//! Property-based tests for the DL layer: parser round-trips and lattice
//! laws of instance retrieval under lineage semantics.

use capra_dl::{parse_concept, ABox, Concept, Reasoner, Vocabulary};
use capra_events::{Evaluator, EventExpr, Universe};
use proptest::prelude::*;

/// Builds a random small KB: `n_ind` individuals, 2 atomic concepts, 1 role.
/// Assertion events are uncertain booleans with probabilities from seeds.
fn build_kb(
    n_ind: usize,
    concept_seeds: &[(u8, u8)],
    edge_seeds: &[(u8, u8, u8)],
) -> (Vocabulary, Universe, ABox) {
    let mut voc = Vocabulary::new();
    let mut u = Universe::new();
    let mut abox = ABox::new();
    let c0 = voc.concept("C0");
    let c1 = voc.concept("C1");
    let role = voc.role("r");
    let inds: Vec<_> = (0..n_ind)
        .map(|i| voc.individual(&format!("x{i}")))
        .collect();
    for &i in &inds {
        abox.register_individual(i);
    }
    for (k, &(who, p)) in concept_seeds.iter().enumerate() {
        let ind = inds[who as usize % inds.len()];
        let concept = if k % 2 == 0 { c0 } else { c1 };
        let var = u.add_bool(&format!("c{k}"), f64::from(p) / 255.0).unwrap();
        abox.assert_concept(ind, concept, u.bool_event(var).unwrap());
    }
    for (k, &(s, d, p)) in edge_seeds.iter().enumerate() {
        let src = inds[s as usize % inds.len()];
        let dst = inds[d as usize % inds.len()];
        let var = u.add_bool(&format!("e{k}"), f64::from(p) / 255.0).unwrap();
        abox.assert_role(src, role, dst, u.bool_event(var).unwrap());
    }
    (voc, u, abox)
}

prop_compose! {
    fn kb()(
        n_ind in 2usize..5,
        concept_seeds in prop::collection::vec((any::<u8>(), any::<u8>()), 1..6),
        edge_seeds in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..5),
    ) -> (Vocabulary, Universe, ABox) {
        build_kb(n_ind, &concept_seeds, &edge_seeds)
    }
}

const TOL: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn conjunction_is_min_like((mut voc, u, abox) in kb()) {
        // P(x : C0 ⊓ C1) ≤ min(P(x : C0), P(x : C1)) for all x.
        let r = Reasoner::new(&abox);
        let c0 = parse_concept("C0", &mut voc).unwrap();
        let c1 = parse_concept("C1", &mut voc).unwrap();
        let both = Concept::and([c0.clone(), c1.clone()]);
        let mut ev = Evaluator::new(&u);
        for (&x, e) in &r.instances(&both) {
            let p = ev.prob(e);
            let p0 = ev.prob(&r.membership(x, &c0));
            let p1 = ev.prob(&r.membership(x, &c1));
            prop_assert!(p <= p0.min(p1) + TOL);
        }
    }

    #[test]
    fn union_inclusion_exclusion((mut voc, u, abox) in kb()) {
        let r = Reasoner::new(&abox);
        let c0 = parse_concept("C0", &mut voc).unwrap();
        let c1 = parse_concept("C1", &mut voc).unwrap();
        let either = Concept::or([c0.clone(), c1.clone()]);
        let both = Concept::and([c0.clone(), c1.clone()]);
        let mut ev = Evaluator::new(&u);
        for &x in abox.domain() {
            let pu = ev.prob(&r.membership(x, &either));
            let pi = ev.prob(&r.membership(x, &both));
            let p0 = ev.prob(&r.membership(x, &c0));
            let p1 = ev.prob(&r.membership(x, &c1));
            prop_assert!((pu + pi - (p0 + p1)).abs() < TOL);
        }
    }

    #[test]
    fn negation_complements((mut voc, u, abox) in kb()) {
        let r = Reasoner::new(&abox);
        let c0 = parse_concept("C0", &mut voc).unwrap();
        let neg = Concept::not(c0.clone());
        let mut ev = Evaluator::new(&u);
        for &x in abox.domain() {
            let p = ev.prob(&r.membership(x, &c0));
            let np = ev.prob(&r.membership(x, &neg));
            prop_assert!((p + np - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exists_forall_duality((mut voc, u, abox) in kb()) {
        // ∃R.C ≡ ¬∀R.¬C under closed-world semantics.
        let r = Reasoner::new(&abox);
        let some = parse_concept("EXISTS r.C0", &mut voc).unwrap();
        let dual = parse_concept("NOT FORALL r.(NOT C0)", &mut voc).unwrap();
        let mut ev = Evaluator::new(&u);
        for &x in abox.domain() {
            let p1 = ev.prob(&r.membership(x, &some));
            let p2 = ev.prob(&r.membership(x, &dual));
            prop_assert!((p1 - p2).abs() < TOL, "x={x:?}: {p1} vs {p2}");
        }
    }

    #[test]
    fn top_covers_domain((_voc, _u, abox) in kb()) {
        let r = Reasoner::new(&abox);
        let m = r.instances(&Concept::Top);
        prop_assert_eq!(m.len(), abox.domain().len());
        prop_assert!(m.values().all(EventExpr::is_true));
    }

    #[test]
    fn display_parse_round_trip((mut voc, _u, _abox) in kb(), shape in 0u8..6) {
        let c = match shape {
            0 => parse_concept("C0 AND NOT C1", &mut voc).unwrap(),
            1 => parse_concept("EXISTS r.(C0 OR C1)", &mut voc).unwrap(),
            2 => parse_concept("FORALL r.{x0}", &mut voc).unwrap(),
            3 => parse_concept("{x0, x1}", &mut voc).unwrap(),
            4 => parse_concept("TOP AND C0", &mut voc).unwrap(),
            _ => parse_concept("NOT (C0 OR EXISTS r.C1)", &mut voc).unwrap(),
        };
        let printed = c.display(&voc).to_string();
        let reparsed = parse_concept(&printed, &mut voc).unwrap();
        prop_assert_eq!(reparsed, c);
    }
}
