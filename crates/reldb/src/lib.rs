//! # capra-reldb — an in-memory relational engine with event lineage
//!
//! The paper's naive implementation (Section 5) extends PostgreSQL with an
//! event-expression datatype, maps DL concepts/roles to tables, and builds
//! the "big preference view" out of ordinary database views. This crate is
//! the Rust stand-in for that substrate: a small but complete in-memory
//! relational engine in which **every row carries an event expression**
//! (its *lineage*), propagated through the operators exactly as in Fuhr &
//! Rölleke's probabilistic relational algebra (the paper's ref \[9\]):
//!
//! | operator | lineage of an output row |
//! |----------|--------------------------|
//! | selection / projection | unchanged |
//! | join | conjunction of the joined rows' lineages |
//! | union (bag) | unchanged |
//! | duplicate elimination | disjunction of the merged rows' lineages |
//!
//! Deterministic data simply has lineage `⊤`, so the engine doubles as an
//! ordinary relational database.
//!
//! ## Components
//!
//! * [`Datum`] / [`DataType`] / [`Schema`] — values and typed schemas;
//! * [`Table`] / [`Catalog`] — named storage with concurrent-read interior
//!   mutability ([`parking_lot`] locks) plus named [`View`]s;
//! * [`ScalarExpr`] — row-level expressions;
//! * [`Plan`] — logical plans (scan, select, project, join, union,
//!   distinct, order-by, limit, aggregate);
//! * [`Executor`] — a materialising evaluator with lineage propagation;
//! * [`sql`] — a small SQL dialect (`SELECT … FROM … JOIN … WHERE … GROUP BY
//!   … ORDER BY … LIMIT`, `UNION [ALL]`, `CREATE TABLE/VIEW`, `INSERT`)
//!   sufficient for the paper's example queries.
//!
//! ## Example
//!
//! ```
//! use capra_reldb::{Catalog, Database};
//!
//! let db = Database::new();
//! db.execute_sql("CREATE TABLE programs (name STRING, score FLOAT)").unwrap();
//! db.execute_sql("INSERT INTO programs VALUES ('Oprah', 0.071), ('Channel 5 news', 0.6006)")
//!     .unwrap();
//! let out = db
//!     .execute_sql("SELECT name FROM programs WHERE score > 0.5 ORDER BY score DESC")
//!     .unwrap();
//! assert_eq!(out.rows().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod error;
mod exec;
mod explain;
mod expr;
mod plan;
mod relation;
mod schema;
pub mod sql;
mod value;

pub use catalog::{Catalog, Database, Table, View};
pub use error::DbError;
pub use exec::Executor;
pub use explain::explain_plan;
pub use expr::{ArithOp, CmpOp, ScalarExpr};
pub use plan::{certain_rows, AggExpr, AggFun, Plan, SortKey};
pub use relation::{Relation, Row};
pub use schema::{Column, Schema};
pub use value::{DataType, Datum};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, DbError>;
