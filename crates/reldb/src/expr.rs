use std::fmt;

use crate::{Datum, DbError, Result, Row, Schema};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar (row-level) expression with columns resolved to indices.
///
/// Null semantics are the pragmatic subset the paper's queries need:
/// comparisons involving `NULL` are false, arithmetic on `NULL` yields
/// `NULL`, and `IS NULL` tests explicitly. (Full three-valued logic is out
/// of scope; the behaviour is documented and tested.)
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to a column by index.
    Column(usize),
    /// A constant.
    Literal(Datum),
    /// Comparison of two expressions.
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Arithmetic on two numeric expressions.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical conjunction (strict two-valued).
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical disjunction (strict two-valued).
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical negation.
    Not(Box<ScalarExpr>),
    /// `expr IS NULL`.
    IsNull(Box<ScalarExpr>),
    /// Lower-case of a string.
    Lower(Box<ScalarExpr>),
    /// Upper-case of a string.
    Upper(Box<ScalarExpr>),
    /// Absolute value of a number.
    Abs(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Column reference shorthand.
    pub fn col(i: usize) -> Self {
        ScalarExpr::Column(i)
    }

    /// Literal shorthand.
    pub fn lit(d: impl Into<Datum>) -> Self {
        ScalarExpr::Literal(d.into())
    }

    /// Builds `left op right`.
    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> Self {
        ScalarExpr::Cmp(op, Box::new(left), Box::new(right))
    }

    /// Equality shorthand.
    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> Self {
        Self::cmp(CmpOp::Eq, left, right)
    }

    /// Resolves column *names* into indices against a schema — convenience
    /// for tests and programmatic plan building.
    pub fn resolve(schema: &Schema, name: &str) -> Result<Self> {
        Ok(ScalarExpr::Column(schema.resolve(name)?))
    }

    /// Evaluates the expression on a row.
    pub fn eval(&self, row: &Row) -> Result<Datum> {
        match self {
            ScalarExpr::Column(i) => row
                .values
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::UnknownColumn(format!("#{i}"))),
            ScalarExpr::Literal(d) => Ok(d.clone()),
            ScalarExpr::Cmp(op, l, r) => {
                let (lv, rv) = (l.eval(row)?, r.eval(row)?);
                let result = match lv.sql_cmp(&rv) {
                    None => false, // NULL comparisons are false
                    Some(ord) => match op {
                        CmpOp::Eq => ord.is_eq(),
                        CmpOp::Ne => ord.is_ne(),
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                    },
                };
                Ok(Datum::Bool(result))
            }
            ScalarExpr::Arith(op, l, r) => {
                let (lv, rv) = (l.eval(row)?, r.eval(row)?);
                if lv.is_null() || rv.is_null() {
                    return Ok(Datum::Null);
                }
                arith(*op, &lv, &rv)
            }
            ScalarExpr::And(l, r) => Ok(Datum::Bool(
                truthy(&l.eval(row)?)? && truthy(&r.eval(row)?)?,
            )),
            ScalarExpr::Or(l, r) => Ok(Datum::Bool(
                truthy(&l.eval(row)?)? || truthy(&r.eval(row)?)?,
            )),
            ScalarExpr::Not(e) => Ok(Datum::Bool(!truthy(&e.eval(row)?)?)),
            ScalarExpr::IsNull(e) => Ok(Datum::Bool(e.eval(row)?.is_null())),
            ScalarExpr::Lower(e) => string_fn(&e.eval(row)?, str::to_lowercase),
            ScalarExpr::Upper(e) => string_fn(&e.eval(row)?, str::to_uppercase),
            ScalarExpr::Abs(e) => {
                let v = e.eval(row)?;
                match v {
                    Datum::Null => Ok(Datum::Null),
                    Datum::Int(i) => Ok(Datum::Int(i.abs())),
                    Datum::Float(x) => Ok(Datum::Float(x.abs())),
                    other => Err(DbError::TypeError(format!("ABS({other})"))),
                }
            }
        }
    }

    /// Evaluates the expression as a predicate (`NULL` counts as false).
    pub fn matches(&self, row: &Row) -> Result<bool> {
        let v = self.eval(row)?;
        if v.is_null() {
            return Ok(false);
        }
        truthy(&v)
    }
}

fn truthy(d: &Datum) -> Result<bool> {
    match d {
        Datum::Bool(b) => Ok(*b),
        Datum::Null => Ok(false),
        other => Err(DbError::TypeError(format!(
            "expected a boolean, found {other}"
        ))),
    }
}

fn string_fn(d: &Datum, f: impl Fn(&str) -> String) -> Result<Datum> {
    match d {
        Datum::Null => Ok(Datum::Null),
        Datum::Str(s) => Ok(Datum::str(f(s))),
        other => Err(DbError::TypeError(format!(
            "expected a string, found {other}"
        ))),
    }
}

fn arith(op: ArithOp, l: &Datum, r: &Datum) -> Result<Datum> {
    // Integer arithmetic when both sides are ints (except division, which
    // promotes to float as the paper's score expressions expect).
    if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
        return Ok(match op {
            ArithOp::Add => Datum::Int(a.wrapping_add(b)),
            ArithOp::Sub => Datum::Int(a.wrapping_sub(b)),
            ArithOp::Mul => Datum::Int(a.wrapping_mul(b)),
            ArithOp::Div => {
                if b == 0 {
                    return Err(DbError::DivisionByZero);
                }
                Datum::Float(a as f64 / b as f64)
            }
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(DbError::TypeError(format!(
                "arithmetic on non-numeric values {l} and {r}"
            )))
        }
    };
    Ok(match op {
        ArithOp::Add => Datum::Float(a + b),
        ArithOp::Sub => Datum::Float(a - b),
        ArithOp::Mul => Datum::Float(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                return Err(DbError::DivisionByZero);
            }
            Datum::Float(a / b)
        }
    })
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "#{i}"),
            ScalarExpr::Literal(d) => write!(f, "{d}"),
            ScalarExpr::Cmp(op, l, r) => {
                let s = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({l} {s} {r})")
            }
            ScalarExpr::Arith(op, l, r) => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({l} {s} {r})")
            }
            ScalarExpr::And(l, r) => write!(f, "({l} AND {r})"),
            ScalarExpr::Or(l, r) => write!(f, "({l} OR {r})"),
            ScalarExpr::Not(e) => write!(f, "(NOT {e})"),
            ScalarExpr::IsNull(e) => write!(f, "({e} IS NULL)"),
            ScalarExpr::Lower(e) => write!(f, "LOWER({e})"),
            ScalarExpr::Upper(e) => write!(f, "UPPER({e})"),
            ScalarExpr::Abs(e) => write!(f, "ABS({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(values: Vec<Datum>) -> Row {
        Row::certain(values)
    }

    #[test]
    fn columns_and_literals() {
        let r = row(vec![1i64.into(), "x".into()]);
        assert_eq!(ScalarExpr::col(0).eval(&r).unwrap(), Datum::Int(1));
        assert_eq!(ScalarExpr::lit(5i64).eval(&r).unwrap(), Datum::Int(5));
        assert!(ScalarExpr::col(9).eval(&r).is_err());
    }

    #[test]
    fn comparisons() {
        let r = row(vec![0.6006.into()]);
        let gt = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(0.5));
        assert!(gt.matches(&r).unwrap());
        let le = ScalarExpr::cmp(CmpOp::Le, ScalarExpr::col(0), ScalarExpr::lit(0.5));
        assert!(!le.matches(&r).unwrap());
        // Int/float widening in comparisons.
        let eq = ScalarExpr::eq(ScalarExpr::lit(1i64), ScalarExpr::lit(1.0));
        assert!(eq.matches(&r).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let r = row(vec![Datum::Null]);
        let eq = ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1i64));
        assert!(!eq.matches(&r).unwrap());
        let is_null = ScalarExpr::IsNull(Box::new(ScalarExpr::col(0)));
        assert!(is_null.matches(&r).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let r = row(vec![]);
        let add = ScalarExpr::Arith(
            ArithOp::Add,
            Box::new(ScalarExpr::lit(2i64)),
            Box::new(ScalarExpr::lit(3i64)),
        );
        assert_eq!(add.eval(&r).unwrap(), Datum::Int(5));
        let div = ScalarExpr::Arith(
            ArithOp::Div,
            Box::new(ScalarExpr::lit(1i64)),
            Box::new(ScalarExpr::lit(2i64)),
        );
        assert_eq!(div.eval(&r).unwrap(), Datum::Float(0.5));
        let div0 = ScalarExpr::Arith(
            ArithOp::Div,
            Box::new(ScalarExpr::lit(1i64)),
            Box::new(ScalarExpr::lit(0i64)),
        );
        assert_eq!(div0.eval(&r), Err(DbError::DivisionByZero));
        let mixed = ScalarExpr::Arith(
            ArithOp::Mul,
            Box::new(ScalarExpr::lit(0.5)),
            Box::new(ScalarExpr::lit(4i64)),
        );
        assert_eq!(mixed.eval(&r).unwrap(), Datum::Float(2.0));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let r = row(vec![Datum::Null]);
        let add = ScalarExpr::Arith(
            ArithOp::Add,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::lit(1i64)),
        );
        assert_eq!(add.eval(&r).unwrap(), Datum::Null);
    }

    #[test]
    fn boolean_connectives() {
        let r = row(vec![true.into(), false.into()]);
        let and = ScalarExpr::And(Box::new(ScalarExpr::col(0)), Box::new(ScalarExpr::col(1)));
        assert!(!and.matches(&r).unwrap());
        let or = ScalarExpr::Or(Box::new(ScalarExpr::col(0)), Box::new(ScalarExpr::col(1)));
        assert!(or.matches(&r).unwrap());
        let not = ScalarExpr::Not(Box::new(ScalarExpr::col(1)));
        assert!(not.matches(&r).unwrap());
        let bad = ScalarExpr::And(
            Box::new(ScalarExpr::lit(1i64)),
            Box::new(ScalarExpr::col(0)),
        );
        assert!(matches!(bad.matches(&r), Err(DbError::TypeError(_))));
    }

    #[test]
    fn string_and_numeric_functions() {
        let r = row(vec!["MiXeD".into(), (-4i64).into()]);
        assert_eq!(
            ScalarExpr::Lower(Box::new(ScalarExpr::col(0)))
                .eval(&r)
                .unwrap(),
            Datum::str("mixed")
        );
        assert_eq!(
            ScalarExpr::Upper(Box::new(ScalarExpr::col(0)))
                .eval(&r)
                .unwrap(),
            Datum::str("MIXED")
        );
        assert_eq!(
            ScalarExpr::Abs(Box::new(ScalarExpr::col(1)))
                .eval(&r)
                .unwrap(),
            Datum::Int(4)
        );
        assert!(ScalarExpr::Abs(Box::new(ScalarExpr::col(0)))
            .eval(&r)
            .is_err());
    }

    #[test]
    fn resolve_by_name() {
        let schema = Schema::of(&[("a", crate::DataType::Int), ("b", crate::DataType::Str)]);
        let e = ScalarExpr::resolve(&schema, "b").unwrap();
        assert_eq!(e, ScalarExpr::Column(1));
    }

    #[test]
    fn display_is_readable() {
        let e = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(0.5));
        assert_eq!(e.to_string(), "(#0 > 0.5)");
    }
}
