//! Abstract syntax for the SQL dialect.

use crate::{Column, Datum};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<Column>,
    },
    /// `CREATE VIEW name AS query`
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Query,
    },
    /// `DROP TABLE name`
    DropTable(String),
    /// `DROP VIEW name`
    DropView(String),
    /// `INSERT INTO name VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Datum>>,
    },
    /// A query.
    Query(Query),
}

/// A query: a set expression plus optional ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body (select or union chain).
    pub body: SetExpr,
    /// `ORDER BY` keys: expression and descending flag. Resolved against the
    /// query's *output* columns (aliases included).
    pub order_by: Vec<(SqlExpr, bool)>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

/// Select or union-of-selects.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A plain `SELECT`.
    Select(Box<Select>),
    /// `left UNION [ALL] right`.
    Union {
        /// Left operand.
        left: Box<SetExpr>,
        /// Right operand.
        right: Box<SetExpr>,
        /// Bag union when true (`UNION ALL`), set union otherwise.
        all: bool,
    },
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection items.
    pub items: Vec<SelectItem>,
    /// `FROM` table.
    pub from: TableRef,
    /// `JOIN … ON …` clauses, in order.
    pub joins: Vec<(TableRef, SqlExpr)>,
    /// `WHERE` predicate.
    pub selection: Option<SqlExpr>,
    /// `GROUP BY` column names.
    pub group_by: Vec<String>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// A table reference `name [alias]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table or view name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference exposes to column qualification.
    pub fn exposed_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Binary operators in SQL expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A SQL expression (columns still referenced by name).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, possibly qualified (`alias.name`).
    Ident(String),
    /// Literal value.
    Literal(Datum),
    /// Binary operation.
    Binary(SqlBinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Function call (aggregate or scalar). `COUNT(*)` is `star = true`.
    Func {
        /// Lowercased function name.
        name: String,
        /// Arguments.
        args: Vec<SqlExpr>,
        /// `*` argument.
        star: bool,
    },
}

impl SqlExpr {
    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Ident(_) | SqlExpr::Literal(_) => false,
            SqlExpr::Binary(_, l, r) => l.contains_aggregate() || r.contains_aggregate(),
            SqlExpr::Not(e) => e.contains_aggregate(),
            SqlExpr::IsNull { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Func { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(SqlExpr::contains_aggregate)
            }
        }
    }
}

/// Is this function name an aggregate?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max" | "ecount")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = SqlExpr::Func {
            name: "count".into(),
            args: vec![],
            star: true,
        };
        assert!(agg.contains_aggregate());
        let nested = SqlExpr::Binary(
            SqlBinOp::Add,
            Box::new(SqlExpr::Ident("x".into())),
            Box::new(agg),
        );
        assert!(nested.contains_aggregate());
        let plain = SqlExpr::Func {
            name: "lower".into(),
            args: vec![SqlExpr::Ident("x".into())],
            star: false,
        };
        assert!(!plain.contains_aggregate());
    }

    #[test]
    fn exposed_name_prefers_alias() {
        let t = TableRef {
            name: "programs".into(),
            alias: Some("p".into()),
        };
        assert_eq!(t.exposed_name(), "p");
        let t = TableRef {
            name: "programs".into(),
            alias: None,
        };
        assert_eq!(t.exposed_name(), "programs");
    }
}
