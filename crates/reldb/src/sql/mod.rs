//! A small SQL dialect over the relational engine.
//!
//! Supported statements (keywords case-insensitive; unquoted identifiers are
//! lowercased, `"quoted"` identifiers keep their case):
//!
//! ```text
//! CREATE TABLE name (col TYPE, …)          TYPE ∈ INT, FLOAT, STRING, BOOL, ID
//! CREATE VIEW name AS query
//! DROP TABLE name | DROP VIEW name
//! INSERT INTO name VALUES (lit, …), (…)
//! SELECT [DISTINCT] items FROM t [alias]
//!        [JOIN t2 [alias] ON expr]…
//!        [WHERE expr] [GROUP BY cols]
//!        [UNION [ALL] select]…
//!        [ORDER BY expr [ASC|DESC], …] [LIMIT n]
//! ```
//!
//! Aggregates: `COUNT(*)`, `COUNT(e)`, `SUM`, `AVG`, `MIN`, `MAX`, and
//! `ECOUNT()` — the expected row count under event-lineage probabilities
//! (requires executing with a universe). Scalar functions: `LOWER`, `UPPER`,
//! `ABS`.
//!
//! This covers the paper's example query
//! (`SELECT name, preferencescore FROM Programs WHERE preferencescore > 0.5
//! ORDER BY preferencescore DESC`) and everything the examples and the
//! benchmark harness need. Intentional limitations (subqueries, outer joins,
//! HAVING, expressions over aggregates) return [`crate::DbError::Unsupported`].

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{Query, Select, SelectItem, SetExpr, SqlExpr, Statement, TableRef};
pub use parser::parse_statement;

use capra_events::Universe;

use crate::{Catalog, Executor, Relation, Result, Schema};

/// Parses and executes one SQL statement against a catalog.
pub fn execute(catalog: &Catalog, universe: Option<&Universe>, sql: &str) -> Result<Relation> {
    let statement = parse_statement(sql)?;
    match statement {
        Statement::CreateTable { name, columns } => {
            let schema = Schema::new(columns);
            catalog.create_table(&name, std::sync::Arc::new(schema))?;
            Ok(Relation::empty(Schema::of(&[])))
        }
        Statement::CreateView { name, query } => {
            let plan = lower::lower_query(catalog, &query)?;
            catalog.create_view(&name, plan)?;
            Ok(Relation::empty(Schema::of(&[])))
        }
        Statement::DropTable(name) => {
            catalog.drop_table(&name)?;
            Ok(Relation::empty(Schema::of(&[])))
        }
        Statement::DropView(name) => {
            catalog.drop_view(&name)?;
            Ok(Relation::empty(Schema::of(&[])))
        }
        Statement::Insert { table, rows } => {
            let t = catalog.table(&table)?;
            t.insert(rows.into_iter().map(crate::Row::certain).collect())?;
            Ok(Relation::empty(Schema::of(&[])))
        }
        Statement::Query(query) => {
            let plan = lower::lower_query(catalog, &query)?;
            let mut executor = Executor::new(catalog);
            if let Some(u) = universe {
                executor = executor.with_universe(u);
            }
            executor.run(&plan)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Datum, DbError};

    fn db() -> Catalog {
        let cat = Catalog::new();
        execute(
            &cat,
            None,
            "CREATE TABLE programs (id INT, name STRING, score FLOAT)",
        )
        .unwrap();
        execute(
            &cat,
            None,
            "INSERT INTO programs VALUES \
             (1, 'Channel 5 news', 0.6006), (2, 'Oprah', 0.071), \
             (3, 'BBC news', 0.18), (4, 'MPFC', 0.02)",
        )
        .unwrap();
        execute(
            &cat,
            None,
            "CREATE TABLE genres (program_id INT, genre STRING)",
        )
        .unwrap();
        execute(
            &cat,
            None,
            "INSERT INTO genres VALUES (1, 'news'), (2, 'human-interest'), (3, 'news')",
        )
        .unwrap();
        cat
    }

    #[test]
    fn paper_intro_query() {
        let cat = db();
        let out = execute(
            &cat,
            None,
            "SELECT name, score FROM programs WHERE score > 0.5 ORDER BY score DESC",
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values[0], Datum::str("Channel 5 news"));
    }

    #[test]
    fn wildcard_and_limit() {
        let cat = db();
        let out = execute(
            &cat,
            None,
            "SELECT * FROM programs ORDER BY score DESC LIMIT 2",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().len(), 3);
        assert_eq!(out.rows()[1].values[1], Datum::str("BBC news"));
    }

    #[test]
    fn join_with_alias() {
        let cat = db();
        let out = execute(
            &cat,
            None,
            "SELECT p.name, g.genre FROM programs p JOIN genres g ON p.id = g.program_id \
             WHERE g.genre = 'news' ORDER BY p.name",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0].values[0], Datum::str("BBC news"));
    }

    #[test]
    fn group_by_aggregates() {
        let cat = db();
        let out = execute(
            &cat,
            None,
            "SELECT genre, COUNT(*) AS n FROM genres GROUP BY genre ORDER BY n DESC",
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0].values[1], Datum::Int(2));
    }

    #[test]
    fn global_aggregates() {
        let cat = db();
        let out = execute(
            &cat,
            None,
            "SELECT COUNT(*) AS n, AVG(score) AS mean, MAX(score) AS top FROM programs",
        )
        .unwrap();
        let r = &out.rows()[0].values;
        assert_eq!(r[0], Datum::Int(4));
        assert!((r[1].as_f64().unwrap() - 0.21790).abs() < 1e-4);
        assert_eq!(r[2], Datum::Float(0.6006));
    }

    #[test]
    fn union_distinct_vs_all() {
        let cat = db();
        let q = "SELECT name FROM programs WHERE id = 1 \
                 UNION SELECT name FROM programs WHERE id = 1";
        assert_eq!(execute(&cat, None, q).unwrap().len(), 1);
        let q_all = "SELECT name FROM programs WHERE id = 1 \
                     UNION ALL SELECT name FROM programs WHERE id = 1";
        assert_eq!(execute(&cat, None, q_all).unwrap().len(), 2);
    }

    #[test]
    fn views_through_sql() {
        let cat = db();
        execute(
            &cat,
            None,
            "CREATE VIEW top_programs AS SELECT name, score FROM programs WHERE score > 0.1",
        )
        .unwrap();
        let out = execute(&cat, None, "SELECT name FROM top_programs ORDER BY name").unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn arithmetic_and_functions() {
        let cat = db();
        let out = execute(
            &cat,
            None,
            "SELECT UPPER(name) AS n, score * 100.0 AS pct FROM programs WHERE id = 2",
        )
        .unwrap();
        assert_eq!(out.rows()[0].values[0], Datum::str("OPRAH"));
        assert!((out.rows()[0].values[1].as_f64().unwrap() - 7.1).abs() < 1e-9);
    }

    #[test]
    fn quoted_identifiers_keep_case() {
        let cat = Catalog::new();
        execute(&cat, None, "CREATE TABLE \"Mixed\" (\"Name\" STRING)").unwrap();
        execute(&cat, None, "INSERT INTO \"Mixed\" VALUES ('x')").unwrap();
        let out = execute(&cat, None, "SELECT \"Name\" FROM \"Mixed\"").unwrap();
        assert_eq!(out.len(), 1);
        // Unquoted lowers, so `mixed` is a different (missing) table.
        assert!(matches!(
            execute(&cat, None, "SELECT * FROM Mixed"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn is_null_and_boolean_literals() {
        let cat = Catalog::new();
        execute(&cat, None, "CREATE TABLE t (x INT, ok BOOL)").unwrap();
        execute(&cat, None, "INSERT INTO t VALUES (1, true), (NULL, false)").unwrap();
        let out = execute(&cat, None, "SELECT x FROM t WHERE x IS NULL").unwrap();
        assert_eq!(out.len(), 1);
        let out = execute(&cat, None, "SELECT x FROM t WHERE x IS NOT NULL").unwrap();
        assert_eq!(out.len(), 1);
        let out = execute(&cat, None, "SELECT x FROM t WHERE ok").unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn insert_validates_against_schema() {
        let cat = db();
        let err = execute(&cat, None, "INSERT INTO programs VALUES ('bad', 1, 2.0)");
        assert!(matches!(err, Err(DbError::SchemaMismatch { .. })));
    }

    #[test]
    fn drop_statements() {
        let cat = db();
        execute(&cat, None, "CREATE VIEW v AS SELECT * FROM programs").unwrap();
        execute(&cat, None, "DROP VIEW v").unwrap();
        execute(&cat, None, "DROP TABLE genres").unwrap();
        assert!(matches!(
            execute(&cat, None, "SELECT * FROM genres"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn helpful_parse_errors() {
        let cat = db();
        for bad in [
            "SELEC name FROM programs",
            "SELECT name programs",
            "SELECT FROM programs",
            "INSERT INTO programs VALUES (1, 'x'",
        ] {
            let err = execute(&cat, None, bad).unwrap_err();
            assert!(
                matches!(err, DbError::SqlParse { .. }),
                "`{bad}` should be a parse error, got {err}"
            );
        }
    }

    #[test]
    fn unsupported_features_are_reported() {
        let cat = db();
        let err = execute(&cat, None, "SELECT score + MAX(score) FROM programs").unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)), "{err}");
    }
}
