use crate::{DbError, Result};

/// SQL tokens. Unquoted identifiers arrive lowercased; quoted ones verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A token plus its byte offset.
pub type Spanned = (Tok, usize);

/// Tokenises a SQL string.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => push_sym(&mut out, Sym::LParen, &mut i),
            b')' => push_sym(&mut out, Sym::RParen, &mut i),
            b',' => push_sym(&mut out, Sym::Comma, &mut i),
            b'.' if !next_is_digit(bytes, i + 1) => push_sym(&mut out, Sym::Dot, &mut i),
            b'*' => push_sym(&mut out, Sym::Star, &mut i),
            b'+' => push_sym(&mut out, Sym::Plus, &mut i),
            b'-' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    // Line comment.
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    push_sym(&mut out, Sym::Minus, &mut i);
                }
            }
            b'/' => push_sym(&mut out, Sym::Slash, &mut i),
            b'=' => push_sym(&mut out, Sym::Eq, &mut i),
            b'<' => {
                let start = i;
                i += 1;
                match bytes.get(i) {
                    Some(b'=') => {
                        i += 1;
                        out.push((Tok::Symbol(Sym::Le), start));
                    }
                    Some(b'>') => {
                        i += 1;
                        out.push((Tok::Symbol(Sym::Ne), start));
                    }
                    _ => out.push((Tok::Symbol(Sym::Lt), start)),
                }
            }
            b'>' => {
                let start = i;
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    out.push((Tok::Symbol(Sym::Ge), start));
                } else {
                    out.push((Tok::Symbol(Sym::Gt), start));
                }
            }
            b'!' => {
                let start = i;
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    out.push((Tok::Symbol(Sym::Ne), start));
                } else {
                    return Err(DbError::SqlParse {
                        at: i,
                        message: "lone `!`".into(),
                    });
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(DbError::SqlParse {
                                at: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c as char);
                            i += 1;
                        }
                    }
                }
                out.push((Tok::Str(s), start));
            }
            b'"' => {
                let start = i;
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(DbError::SqlParse {
                        at: start,
                        message: "unterminated quoted identifier".into(),
                    });
                }
                out.push((Tok::Ident(input[begin..i].to_string()), start));
                i += 1;
            }
            b if b.is_ascii_digit() || (b == b'.' && next_is_digit(bytes, i + 1)) => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))))
                {
                    i += 1;
                }
                out.push((Tok::Number(input[start..i].to_string()), start));
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(input[start..i].to_ascii_lowercase()), start));
            }
            other => {
                return Err(DbError::SqlParse {
                    at: i,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(out)
}

fn push_sym(out: &mut Vec<Spanned>, sym: Sym, i: &mut usize) {
    out.push((Tok::Symbol(sym), *i));
    *i += 1;
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(u8::is_ascii_digit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Tok> {
        lex(sql).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn keywords_lowercased_strings_kept() {
        let toks = kinds("SELECT Name FROM t WHERE x = 'It''s'");
        assert_eq!(toks[0], Tok::Ident("select".into()));
        assert_eq!(toks[1], Tok::Ident("name".into()));
        assert!(toks.contains(&Tok::Str("It's".into())));
    }

    #[test]
    fn numbers_including_floats_and_exponents() {
        assert_eq!(kinds("0.6006"), vec![Tok::Number("0.6006".into())]);
        assert_eq!(kinds("1e-3"), vec![Tok::Number("1e-3".into())]);
        assert_eq!(kinds(".5"), vec![Tok::Number(".5".into())]);
    }

    #[test]
    fn operators() {
        let toks = kinds("a <= b <> c >= d != e < f > g");
        let syms: Vec<Sym> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![Sym::Le, Sym::Ne, Sym::Ge, Sym::Ne, Sym::Lt, Sym::Gt]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = kinds("SELECT x -- trailing comment\nFROM t");
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn quoted_identifiers_and_errors() {
        assert_eq!(kinds("\"MiXeD\""), vec![Tok::Ident("MiXeD".into())]);
        assert!(lex("'open").is_err());
        assert!(lex("\"open").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("€").is_err());
    }

    #[test]
    fn qualified_name_vs_float() {
        let toks = kinds("t.col");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("t".into()),
                Tok::Symbol(Sym::Dot),
                Tok::Ident("col".into())
            ]
        );
    }
}
