//! Recursive-descent parser for the SQL dialect.

use crate::sql::ast::{Query, Select, SelectItem, SetExpr, SqlBinOp, SqlExpr, Statement, TableRef};
use crate::sql::lexer::{lex, Spanned, Sym, Tok};
use crate::{Column, DataType, Datum, DbError, Result};

/// Parses a single SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: sql.len(),
    };
    let statement = p.statement()?;
    p.expect_end()?;
    Ok(statement)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

/// Keywords that terminate an identifier-position (so `FROM t WHERE …`
/// doesn't read `where` as an alias).
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "limit", "join", "on", "union", "all",
    "distinct", "as", "and", "or", "not", "is", "null", "true", "false", "asc", "desc", "inner",
    "values", "insert", "into", "create", "table", "view", "drop",
];

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |(_, at)| *at)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(DbError::SqlParse {
            at: self.at(),
            message: message.into(),
        })
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.peek().cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(n)) if n == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{}`", kw.to_uppercase()))
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym, what: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            self.err(format!("expected `{what}`"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(n)) if !RESERVED.contains(&n.as_str()) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            _ => self.err(format!("expected {what}")),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("create") {
            if self.eat_keyword("table") {
                return self.create_table();
            }
            if self.eat_keyword("view") {
                let name = self.ident("view name")?;
                self.expect_keyword("as")?;
                let query = self.query()?;
                return Ok(Statement::CreateView { name, query });
            }
            return self.err("expected TABLE or VIEW after CREATE");
        }
        if self.eat_keyword("drop") {
            if self.eat_keyword("table") {
                return Ok(Statement::DropTable(self.ident("table name")?));
            }
            if self.eat_keyword("view") {
                return Ok(Statement::DropView(self.ident("view name")?));
            }
            return self.err("expected TABLE or VIEW after DROP");
        }
        if self.eat_keyword("insert") {
            self.expect_keyword("into")?;
            return self.insert();
        }
        Ok(Statement::Query(self.query()?))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident("table name")?;
        self.expect_symbol(Sym::LParen, "(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident("column name")?;
            let dtype = self.data_type()?;
            columns.push(Column::new(col_name, dtype));
            if self.eat_symbol(Sym::Comma) {
                continue;
            }
            self.expect_symbol(Sym::RParen, ")")?;
            break;
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = match self.bump() {
            Some(Tok::Ident(n)) => n,
            _ => return self.err("expected a column type"),
        };
        match name.as_str() {
            "int" | "integer" | "bigint" => Ok(DataType::Int),
            "float" | "double" | "real" => Ok(DataType::Float),
            "string" | "text" | "varchar" => Ok(DataType::Str),
            "bool" | "boolean" => Ok(DataType::Bool),
            "id" => Ok(DataType::Id),
            other => self.err(format!("unknown type `{other}`")),
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        let table = self.ident("table name")?;
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen, "(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if self.eat_symbol(Sym::Comma) {
                    continue;
                }
                self.expect_symbol(Sym::RParen, ")")?;
                break;
            }
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal(&mut self) -> Result<Datum> {
        let negative = self.eat_symbol(Sym::Minus);
        match self.bump() {
            Some(Tok::Number(n)) => parse_number(&n, negative).ok_or(DbError::SqlParse {
                at: self.at(),
                message: format!("bad number `{n}`"),
            }),
            Some(Tok::Str(s)) if !negative => Ok(Datum::str(s)),
            Some(Tok::Ident(n)) if !negative && n == "true" => Ok(Datum::Bool(true)),
            Some(Tok::Ident(n)) if !negative && n == "false" => Ok(Datum::Bool(false)),
            Some(Tok::Ident(n)) if !negative && n == "null" => Ok(Datum::Null),
            _ => self.err("expected a literal"),
        }
    }

    fn query(&mut self) -> Result<Query> {
        let mut body = SetExpr::Select(Box::new(self.select()?));
        while self.eat_keyword("union") {
            let all = self.eat_keyword("all");
            let right = SetExpr::Select(Box::new(self.select()?));
            body = SetExpr::Union {
                left: Box::new(body),
                right: Box::new(right),
                all,
            };
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("desc") {
                    true
                } else {
                    self.eat_keyword("asc");
                    false
                };
                order_by.push((expr, desc));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_keyword("limit") {
            match self.bump() {
                Some(Tok::Number(n)) => {
                    limit = Some(n.parse::<usize>().map_err(|_| DbError::SqlParse {
                        at: self.at(),
                        message: format!("bad LIMIT `{n}`"),
                    })?);
                }
                _ => return self.err("expected a number after LIMIT"),
            }
        }
        Ok(Query {
            body,
            order_by,
            limit,
        })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Sym::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("as") {
                    Some(self.ident("alias")?)
                } else {
                    // Bare alias: `SELECT score s`.
                    match self.peek() {
                        Some(Tok::Ident(n)) if !RESERVED.contains(&n.as_str()) => {
                            Some(self.ident("alias")?)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        if items.is_empty() {
            return self.err("empty select list");
        }
        self.expect_keyword("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_keyword("inner");
            if self.eat_keyword("join") {
                let table = self.table_ref()?;
                self.expect_keyword("on")?;
                let on = self.expr()?;
                joins.push((table, on));
            } else if inner {
                return self.err("expected JOIN after INNER");
            } else {
                break;
            }
        }
        let selection = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.qualified_name()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            selection,
            group_by,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident("table name")?;
        let alias = if self.eat_keyword("as") {
            Some(self.ident("alias")?)
        } else {
            match self.peek() {
                Some(Tok::Ident(n)) if !RESERVED.contains(&n.as_str()) => {
                    Some(self.ident("alias")?)
                }
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    fn qualified_name(&mut self) -> Result<String> {
        let mut name = self.ident("column name")?;
        if self.eat_symbol(Sym::Dot) {
            name.push('.');
            name.push_str(&self.ident("column name")?);
        }
        Ok(name)
    }

    // Expression precedence: OR < AND < NOT < comparison < +- < */ < unary.
    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary(SqlBinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary(SqlBinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_keyword("not") {
            return Ok(SqlExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr> {
        let left = self.add_expr()?;
        if self.eat_keyword("is") {
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Tok::Symbol(Sym::Eq)) => Some(SqlBinOp::Eq),
            Some(Tok::Symbol(Sym::Ne)) => Some(SqlBinOp::Ne),
            Some(Tok::Symbol(Sym::Lt)) => Some(SqlBinOp::Lt),
            Some(Tok::Symbol(Sym::Le)) => Some(SqlBinOp::Le),
            Some(Tok::Symbol(Sym::Gt)) => Some(SqlBinOp::Gt),
            Some(Tok::Symbol(Sym::Ge)) => Some(SqlBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(SqlExpr::Binary(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = if self.eat_symbol(Sym::Plus) {
                SqlBinOp::Add
            } else if self.eat_symbol(Sym::Minus) {
                SqlBinOp::Sub
            } else {
                break;
            };
            let right = self.mul_expr()?;
            left = SqlExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = if self.eat_symbol(Sym::Star) {
                SqlBinOp::Mul
            } else if self.eat_symbol(Sym::Slash) {
                SqlBinOp::Div
            } else {
                break;
            };
            let right = self.unary_expr()?;
            left = SqlExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_symbol(Sym::Minus) {
            // Fold negation into numeric literals, otherwise 0 - expr.
            if let Some(Tok::Number(n)) = self.peek().cloned() {
                self.pos += 1;
                let d = parse_number(&n, true).ok_or(DbError::SqlParse {
                    at: self.at(),
                    message: format!("bad number `{n}`"),
                })?;
                return Ok(SqlExpr::Literal(d));
            }
            let inner = self.unary_expr()?;
            return Ok(SqlExpr::Binary(
                SqlBinOp::Sub,
                Box::new(SqlExpr::Literal(Datum::Int(0))),
                Box::new(inner),
            ));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        if self.eat_symbol(Sym::LParen) {
            let inner = self.expr()?;
            self.expect_symbol(Sym::RParen, ")")?;
            return Ok(inner);
        }
        match self.peek().cloned() {
            Some(Tok::Number(n)) => {
                self.pos += 1;
                parse_number(&n, false)
                    .map(SqlExpr::Literal)
                    .ok_or(DbError::SqlParse {
                        at: self.at(),
                        message: format!("bad number `{n}`"),
                    })
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Datum::str(s)))
            }
            Some(Tok::Ident(n)) if n == "true" => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Datum::Bool(true)))
            }
            Some(Tok::Ident(n)) if n == "false" => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Datum::Bool(false)))
            }
            Some(Tok::Ident(n)) if n == "null" => {
                self.pos += 1;
                Ok(SqlExpr::Literal(Datum::Null))
            }
            Some(Tok::Ident(n)) if !RESERVED.contains(&n.as_str()) => {
                self.pos += 1;
                // Function call?
                if self.eat_symbol(Sym::LParen) {
                    if self.eat_symbol(Sym::Star) {
                        self.expect_symbol(Sym::RParen, ")")?;
                        return Ok(SqlExpr::Func {
                            name: n,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_symbol(Sym::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_symbol(Sym::Comma) {
                                continue;
                            }
                            self.expect_symbol(Sym::RParen, ")")?;
                            break;
                        }
                    }
                    return Ok(SqlExpr::Func {
                        name: n,
                        args,
                        star: false,
                    });
                }
                // Qualified column?
                if self.eat_symbol(Sym::Dot) {
                    let tail = self.ident("column name")?;
                    return Ok(SqlExpr::Ident(format!("{n}.{tail}")));
                }
                Ok(SqlExpr::Ident(n))
            }
            _ => self.err("expected an expression"),
        }
    }
}

fn parse_number(text: &str, negative: bool) -> Option<Datum> {
    let sign = if negative { "-" } else { "" };
    let s = format!("{sign}{text}");
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = s.parse::<i64>() {
            return Some(Datum::Int(i));
        }
    }
    s.parse::<f64>().ok().map(Datum::Float)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query() {
        let st = parse_statement(
            "SELECT name, preferencescore FROM programs \
             WHERE preferencescore > 0.5 ORDER BY preferencescore DESC",
        )
        .unwrap();
        let Statement::Query(q) = st else {
            panic!("expected query")
        };
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].1, "DESC");
        let SetExpr::Select(sel) = &q.body else {
            panic!("expected select")
        };
        assert_eq!(sel.items.len(), 2);
        assert!(sel.selection.is_some());
    }

    #[test]
    fn create_table_types() {
        let st =
            parse_statement("CREATE TABLE t (a INT, b FLOAT, c STRING, d BOOL, e ID)").unwrap();
        let Statement::CreateTable { columns, .. } = st else {
            panic!()
        };
        assert_eq!(columns.len(), 5);
        assert_eq!(columns[4].dtype, DataType::Id);
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
    }

    #[test]
    fn insert_literals() {
        let st = parse_statement(
            "INSERT INTO t VALUES (1, -2.5, 'x', true, NULL), (2, 3.0, 'y', false, 7)",
        )
        .unwrap();
        let Statement::Insert { rows, .. } = st else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Datum::Float(-2.5));
        assert_eq!(rows[0][4], Datum::Null);
    }

    #[test]
    fn join_and_group() {
        let st = parse_statement(
            "SELECT g.genre, COUNT(*) AS n FROM programs p \
             JOIN genres g ON p.id = g.program_id GROUP BY g.genre",
        )
        .unwrap();
        let Statement::Query(q) = st else { panic!() };
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.group_by, vec!["g.genre"]);
    }

    #[test]
    fn union_chain_left_assoc() {
        let st = parse_statement("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v")
            .unwrap();
        let Statement::Query(q) = st else { panic!() };
        let SetExpr::Union { all, left, .. } = &q.body else {
            panic!()
        };
        assert!(*all);
        assert!(matches!(**left, SetExpr::Union { all: false, .. }));
    }

    #[test]
    fn expression_precedence() {
        let st = parse_statement("SELECT a FROM t WHERE a + b * 2 > 4 AND NOT c OR d").unwrap();
        let Statement::Query(q) = st else { panic!() };
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        // Top node must be OR.
        assert!(matches!(
            sel.selection.as_ref().unwrap(),
            SqlExpr::Binary(SqlBinOp::Or, _, _)
        ));
    }

    #[test]
    fn negative_numbers_in_expressions() {
        let st = parse_statement("SELECT a FROM t WHERE a > -1.5").unwrap();
        let Statement::Query(q) = st else { panic!() };
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        let SqlExpr::Binary(SqlBinOp::Gt, _, rhs) = sel.selection.as_ref().unwrap() else {
            panic!()
        };
        assert_eq!(**rhs, SqlExpr::Literal(Datum::Float(-1.5)));
    }

    #[test]
    fn reserved_words_not_aliases() {
        let st = parse_statement("SELECT a FROM t WHERE x = 1").unwrap();
        let Statement::Query(q) = st else { panic!() };
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert!(sel.from.alias.is_none());
    }

    #[test]
    fn bare_aliases() {
        let st = parse_statement("SELECT score s FROM programs p").unwrap();
        let Statement::Query(q) = st else { panic!() };
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.from.alias.as_deref(), Some("p"));
        let SelectItem::Expr { alias, .. } = &sel.items[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("s"));
    }
}
