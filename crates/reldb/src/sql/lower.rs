//! Lowering from the SQL AST to logical plans, with name resolution.

use crate::sql::ast::{
    is_aggregate_name, Query, Select, SelectItem, SetExpr, SqlBinOp, SqlExpr, TableRef,
};
use crate::{
    AggExpr, AggFun, ArithOp, Catalog, CmpOp, Column, DbError, Plan, Result, ScalarExpr, Schema,
    SortKey,
};

const MAX_VIEW_DEPTH: usize = 64;

/// Lowers a query to a plan (resolving all names against the catalog).
pub fn lower_query(catalog: &Catalog, query: &Query) -> Result<Plan> {
    let (mut plan, schema) = lower_set_expr(catalog, &query.body)?;
    if !query.order_by.is_empty() {
        plan = lower_order_by(catalog, plan, &schema, &query.order_by)?;
    }
    if let Some(limit) = query.limit {
        plan = plan.limit(limit);
    }
    Ok(plan)
}

/// Resolves ORDER BY keys. Keys resolve against the query's *output*
/// columns (so aliases work). A qualified name such as `p.name` falls back
/// to its unqualified form. If the query is a plain projection and a key
/// references a column that was *not* projected (valid SQL: `SELECT name …
/// ORDER BY score`), the sort is placed beneath the projection, with
/// output-level keys rewritten to input level by substituting the projected
/// expressions.
fn lower_order_by(
    catalog: &Catalog,
    plan: Plan,
    schema: &Schema,
    order_by: &[(SqlExpr, bool)],
) -> Result<Plan> {
    let resolve_with_fallback = |e: &SqlExpr, s: &Schema| -> Result<ScalarExpr> {
        match resolve_expr(e, s) {
            Ok(expr) => Ok(expr),
            Err(err) => match e {
                SqlExpr::Ident(name) if name.contains('.') => {
                    let base = name.rsplit('.').next().unwrap_or(name);
                    resolve_expr(&SqlExpr::Ident(base.to_string()), s).map_err(|_| err)
                }
                _ => Err(err),
            },
        }
    };
    let output_keys: Vec<Result<ScalarExpr>> = order_by
        .iter()
        .map(|(e, _)| resolve_with_fallback(e, schema))
        .collect();
    if output_keys.iter().all(Result::is_ok) {
        let keys = output_keys
            .into_iter()
            .zip(order_by)
            .map(|(expr, (_, desc))| SortKey {
                expr: expr.expect("checked"),
                desc: *desc,
            })
            .collect();
        return Ok(plan.order_by(keys));
    }
    // Some key is not in the output: allowed only above a plain projection.
    let Plan::Project { input, exprs } = plan else {
        return Err(output_keys
            .into_iter()
            .find_map(Result::err)
            .expect("at least one key failed"));
    };
    let in_schema = plan_schema(catalog, &input, 0)?;
    let keys = order_by
        .iter()
        .map(|(e, desc)| {
            let expr = match resolve_with_fallback(e, schema) {
                // Alias over the output: rewrite to input level.
                Ok(out_expr) => remap_to_input(&out_expr, &exprs),
                Err(_) => resolve_with_fallback(e, &in_schema)?,
            };
            Ok(SortKey { expr, desc: *desc })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Plan::Project {
        input: Box::new(Plan::OrderBy { input, keys }),
        exprs,
    })
}

/// Rewrites an expression over a projection's output to one over its input
/// by substituting each output-column reference with its defining expression.
fn remap_to_input(expr: &ScalarExpr, project_exprs: &[(ScalarExpr, String)]) -> ScalarExpr {
    match expr {
        ScalarExpr::Column(i) => project_exprs[*i].0.clone(),
        ScalarExpr::Literal(_) => expr.clone(),
        ScalarExpr::Cmp(op, l, r) => ScalarExpr::Cmp(
            *op,
            Box::new(remap_to_input(l, project_exprs)),
            Box::new(remap_to_input(r, project_exprs)),
        ),
        ScalarExpr::Arith(op, l, r) => ScalarExpr::Arith(
            *op,
            Box::new(remap_to_input(l, project_exprs)),
            Box::new(remap_to_input(r, project_exprs)),
        ),
        ScalarExpr::And(l, r) => ScalarExpr::And(
            Box::new(remap_to_input(l, project_exprs)),
            Box::new(remap_to_input(r, project_exprs)),
        ),
        ScalarExpr::Or(l, r) => ScalarExpr::Or(
            Box::new(remap_to_input(l, project_exprs)),
            Box::new(remap_to_input(r, project_exprs)),
        ),
        ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(remap_to_input(e, project_exprs))),
        ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(remap_to_input(e, project_exprs))),
        ScalarExpr::Lower(e) => ScalarExpr::Lower(Box::new(remap_to_input(e, project_exprs))),
        ScalarExpr::Upper(e) => ScalarExpr::Upper(Box::new(remap_to_input(e, project_exprs))),
        ScalarExpr::Abs(e) => ScalarExpr::Abs(Box::new(remap_to_input(e, project_exprs))),
    }
}

fn lower_set_expr(catalog: &Catalog, body: &SetExpr) -> Result<(Plan, Schema)> {
    match body {
        SetExpr::Select(select) => lower_select(catalog, select),
        SetExpr::Union { left, right, all } => {
            let (lp, ls) = lower_set_expr(catalog, left)?;
            let (rp, rs) = lower_set_expr(catalog, right)?;
            ls.union_compatible(&rs)?;
            let mut plan = Plan::Union {
                left: Box::new(lp),
                right: Box::new(rp),
            };
            if !*all {
                plan = plan.distinct();
            }
            Ok((plan, ls))
        }
    }
}

fn scan_ref(catalog: &Catalog, table: &TableRef) -> Result<(Plan, Schema)> {
    let schema = source_schema(catalog, &table.name, 0)?.qualified(table.exposed_name());
    let plan = Plan::Scan {
        table: table.name.clone(),
        alias: table.alias.clone(),
    };
    Ok((plan, schema))
}

/// Schema a scan of `name` produces, before qualification.
fn source_schema(catalog: &Catalog, name: &str, depth: usize) -> Result<Schema> {
    if depth > MAX_VIEW_DEPTH {
        return Err(DbError::Unsupported(format!(
            "view nesting deeper than {MAX_VIEW_DEPTH} (cycle?)"
        )));
    }
    if let Some(view) = catalog.view(name) {
        return plan_schema(catalog, &view.plan, depth + 1).map(|s| s.qualified(name));
    }
    Ok(catalog.table(name)?.schema().as_ref().clone())
}

/// Static output schema of a plan (mirrors the executor).
pub(crate) fn plan_schema(catalog: &Catalog, plan: &Plan, depth: usize) -> Result<Schema> {
    match plan {
        Plan::Scan { table, alias } => {
            let base = source_schema(catalog, table, depth)?;
            Ok(base.qualified(alias.as_deref().unwrap_or(table)))
        }
        Plan::Values { schema, .. } => Ok(schema.as_ref().clone()),
        Plan::Select { input, .. }
        | Plan::Distinct { input }
        | Plan::OrderBy { input, .. }
        | Plan::Limit { input, .. } => plan_schema(catalog, input, depth),
        Plan::Project { input, exprs } => {
            let in_schema = plan_schema(catalog, input, depth)?;
            Ok(Schema::new(
                exprs
                    .iter()
                    .map(|(e, name)| {
                        Column::new(name.clone(), crate::plan::infer_type(e, &in_schema))
                    })
                    .collect(),
            ))
        }
        Plan::Join { left, right, .. } => {
            let l = plan_schema(catalog, left, depth)?;
            let r = plan_schema(catalog, right, depth)?;
            Ok(l.join(&r))
        }
        Plan::Union { left, .. } => plan_schema(catalog, left, depth),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_schema = plan_schema(catalog, input, depth)?;
            let mut cols = Vec::new();
            for &i in group_by {
                cols.push(
                    in_schema
                        .column(i)
                        .cloned()
                        .ok_or_else(|| DbError::UnknownColumn(format!("#{i}")))?,
                );
            }
            for agg in aggs {
                cols.push(Column::new(
                    agg.name.clone(),
                    crate::plan::agg_type(agg, &in_schema),
                ));
            }
            Ok(Schema::new(cols))
        }
    }
}

fn lower_select(catalog: &Catalog, select: &Select) -> Result<(Plan, Schema)> {
    let (mut plan, mut schema) = scan_ref(catalog, &select.from)?;

    for (table, on) in &select.joins {
        let (right_plan, right_schema) = scan_ref(catalog, table)?;
        let combined = schema.join(&right_schema);
        // Split the ON condition into hash-joinable equalities and a
        // residual filter.
        let mut on_pairs = Vec::new();
        let mut residual: Option<ScalarExpr> = None;
        for conjunct in split_conjuncts(on) {
            if let Some(pair) = equi_pair(conjunct, &schema, &right_schema) {
                on_pairs.push(pair);
            } else {
                let resolved = resolve_expr(conjunct, &combined)?;
                residual = Some(match residual {
                    None => resolved,
                    Some(prev) => ScalarExpr::And(Box::new(prev), Box::new(resolved)),
                });
            }
        }
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(right_plan),
            on: on_pairs,
            filter: residual,
        };
        schema = combined;
    }

    if let Some(selection) = &select.selection {
        if selection.contains_aggregate() {
            return Err(DbError::Unsupported(
                "aggregates are not allowed in WHERE".into(),
            ));
        }
        plan = plan.select(resolve_expr(selection, &schema)?);
    }

    let has_aggregates = select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()));

    let (plan, schema) = if has_aggregates || !select.group_by.is_empty() {
        lower_aggregate_select(select, plan, schema)?
    } else {
        lower_plain_select(select, plan, schema)?
    };

    if select.distinct {
        Ok((plan.distinct(), schema))
    } else {
        Ok((plan, schema))
    }
}

fn lower_plain_select(select: &Select, input: Plan, in_schema: Schema) -> Result<(Plan, Schema)> {
    let mut exprs: Vec<(ScalarExpr, String)> = Vec::new();
    for (k, item) in select.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (i, col) in in_schema.columns().iter().enumerate() {
                    let base = col.base_name();
                    let unique = in_schema
                        .columns()
                        .iter()
                        .filter(|c| c.base_name() == base)
                        .count()
                        == 1;
                    let name = if unique {
                        base.to_string()
                    } else {
                        col.name.clone()
                    };
                    exprs.push((ScalarExpr::Column(i), name));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = output_name(expr, alias.as_deref(), k);
                exprs.push((resolve_expr(expr, &in_schema)?, name));
            }
        }
    }
    let out_schema = Schema::new(
        exprs
            .iter()
            .map(|(e, name)| Column::new(name.clone(), crate::plan::infer_type(e, &in_schema)))
            .collect(),
    );
    Ok((input.project(exprs), out_schema))
}

fn lower_aggregate_select(
    select: &Select,
    input: Plan,
    in_schema: Schema,
) -> Result<(Plan, Schema)> {
    // Resolve grouping columns.
    let group_idx: Vec<usize> = select
        .group_by
        .iter()
        .map(|name| in_schema.resolve(name))
        .collect::<Result<Vec<_>>>()?;

    // Each select item is either a grouped column or a single aggregate.
    enum Mapped {
        Group(usize, String),
        Agg(AggExpr),
    }
    let mut mapped = Vec::new();
    for (k, item) in select.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                return Err(DbError::Unsupported("`*` in an aggregate query".into()))
            }
            SelectItem::Expr { expr, alias } => {
                let name = output_name(expr, alias.as_deref(), k);
                match expr {
                    SqlExpr::Func {
                        name: fname,
                        args,
                        star,
                    } if is_aggregate_name(fname) => {
                        mapped.push(Mapped::Agg(lower_agg(
                            fname, args, *star, name, &in_schema,
                        )?));
                    }
                    SqlExpr::Ident(col) => {
                        let idx = in_schema.resolve(col)?;
                        let pos = group_idx.iter().position(|&g| g == idx).ok_or_else(|| {
                            DbError::Unsupported(format!("column `{col}` must appear in GROUP BY"))
                        })?;
                        mapped.push(Mapped::Group(pos, name));
                    }
                    _ => {
                        return Err(DbError::Unsupported(
                            "aggregate queries support only grouped columns and single \
                             aggregate calls in the select list"
                                .into(),
                        ))
                    }
                }
            }
        }
    }

    let aggs: Vec<AggExpr> = mapped
        .iter()
        .filter_map(|m| match m {
            Mapped::Agg(a) => Some(a.clone()),
            Mapped::Group(..) => None,
        })
        .collect();
    let agg_plan = Plan::Aggregate {
        input: Box::new(input),
        group_by: group_idx.clone(),
        aggs: aggs.clone(),
    };

    // Re-order the aggregate output to match the select list.
    let mut agg_cursor = 0usize;
    let mut exprs: Vec<(ScalarExpr, String)> = Vec::new();
    for m in &mapped {
        match m {
            Mapped::Group(pos, name) => exprs.push((ScalarExpr::Column(*pos), name.clone())),
            Mapped::Agg(_) => {
                exprs.push((
                    ScalarExpr::Column(group_idx.len() + agg_cursor),
                    match &mapped[exprs.len()] {
                        Mapped::Agg(a) => a.name.clone(),
                        Mapped::Group(..) => unreachable!(),
                    },
                ));
                agg_cursor += 1;
            }
        }
    }
    // Output schema: compute from the aggregate's schema through projection.
    let mut agg_cols: Vec<Column> = Vec::new();
    for &i in &group_idx {
        agg_cols.push(
            in_schema
                .column(i)
                .cloned()
                .ok_or_else(|| DbError::UnknownColumn(format!("#{i}")))?,
        );
    }
    for a in &aggs {
        agg_cols.push(Column::new(
            a.name.clone(),
            crate::plan::agg_type(a, &in_schema),
        ));
    }
    let agg_schema = Schema::new(agg_cols);
    let out_schema = Schema::new(
        exprs
            .iter()
            .map(|(e, name)| Column::new(name.clone(), crate::plan::infer_type(e, &agg_schema)))
            .collect(),
    );
    Ok((
        Plan::Project {
            input: Box::new(agg_plan),
            exprs,
        },
        out_schema,
    ))
}

fn lower_agg(
    fname: &str,
    args: &[SqlExpr],
    star: bool,
    out_name: String,
    schema: &Schema,
) -> Result<AggExpr> {
    let fun = match fname {
        "count" => AggFun::Count,
        "sum" => AggFun::Sum,
        "avg" => AggFun::Avg,
        "min" => AggFun::Min,
        "max" => AggFun::Max,
        "ecount" => AggFun::ExpectedCount,
        other => return Err(DbError::Unsupported(format!("aggregate `{other}`"))),
    };
    let arg = match (fun, star, args.len()) {
        (AggFun::Count, true, 0) | (AggFun::ExpectedCount, _, 0) => None,
        (AggFun::Count, false, 1)
        | (AggFun::Sum | AggFun::Avg | AggFun::Min | AggFun::Max, false, 1) => {
            Some(resolve_expr(&args[0], schema)?)
        }
        _ => {
            return Err(DbError::Unsupported(format!(
                "bad arguments for aggregate `{fname}`"
            )))
        }
    };
    Ok(AggExpr {
        fun,
        arg,
        name: out_name,
    })
}

fn output_name(expr: &SqlExpr, alias: Option<&str>, position: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        SqlExpr::Ident(name) => name.rsplit('.').next().unwrap_or(name).to_string(),
        SqlExpr::Func { name, .. } => name.clone(),
        _ => format!("col{}", position + 1),
    }
}

fn split_conjuncts(expr: &SqlExpr) -> Vec<&SqlExpr> {
    match expr {
        SqlExpr::Binary(SqlBinOp::And, l, r) => {
            let mut out = split_conjuncts(l);
            out.extend(split_conjuncts(r));
            out
        }
        other => vec![other],
    }
}

/// Recognises `left.col = right.col` conjuncts for hash joins.
fn equi_pair(conjunct: &SqlExpr, left: &Schema, right: &Schema) -> Option<(usize, usize)> {
    let SqlExpr::Binary(SqlBinOp::Eq, a, b) = conjunct else {
        return None;
    };
    let (SqlExpr::Ident(na), SqlExpr::Ident(nb)) = (a.as_ref(), b.as_ref()) else {
        return None;
    };
    match (left.resolve(na), right.resolve(nb)) {
        (Ok(li), Ok(ri)) => Some((li, ri)),
        _ => match (left.resolve(nb), right.resolve(na)) {
            (Ok(li), Ok(ri)) => Some((li, ri)),
            _ => None,
        },
    }
}

/// Resolves a SQL expression against a schema.
pub(crate) fn resolve_expr(expr: &SqlExpr, schema: &Schema) -> Result<ScalarExpr> {
    Ok(match expr {
        SqlExpr::Ident(name) => ScalarExpr::Column(schema.resolve(name)?),
        SqlExpr::Literal(d) => ScalarExpr::Literal(d.clone()),
        SqlExpr::Binary(op, l, r) => {
            let (l, r) = (resolve_expr(l, schema)?, resolve_expr(r, schema)?);
            match op {
                SqlBinOp::Eq => ScalarExpr::cmp(CmpOp::Eq, l, r),
                SqlBinOp::Ne => ScalarExpr::cmp(CmpOp::Ne, l, r),
                SqlBinOp::Lt => ScalarExpr::cmp(CmpOp::Lt, l, r),
                SqlBinOp::Le => ScalarExpr::cmp(CmpOp::Le, l, r),
                SqlBinOp::Gt => ScalarExpr::cmp(CmpOp::Gt, l, r),
                SqlBinOp::Ge => ScalarExpr::cmp(CmpOp::Ge, l, r),
                SqlBinOp::Add => ScalarExpr::Arith(ArithOp::Add, Box::new(l), Box::new(r)),
                SqlBinOp::Sub => ScalarExpr::Arith(ArithOp::Sub, Box::new(l), Box::new(r)),
                SqlBinOp::Mul => ScalarExpr::Arith(ArithOp::Mul, Box::new(l), Box::new(r)),
                SqlBinOp::Div => ScalarExpr::Arith(ArithOp::Div, Box::new(l), Box::new(r)),
                SqlBinOp::And => ScalarExpr::And(Box::new(l), Box::new(r)),
                SqlBinOp::Or => ScalarExpr::Or(Box::new(l), Box::new(r)),
            }
        }
        SqlExpr::Not(e) => ScalarExpr::Not(Box::new(resolve_expr(e, schema)?)),
        SqlExpr::IsNull { expr, negated } => {
            let inner = ScalarExpr::IsNull(Box::new(resolve_expr(expr, schema)?));
            if *negated {
                ScalarExpr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        SqlExpr::Func { name, args, star } => {
            if is_aggregate_name(name) {
                return Err(DbError::Unsupported(format!(
                    "aggregate `{name}` not allowed here"
                )));
            }
            if *star || args.len() != 1 {
                return Err(DbError::Unsupported(format!(
                    "function `{name}` takes exactly one argument"
                )));
            }
            let arg = Box::new(resolve_expr(&args[0], schema)?);
            match name.as_str() {
                "lower" => ScalarExpr::Lower(arg),
                "upper" => ScalarExpr::Upper(arg),
                "abs" => ScalarExpr::Abs(arg),
                other => return Err(DbError::Unsupported(format!("function `{other}`"))),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_statement;
    use crate::sql::Statement;
    use crate::DataType;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(
            "programs",
            Schema::of(&[
                ("id", DataType::Int),
                ("name", DataType::Str),
                ("score", DataType::Float),
            ]),
        )
        .unwrap();
        cat.create_table(
            "genres",
            Schema::of(&[("program_id", DataType::Int), ("genre", DataType::Str)]),
        )
        .unwrap();
        cat
    }

    fn lower(sql: &str) -> Result<Plan> {
        let cat = catalog();
        let Statement::Query(q) = parse_statement(sql)? else {
            panic!("not a query")
        };
        lower_query(&cat, &q)
    }

    #[test]
    fn equi_join_extraction() {
        let plan = lower(
            "SELECT p.name FROM programs p JOIN genres g \
             ON p.id = g.program_id AND g.genre = 'news'",
        )
        .unwrap();
        fn find_join(p: &Plan) -> Option<&Plan> {
            match p {
                Plan::Join { .. } => Some(p),
                Plan::Project { input, .. }
                | Plan::Select { input, .. }
                | Plan::Distinct { input }
                | Plan::OrderBy { input, .. }
                | Plan::Limit { input, .. } => find_join(input),
                _ => None,
            }
        }
        let Some(Plan::Join { on, filter, .. }) = find_join(&plan) else {
            panic!("no join found");
        };
        assert_eq!(on.len(), 1, "one hash-joinable pair");
        assert!(filter.is_some(), "genre predicate stays as residual");
    }

    #[test]
    fn unknown_columns_fail_at_lowering() {
        assert!(matches!(
            lower("SELECT missing FROM programs"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            lower("SELECT name FROM nowhere"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn aggregates_rejected_in_where() {
        assert!(matches!(
            lower("SELECT name FROM programs WHERE COUNT(*) > 1"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn group_by_requires_grouped_columns() {
        assert!(matches!(
            lower("SELECT name, COUNT(*) FROM programs GROUP BY id"),
            Err(DbError::Unsupported(_))
        ));
        assert!(lower("SELECT id, COUNT(*) AS n FROM programs GROUP BY id").is_ok());
    }

    #[test]
    fn order_by_alias_resolves() {
        let plan = lower("SELECT score AS s FROM programs ORDER BY s DESC");
        assert!(plan.is_ok(), "{plan:?}");
    }

    #[test]
    fn wildcard_dedup_uses_qualified_names() {
        let plan = lower("SELECT * FROM programs p JOIN genres g ON p.id = g.program_id");
        let Ok(Plan::Project { exprs, .. }) = plan else {
            panic!("expected project")
        };
        assert_eq!(exprs.len(), 5);
        // `id` and `program_id` are unique → base names.
        assert!(exprs.iter().any(|(_, n)| n == "id"));
        assert!(exprs.iter().any(|(_, n)| n == "program_id"));
    }
}
