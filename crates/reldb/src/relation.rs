use std::fmt::Write as _;
use std::sync::Arc;

use capra_events::{Evaluator, EventExpr, Universe};

use crate::{Datum, DbError, Result, Schema};

/// A row: values plus the event expression (lineage) under which the row
/// exists. Deterministic rows have lineage `⊤`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// The column values, aligned with the relation's schema.
    pub values: Vec<Datum>,
    /// The event expression under which this row is present.
    pub lineage: EventExpr,
}

impl Row {
    /// A certain row (lineage `⊤`).
    pub fn certain(values: Vec<Datum>) -> Self {
        Self {
            values,
            lineage: EventExpr::True,
        }
    }

    /// A row present under the given event.
    pub fn uncertain(values: Vec<Datum>, lineage: EventExpr) -> Self {
        Self { values, lineage }
    }
}

/// A materialised relation: a schema and a bag of rows.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl Relation {
    /// Creates a relation, checking every row against the schema.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Result<Self> {
        for row in &rows {
            check_row(&schema, row)?;
        }
        Ok(Self { schema, rows })
    }

    /// Creates a relation without per-row validation (used internally by
    /// operators whose output is schema-correct by construction).
    pub(crate) fn trusted(schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        Self { schema, rows }
    }

    /// An empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consumes the relation into its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a one-row, one-column relation.
    pub fn scalar(&self) -> Result<&Datum> {
        if self.rows.len() == 1 && self.schema.len() == 1 {
            Ok(&self.rows[0].values[0])
        } else {
            Err(DbError::Unsupported(format!(
                "scalar() on a {}×{} relation",
                self.rows.len(),
                self.schema.len()
            )))
        }
    }

    /// Renders the relation as an aligned text table. When a universe is
    /// supplied, uncertain rows get a trailing probability column.
    pub fn to_text(&self, universe: Option<&Universe>) -> String {
        let has_prob = universe.is_some() && self.rows.iter().any(|r| !r.lineage.is_true());
        let mut headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        if has_prob {
            headers.push("P".to_string());
        }
        let mut ev = universe.map(Evaluator::new);
        let body: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut cells: Vec<String> = r.values.iter().map(ToString::to_string).collect();
                if has_prob {
                    let p = ev.as_mut().map(|e| e.prob(&r.lineage)).unwrap_or(1.0);
                    cells.push(format!("{p:.4}"));
                }
                cells
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &body {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        fmt_row(&headers, &mut out);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &body {
            fmt_row(row, &mut out);
        }
        out
    }
}

fn check_row(schema: &Schema, row: &Row) -> Result<()> {
    if row.values.len() != schema.len() {
        return Err(DbError::SchemaMismatch {
            left: schema.to_string(),
            right: format!("row of arity {}", row.values.len()),
        });
    }
    for (value, col) in row.values.iter().zip(schema.columns()) {
        if let Some(t) = value.data_type() {
            if t != col.dtype && !(t == crate::DataType::Int && col.dtype == crate::DataType::Float)
            {
                return Err(DbError::SchemaMismatch {
                    left: format!("column {} {}", col.name, col.dtype),
                    right: format!("value {value} of type {t}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn schema() -> Arc<Schema> {
        Schema::of(&[("name", DataType::Str), ("score", DataType::Float)])
    }

    #[test]
    fn validates_arity_and_types() {
        let s = schema();
        let ok = Relation::new(s.clone(), vec![Row::certain(vec!["a".into(), 0.5.into()])]);
        assert!(ok.is_ok());
        let bad_arity = Relation::new(s.clone(), vec![Row::certain(vec!["a".into()])]);
        assert!(matches!(bad_arity, Err(DbError::SchemaMismatch { .. })));
        let bad_type = Relation::new(s.clone(), vec![Row::certain(vec![1i64.into(), "x".into()])]);
        assert!(matches!(bad_type, Err(DbError::SchemaMismatch { .. })));
    }

    #[test]
    fn ints_widen_into_float_columns() {
        let s = schema();
        let r = Relation::new(s, vec![Row::certain(vec!["a".into(), 1i64.into()])]);
        assert!(r.is_ok());
    }

    #[test]
    fn nulls_fit_every_column() {
        let s = schema();
        let r = Relation::new(s, vec![Row::certain(vec![Datum::Null, Datum::Null])]);
        assert!(r.is_ok());
    }

    #[test]
    fn scalar_accessor() {
        let s = Schema::of(&[("n", DataType::Int)]);
        let r = Relation::new(s.clone(), vec![Row::certain(vec![42i64.into()])]).unwrap();
        assert_eq!(r.scalar().unwrap(), &Datum::Int(42));
        let empty = Relation::empty(s);
        assert!(empty.scalar().is_err());
    }

    #[test]
    fn text_rendering_aligns_and_shows_probability() {
        let mut u = Universe::new();
        let v = u.add_bool("maybe", 0.25).unwrap();
        let s = schema();
        let r = Relation::new(
            s,
            vec![
                Row::certain(vec!["certain".into(), 1.0.into()]),
                Row::uncertain(vec!["maybe".into(), 0.5.into()], u.bool_event(v).unwrap()),
            ],
        )
        .unwrap();
        let text = r.to_text(Some(&u));
        assert!(text.contains("| P"), "{text}");
        assert!(text.contains("0.2500"), "{text}");
        assert!(text.contains("1.0000"), "{text}");
        // Without a universe there is no probability column.
        let plain = r.to_text(None);
        assert!(!plain.contains("| P "), "{plain}");
    }
}
