use std::sync::Arc;

use crate::{DataType, Datum, Row, ScalarExpr, Schema};

/// A sort key: an expression and a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression, evaluated per row.
    pub expr: ScalarExpr,
    /// Descending order when true.
    pub desc: bool,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFun {
    /// Row count (`COUNT(*)` / `COUNT(expr)` counting non-null values).
    Count,
    /// Sum of a numeric expression.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean (always a float).
    Avg,
    /// Expected number of rows under lineage probabilities: `Σ P(lineage)`.
    /// Requires the executor to be given an event universe. This is the
    /// probabilistic counterpart of `COUNT(*)` for uncertain relations.
    ExpectedCount,
}

/// One aggregate in an [`Plan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub fun: AggFun,
    /// Argument (ignored by `Count`/`ExpectedCount` when `None`).
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub name: String,
}

/// A logical query plan. Executed by [`crate::Executor`]; every operator
/// propagates event-expression lineage (see the crate docs for the rules).
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a stored table or a named view. The output schema is qualified
    /// with `alias` (or the table name) so joins stay unambiguous.
    Scan {
        /// Table or view name.
        table: String,
        /// Optional alias for qualification.
        alias: Option<String>,
    },
    /// An inline constant relation.
    Values {
        /// Schema of the rows.
        schema: Arc<Schema>,
        /// The rows (may carry lineage).
        rows: Vec<Row>,
    },
    /// Filter rows by a predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate; `NULL` counts as false.
        predicate: ScalarExpr,
    },
    /// Compute output columns from input rows.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(ScalarExpr, String)>,
    },
    /// Inner join. Equality pairs `(left column, right column)` drive a hash
    /// join; `filter` (over the concatenated row) handles residual
    /// predicates. With no pairs this is a filtered cross product.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Equi-join column pairs (left index, right index).
        on: Vec<(usize, usize)>,
        /// Residual predicate over the concatenated row.
        filter: Option<ScalarExpr>,
    },
    /// Bag union of two union-compatible inputs (keeps the left schema).
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Duplicate elimination; lineages of merged duplicates are OR-ed,
    /// which is exactly the probabilistic projection of Fuhr–Rölleke.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Stable sort by keys.
    OrderBy {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Keep the first `limit` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum number of rows.
        limit: usize,
    },
    /// Grouped aggregation. The output schema is the group-by columns
    /// followed by one column per aggregate; the lineage of a group is the
    /// disjunction of its members' lineages.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Indices of grouping columns in the input.
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
}

impl Plan {
    /// Scan shorthand.
    pub fn scan(table: impl Into<String>) -> Self {
        Plan::Scan {
            table: table.into(),
            alias: None,
        }
    }

    /// Scan with alias shorthand.
    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> Self {
        Plan::Scan {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// Filter shorthand.
    pub fn select(self, predicate: ScalarExpr) -> Self {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Projection shorthand.
    pub fn project(self, exprs: Vec<(ScalarExpr, String)>) -> Self {
        Plan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Distinct shorthand.
    pub fn distinct(self) -> Self {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Order-by shorthand.
    pub fn order_by(self, keys: Vec<SortKey>) -> Self {
        Plan::OrderBy {
            input: Box::new(self),
            keys,
        }
    }

    /// Limit shorthand.
    pub fn limit(self, limit: usize) -> Self {
        Plan::Limit {
            input: Box::new(self),
            limit,
        }
    }

    /// Number of operator nodes in the plan (complexity measure used by the
    /// scaling experiment to report how large the naive view plans get).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } | Plan::Values { .. } => 0,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::OrderBy { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Aggregate { input, .. } => input.node_count(),
            Plan::Join { left, right, .. } | Plan::Union { left, right } => {
                left.node_count() + right.node_count()
            }
        }
    }
}

/// Best-effort static type inference for projected expressions.
pub(crate) fn infer_type(expr: &ScalarExpr, input: &Schema) -> DataType {
    match expr {
        ScalarExpr::Column(i) => input.column(*i).map(|c| c.dtype).unwrap_or(DataType::Str),
        ScalarExpr::Literal(d) => d.data_type().unwrap_or(DataType::Str),
        ScalarExpr::Cmp(..)
        | ScalarExpr::And(..)
        | ScalarExpr::Or(..)
        | ScalarExpr::Not(_)
        | ScalarExpr::IsNull(_) => DataType::Bool,
        ScalarExpr::Arith(op, l, r) => {
            let lt = infer_type(l, input);
            let rt = infer_type(r, input);
            if *op != crate::ArithOp::Div && lt == DataType::Int && rt == DataType::Int {
                DataType::Int
            } else {
                DataType::Float
            }
        }
        ScalarExpr::Lower(_) | ScalarExpr::Upper(_) => DataType::Str,
        ScalarExpr::Abs(e) => infer_type(e, input),
    }
}

/// Output type of an aggregate.
pub(crate) fn agg_type(agg: &AggExpr, input: &Schema) -> DataType {
    match agg.fun {
        AggFun::Count => DataType::Int,
        AggFun::ExpectedCount | AggFun::Avg => DataType::Float,
        AggFun::Sum | AggFun::Min | AggFun::Max => agg
            .arg
            .as_ref()
            .map(|e| infer_type(e, input))
            .unwrap_or(DataType::Float),
    }
}

/// Convenience: rows of plain datum vectors with certain lineage.
pub fn certain_rows(rows: Vec<Vec<Datum>>) -> Vec<Row> {
    rows.into_iter().map(Row::certain).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CmpOp;

    #[test]
    fn builders_compose() {
        let p = Plan::scan("programs")
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(1),
                ScalarExpr::lit(0.5),
            ))
            .project(vec![(ScalarExpr::col(0), "name".into())])
            .distinct()
            .order_by(vec![SortKey {
                expr: ScalarExpr::col(0),
                desc: true,
            }])
            .limit(10);
        assert_eq!(p.node_count(), 6);
    }

    #[test]
    fn type_inference() {
        let s = Schema::of(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
        ]);
        assert_eq!(infer_type(&ScalarExpr::col(0), &s), DataType::Int);
        assert_eq!(infer_type(&ScalarExpr::col(1), &s), DataType::Float);
        assert_eq!(
            infer_type(
                &ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1i64)),
                &s
            ),
            DataType::Bool
        );
        let int_add = ScalarExpr::Arith(
            crate::ArithOp::Add,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::lit(1i64)),
        );
        assert_eq!(infer_type(&int_add, &s), DataType::Int);
        let div = ScalarExpr::Arith(
            crate::ArithOp::Div,
            Box::new(ScalarExpr::col(0)),
            Box::new(ScalarExpr::lit(2i64)),
        );
        assert_eq!(infer_type(&div, &s), DataType::Float);
        assert_eq!(
            infer_type(&ScalarExpr::Lower(Box::new(ScalarExpr::col(2))), &s),
            DataType::Str
        );
    }

    #[test]
    fn aggregate_types() {
        let s = Schema::of(&[("i", DataType::Int)]);
        let count = AggExpr {
            fun: AggFun::Count,
            arg: None,
            name: "n".into(),
        };
        assert_eq!(agg_type(&count, &s), DataType::Int);
        let sum = AggExpr {
            fun: AggFun::Sum,
            arg: Some(ScalarExpr::col(0)),
            name: "s".into(),
        };
        assert_eq!(agg_type(&sum, &s), DataType::Int);
        let avg = AggExpr {
            fun: AggFun::Avg,
            arg: Some(ScalarExpr::col(0)),
            name: "a".into(),
        };
        assert_eq!(agg_type(&avg, &s), DataType::Float);
    }
}
