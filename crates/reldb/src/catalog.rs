use std::collections::HashMap;
use std::sync::Arc;

use capra_events::Universe;
use parking_lot::RwLock;

use crate::{DbError, Plan, Relation, Result, Row, Schema};

/// A stored table: a schema and a concurrently readable bag of rows.
///
/// Rows sit behind a [`parking_lot::RwLock`] so that a context provider can
/// append fresh sensor-derived rows while queries snapshot the table — the
/// paper's "uniform tabular view towards both static and dynamic contexts".
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    rows: RwLock<Vec<Row>>,
}

impl Table {
    fn new(name: String, schema: Arc<Schema>) -> Self {
        Self {
            name,
            schema,
            rows: RwLock::new(Vec::new()),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Appends rows after validating them against the schema.
    pub fn insert(&self, rows: Vec<Row>) -> Result<usize> {
        // Validate outside the lock.
        let validated = Relation::new(self.schema.clone(), rows)?;
        let mut guard = self.rows.write();
        let n = validated.len();
        guard.extend(validated.into_rows());
        Ok(n)
    }

    /// Copies the current rows out (queries operate on snapshots).
    pub fn snapshot(&self) -> Vec<Row> {
        self.rows.read().clone()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }

    /// Removes all rows (used when re-feeding dynamic context tables).
    pub fn clear(&self) {
        self.rows.write().clear();
    }
}

/// A named view: a stored plan, expanded on scan.
#[derive(Debug, Clone)]
pub struct View {
    /// View name.
    pub name: String,
    /// The plan the view stands for.
    pub plan: Arc<Plan>,
}

/// The catalog: named tables and views.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    views: RwLock<HashMap<String, Arc<View>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table. Fails if a table or view with the name exists.
    pub fn create_table(&self, name: &str, schema: Arc<Schema>) -> Result<Arc<Table>> {
        if self.views.read().contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_string()));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_string()));
        }
        let table = Arc::new(Table::new(name.to_string(), schema));
        tables.insert(name.to_string(), table.clone());
        Ok(table)
    }

    /// Creates (or replaces) a view.
    pub fn create_view(&self, name: &str, plan: Plan) -> Result<Arc<View>> {
        if self.tables.read().contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_string()));
        }
        let view = Arc::new(View {
            name: name.to_string(),
            plan: Arc::new(plan),
        });
        self.views.write().insert(name.to_string(), view.clone());
        Ok(view)
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Looks up a view.
    pub fn view(&self, name: &str) -> Option<Arc<View>> {
        self.views.read().get(name).cloned()
    }

    /// Drops a table (no-op result if absent).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Drops a view.
    pub fn drop_view(&self, name: &str) -> Result<()> {
        self.views
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of all views, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total number of rows across all tables (the paper reports its test
    /// database size this way: "around 11000 tuples").
    pub fn total_rows(&self) -> usize {
        self.tables.read().values().map(|t| t.len()).sum()
    }
}

/// A handle bundling a catalog with the SQL front-end.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Arc<Catalog>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Parses and executes one SQL statement. DDL statements return an
    /// empty relation; queries return their result.
    pub fn execute_sql(&self, sql: &str) -> Result<Relation> {
        crate::sql::execute(&self.catalog, None, sql)
    }

    /// Like [`Database::execute_sql`], with an event universe available for
    /// probabilistic aggregates (`ECOUNT`).
    pub fn execute_sql_with(&self, sql: &str, universe: &Universe) -> Result<Relation> {
        crate::sql::execute(&self.catalog, Some(universe), sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{certain_rows, DataType, Datum};

    fn demo_schema() -> Arc<Schema> {
        Schema::of(&[("name", DataType::Str), ("score", DataType::Float)])
    }

    #[test]
    fn create_insert_snapshot() {
        let cat = Catalog::new();
        let t = cat.create_table("programs", demo_schema()).unwrap();
        let n = t
            .insert(certain_rows(vec![
                vec!["Oprah".into(), 0.071.into()],
                vec!["BBC news".into(), 0.18.into()],
            ]))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(cat.total_rows(), 2);
        let snap = t.snapshot();
        assert_eq!(snap[0].values[0], Datum::str("Oprah"));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let cat = Catalog::new();
        cat.create_table("t", demo_schema()).unwrap();
        assert!(matches!(
            cat.create_table("t", demo_schema()),
            Err(DbError::DuplicateTable(_))
        ));
        assert!(matches!(
            cat.create_view("t", Plan::scan("x")),
            Err(DbError::DuplicateTable(_))
        ));
        cat.create_view("v", Plan::scan("t")).unwrap();
        assert!(matches!(
            cat.create_table("v", demo_schema()),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn insert_validates_schema() {
        let cat = Catalog::new();
        let t = cat.create_table("t", demo_schema()).unwrap();
        let err = t.insert(certain_rows(vec![vec![1i64.into(), "x".into()]]));
        assert!(matches!(err, Err(DbError::SchemaMismatch { .. })));
        assert!(t.is_empty(), "failed insert must not partially apply");
    }

    #[test]
    fn lookups_and_drops() {
        let cat = Catalog::new();
        cat.create_table("a", demo_schema()).unwrap();
        cat.create_view("v", Plan::scan("a")).unwrap();
        assert!(cat.table("a").is_ok());
        assert!(cat.view("v").is_some());
        assert!(matches!(
            cat.table("missing"),
            Err(DbError::UnknownTable(_))
        ));
        assert_eq!(cat.table_names(), vec!["a"]);
        assert_eq!(cat.view_names(), vec!["v"]);
        cat.drop_view("v").unwrap();
        assert!(cat.view("v").is_none());
        cat.drop_table("a").unwrap();
        assert!(cat.table("a").is_err());
        assert!(cat.drop_table("a").is_err());
    }
}
