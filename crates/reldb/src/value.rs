use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Opaque identifier (used for DL individuals).
    Id,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Id => "ID",
        };
        write!(f, "{s}")
    }
}

/// A single value. `Null` inhabits every type.
///
/// `Datum` has a **total order** (used by `ORDER BY`, `DISTINCT`, and join
/// keys): `Null` sorts first, then values of the same type in their natural
/// order; values of different types order by type tag. Floats use IEEE
/// `total_cmp`, so `Datum` is `Eq`/`Hash` despite containing floats.
#[derive(Debug, Clone)]
pub enum Datum {
    /// Absent value.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value (cheaply clonable).
    Str(Arc<str>),
    /// Opaque identifier value.
    Id(u64),
}

impl Datum {
    /// Builds a string datum.
    pub fn str(s: impl AsRef<str>) -> Self {
        Datum::Str(Arc::from(s.as_ref()))
    }

    /// The datum's type, `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int(_) => Some(DataType::Int),
            Datum::Float(_) => Some(DataType::Float),
            Datum::Str(_) => Some(DataType::Str),
            Datum::Id(_) => Some(DataType::Id),
        }
    }

    /// True if the datum is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Boolean view (strict; `None` for non-booleans and `Null`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Id view.
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Datum::Id(i) => Some(*i),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 2,
            Datum::Float(_) => 3,
            Datum::Str(_) => 4,
            Datum::Id(_) => 5,
        }
    }

    /// SQL-style equality for predicates: comparisons with `Null` and
    /// numeric cross-type comparisons (`Int` vs `Float`) are handled;
    /// returns `None` when either side is `Null`.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Datum::Float(a), Datum::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (a, b) => Some(a.cmp(b)),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Float(a), Datum::Float(b)) => a.total_cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
            (Datum::Id(a), Datum::Id(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Datum::Null => {}
            Datum::Bool(b) => b.hash(state),
            Datum::Int(i) => i.hash(state),
            Datum::Float(f) => f.to_bits().hash(state),
            Datum::Str(s) => s.hash(state),
            Datum::Id(i) => i.hash(state),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Str(s) => write!(f, "{s}"),
            Datum::Id(i) => write!(f, "#{i}"),
        }
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Self {
        Datum::Bool(b)
    }
}
impl From<i64> for Datum {
    fn from(i: i64) -> Self {
        Datum::Int(i)
    }
}
impl From<f64> for Datum {
    fn from(x: f64) -> Self {
        Datum::Float(x)
    }
}
impl From<&str> for Datum {
    fn from(s: &str) -> Self {
        Datum::str(s)
    }
}
impl From<String> for Datum {
    fn from(s: String) -> Self {
        Datum::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_and_equality() {
        assert!(Datum::Null < Datum::Bool(false));
        assert!(Datum::Int(1) < Datum::Int(2));
        assert!(Datum::Float(1.5) < Datum::Float(2.0));
        assert_eq!(Datum::str("a"), Datum::str("a"));
        assert!(Datum::str("a") < Datum::str("b"));
        assert!(Datum::Id(1) < Datum::Id(2));
        // Cross-type ordering is by type rank, stable.
        assert!(Datum::Bool(true) < Datum::Int(0));
    }

    #[test]
    fn sql_cmp_handles_null_and_numeric_widening() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(
            Datum::Int(1).sql_cmp(&Datum::Float(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Float(0.5).sql_cmp(&Datum::Int(1)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Datum::Float(1.0));
        assert!(set.contains(&Datum::Float(1.0)));
        assert!(!set.contains(&Datum::Float(-1.0)));
        set.insert(Datum::str("x"));
        assert!(set.contains(&Datum::str("x")));
    }

    #[test]
    fn conversions_and_views() {
        assert_eq!(Datum::from(3i64).as_i64(), Some(3));
        assert_eq!(Datum::from(3i64).as_f64(), Some(3.0));
        assert_eq!(Datum::from(true).as_bool(), Some(true));
        assert_eq!(Datum::from("hi").as_str(), Some("hi"));
        assert_eq!(Datum::Id(7).as_id(), Some(7));
        assert!(Datum::Null.is_null());
        assert_eq!(Datum::Null.data_type(), None);
        assert_eq!(Datum::from(1.0).data_type(), Some(DataType::Float));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::from(1.5).to_string(), "1.5");
        assert_eq!(Datum::Id(4).to_string(), "#4");
        assert_eq!(DataType::Str.to_string(), "STRING");
    }
}
