use std::collections::HashMap;
use std::sync::Arc;

use capra_events::{Evaluator, EventExpr, Universe};

use crate::plan::{agg_type, infer_type};
use crate::{
    AggExpr, AggFun, Catalog, Column, Datum, DbError, Plan, Relation, Result, Row, ScalarExpr,
    Schema, SortKey,
};

/// Maximum view-expansion depth, guarding against view cycles created after
/// definition time (definitions themselves cannot be checked because views
/// may be created in any order).
const MAX_VIEW_DEPTH: usize = 64;

/// Materialising plan evaluator with lineage propagation.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    universe: Option<&'a Universe>,
}

impl<'a> Executor<'a> {
    /// An executor over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            universe: None,
        }
    }

    /// Supplies an event universe, enabling probabilistic aggregates.
    pub fn with_universe(mut self, universe: &'a Universe) -> Self {
        self.universe = Some(universe);
        self
    }

    /// Runs a plan to a materialised relation.
    pub fn run(&self, plan: &Plan) -> Result<Relation> {
        self.run_depth(plan, 0)
    }

    fn run_depth(&self, plan: &Plan, depth: usize) -> Result<Relation> {
        match plan {
            Plan::Scan { table, alias } => self.scan(table, alias.as_deref(), depth),
            Plan::Values { schema, rows } => Relation::new(schema.clone(), rows.clone()),
            Plan::Select { input, predicate } => {
                let input = self.run_depth(input, depth)?;
                let rows = input
                    .rows()
                    .iter()
                    .filter_map(|r| match predicate.matches(r) {
                        Ok(true) => Some(Ok(r.clone())),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Relation::trusted(input.schema().clone(), rows))
            }
            Plan::Project { input, exprs } => {
                let input = self.run_depth(input, depth)?;
                let out_schema = Arc::new(Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| Column::new(name.clone(), infer_type(e, input.schema())))
                        .collect(),
                ));
                let rows = input
                    .rows()
                    .iter()
                    .map(|r| {
                        let values = exprs
                            .iter()
                            .map(|(e, _)| e.eval(r))
                            .collect::<Result<Vec<_>>>()?;
                        Ok(Row {
                            values,
                            lineage: r.lineage.clone(),
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Relation::trusted(out_schema, rows))
            }
            Plan::Join {
                left,
                right,
                on,
                filter,
            } => self.join(left, right, on, filter.as_ref(), depth),
            Plan::Union { left, right } => {
                let l = self.run_depth(left, depth)?;
                let r = self.run_depth(right, depth)?;
                l.schema().union_compatible(r.schema())?;
                let mut rows = l.rows().to_vec();
                rows.extend(r.rows().iter().cloned());
                Ok(Relation::trusted(l.schema().clone(), rows))
            }
            Plan::Distinct { input } => {
                let input = self.run_depth(input, depth)?;
                Ok(distinct(input))
            }
            Plan::OrderBy { input, keys } => {
                let input = self.run_depth(input, depth)?;
                order_by(input, keys)
            }
            Plan::Limit { input, limit } => {
                let input = self.run_depth(input, depth)?;
                let schema = input.schema().clone();
                let mut rows = input.into_rows();
                rows.truncate(*limit);
                Ok(Relation::trusted(schema, rows))
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let input = self.run_depth(input, depth)?;
                self.aggregate(input, group_by, aggs)
            }
        }
    }

    fn scan(&self, name: &str, alias: Option<&str>, depth: usize) -> Result<Relation> {
        if depth > MAX_VIEW_DEPTH {
            return Err(DbError::Unsupported(format!(
                "view nesting deeper than {MAX_VIEW_DEPTH} (cycle?)"
            )));
        }
        if let Some(view) = self.catalog.view(name) {
            let rel = self.run_depth(&view.plan, depth + 1)?;
            let qualified = Arc::new(rel.schema().qualified(alias.unwrap_or(name)));
            return Ok(Relation::trusted(qualified, rel.into_rows()));
        }
        let table = self.catalog.table(name)?;
        let qualified = Arc::new(table.schema().qualified(alias.unwrap_or(name)));
        Ok(Relation::trusted(qualified, table.snapshot()))
    }

    fn join(
        &self,
        left: &Plan,
        right: &Plan,
        on: &[(usize, usize)],
        filter: Option<&ScalarExpr>,
        depth: usize,
    ) -> Result<Relation> {
        let l = self.run_depth(left, depth)?;
        let r = self.run_depth(right, depth)?;
        let out_schema = Arc::new(l.schema().join(r.schema()));
        let mut rows = Vec::new();
        let mut emit = |lr: &Row, rr: &Row| -> Result<()> {
            let mut values = lr.values.clone();
            values.extend(rr.values.iter().cloned());
            let row = Row {
                values,
                lineage: EventExpr::and([lr.lineage.clone(), rr.lineage.clone()]),
            };
            let keep = match filter {
                Some(f) => f.matches(&row)?,
                None => true,
            };
            if keep && !row.lineage.is_false() {
                rows.push(row);
            }
            Ok(())
        };
        if on.is_empty() {
            for lr in l.rows() {
                for rr in r.rows() {
                    emit(lr, rr)?;
                }
            }
        } else {
            // Hash join: build on the right side.
            let mut table: HashMap<Vec<Datum>, Vec<&Row>> = HashMap::new();
            for rr in r.rows() {
                let key: Vec<Datum> = on.iter().map(|&(_, ri)| rr.values[ri].clone()).collect();
                if key.iter().any(Datum::is_null) {
                    continue; // NULL never joins
                }
                table.entry(key).or_default().push(rr);
            }
            for lr in l.rows() {
                let key: Vec<Datum> = on.iter().map(|&(li, _)| lr.values[li].clone()).collect();
                if key.iter().any(Datum::is_null) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for rr in matches {
                        emit(lr, rr)?;
                    }
                }
            }
        }
        Ok(Relation::trusted(out_schema, rows))
    }

    fn aggregate(&self, input: Relation, group_by: &[usize], aggs: &[AggExpr]) -> Result<Relation> {
        let in_schema = input.schema().clone();
        let mut out_cols: Vec<Column> = group_by
            .iter()
            .map(|&i| {
                in_schema
                    .column(i)
                    .cloned()
                    .ok_or_else(|| DbError::UnknownColumn(format!("#{i}")))
            })
            .collect::<Result<Vec<_>>>()?;
        for agg in aggs {
            out_cols.push(Column::new(agg.name.clone(), agg_type(agg, &in_schema)));
        }
        let out_schema = Arc::new(Schema::new(out_cols));

        // Group rows, preserving first-seen key order for determinism.
        let mut order: Vec<Vec<Datum>> = Vec::new();
        let mut groups: HashMap<Vec<Datum>, Vec<&Row>> = HashMap::new();
        for row in input.rows() {
            let key: Vec<Datum> = group_by.iter().map(|&i| row.values[i].clone()).collect();
            match groups.entry(key.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(key);
                    e.insert(vec![row]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
            }
        }
        // A global aggregate over an empty input still produces one row.
        if group_by.is_empty() && order.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), Vec::new());
        }

        let mut evaluator = self.universe.map(Evaluator::new);
        let mut out_rows = Vec::with_capacity(order.len());
        for key in order {
            let members = &groups[&key];
            let mut values = key.clone();
            for agg in aggs {
                values.push(self.eval_agg(agg, members, &mut evaluator)?);
            }
            let lineage = EventExpr::or(members.iter().map(|r| r.lineage.clone()));
            out_rows.push(Row { values, lineage });
        }
        Ok(Relation::trusted(out_schema, out_rows))
    }

    fn eval_agg(
        &self,
        agg: &AggExpr,
        rows: &[&Row],
        evaluator: &mut Option<Evaluator<'_>>,
    ) -> Result<Datum> {
        let arg_values = |rows: &[&Row]| -> Result<Vec<Datum>> {
            let expr = agg.arg.as_ref().ok_or_else(|| {
                DbError::Unsupported(format!("{:?} requires an argument", agg.fun))
            })?;
            rows.iter()
                .map(|r| expr.eval(r))
                .filter(|d| !matches!(d, Ok(Datum::Null)))
                .collect()
        };
        match agg.fun {
            AggFun::Count => match &agg.arg {
                None => Ok(Datum::Int(rows.len() as i64)),
                Some(_) => Ok(Datum::Int(arg_values(rows)?.len() as i64)),
            },
            AggFun::ExpectedCount => {
                let ev = evaluator.as_mut().ok_or(DbError::MissingUniverse)?;
                let total: f64 = rows.iter().map(|r| ev.prob(&r.lineage)).sum();
                Ok(Datum::Float(total))
            }
            AggFun::Sum => {
                let vals = arg_values(rows)?;
                if vals.is_empty() {
                    return Ok(Datum::Null);
                }
                if vals.iter().all(|v| matches!(v, Datum::Int(_))) {
                    Ok(Datum::Int(vals.iter().filter_map(Datum::as_i64).sum()))
                } else {
                    let total: Option<f64> = vals.iter().map(Datum::as_f64).sum();
                    total
                        .map(Datum::Float)
                        .ok_or_else(|| DbError::TypeError("SUM over non-numeric values".into()))
                }
            }
            AggFun::Avg => {
                let vals = arg_values(rows)?;
                if vals.is_empty() {
                    return Ok(Datum::Null);
                }
                let total: Option<f64> = vals.iter().map(Datum::as_f64).sum();
                let total = total
                    .ok_or_else(|| DbError::TypeError("AVG over non-numeric values".into()))?;
                Ok(Datum::Float(total / vals.len() as f64))
            }
            AggFun::Min => Ok(arg_values(rows)?.into_iter().min().unwrap_or(Datum::Null)),
            AggFun::Max => Ok(arg_values(rows)?.into_iter().max().unwrap_or(Datum::Null)),
        }
    }
}

/// Duplicate elimination with lineage disjunction (probabilistic DISTINCT).
fn distinct(input: Relation) -> Relation {
    let schema = input.schema().clone();
    let mut order: Vec<Vec<Datum>> = Vec::new();
    let mut merged: HashMap<Vec<Datum>, EventExpr> = HashMap::new();
    for row in input.into_rows() {
        match merged.entry(row.values.clone()) {
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(row.values);
                e.insert(row.lineage);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let combined = EventExpr::or([e.get().clone(), row.lineage]);
                *e.get_mut() = combined;
            }
        }
    }
    let rows = order
        .into_iter()
        .map(|values| {
            let lineage = merged[&values].clone();
            Row { values, lineage }
        })
        .collect();
    Relation::trusted(schema, rows)
}

fn order_by(input: Relation, keys: &[SortKey]) -> Result<Relation> {
    let schema = input.schema().clone();
    let mut decorated: Vec<(Vec<Datum>, Row)> = input
        .into_rows()
        .into_iter()
        .map(|row| {
            let key = keys
                .iter()
                .map(|k| k.expr.eval(&row))
                .collect::<Result<Vec<_>>>()?;
            Ok((key, row))
        })
        .collect::<Result<Vec<_>>>()?;
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let ord = ka[i].cmp(&kb[i]);
            let ord = if key.desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::trusted(
        schema,
        decorated.into_iter().map(|(_, r)| r).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{certain_rows, CmpOp, DataType};

    fn setup() -> Catalog {
        let cat = Catalog::new();
        let programs = cat
            .create_table(
                "programs",
                Schema::of(&[
                    ("id", DataType::Int),
                    ("name", DataType::Str),
                    ("score", DataType::Float),
                ]),
            )
            .unwrap();
        programs
            .insert(certain_rows(vec![
                vec![1i64.into(), "Channel 5 news".into(), 0.6006.into()],
                vec![2i64.into(), "Oprah".into(), 0.071.into()],
                vec![3i64.into(), "BBC news".into(), 0.18.into()],
                vec![4i64.into(), "MPFC".into(), 0.02.into()],
            ]))
            .unwrap();
        let genres = cat
            .create_table(
                "genres",
                Schema::of(&[("program_id", DataType::Int), ("genre", DataType::Str)]),
            )
            .unwrap();
        genres
            .insert(certain_rows(vec![
                vec![1i64.into(), "news".into()],
                vec![2i64.into(), "human-interest".into()],
                vec![3i64.into(), "news".into()],
            ]))
            .unwrap();
        cat
    }

    #[test]
    fn scan_select_project_order_limit() {
        let cat = setup();
        let ex = Executor::new(&cat);
        // The paper's introduction query:
        // SELECT name, score FROM programs WHERE score > 0.5 ORDER BY score DESC
        let plan = Plan::scan("programs")
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(2),
                ScalarExpr::lit(0.5),
            ))
            .project(vec![
                (ScalarExpr::col(1), "name".into()),
                (ScalarExpr::col(2), "score".into()),
            ])
            .order_by(vec![SortKey {
                expr: ScalarExpr::col(1),
                desc: true,
            }])
            .limit(10);
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values[0], Datum::str("Channel 5 news"));
    }

    #[test]
    fn hash_join_matches_pairs() {
        let cat = setup();
        let ex = Executor::new(&cat);
        let plan = Plan::Join {
            left: Box::new(Plan::scan("programs")),
            right: Box::new(Plan::scan("genres")),
            on: vec![(0, 0)],
            filter: None,
        };
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 3);
        // Qualified resolution works on the join output.
        let idx = out.schema().resolve("genres.genre").unwrap();
        assert!(out
            .rows()
            .iter()
            .any(|r| r.values[idx] == Datum::str("news")));
    }

    #[test]
    fn cross_join_with_filter() {
        let cat = setup();
        let ex = Executor::new(&cat);
        let plan = Plan::Join {
            left: Box::new(Plan::scan("programs")),
            right: Box::new(Plan::scan("genres")),
            on: vec![],
            filter: Some(ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(3))),
        };
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 3, "filtered cross product = equijoin");
    }

    #[test]
    fn union_and_distinct_merge_lineage() {
        let mut u = Universe::new();
        let v1 = u.add_bool("v1", 0.5).unwrap();
        let v2 = u.add_bool("v2", 0.5).unwrap();
        let cat = Catalog::new();
        let schema = Schema::of(&[("x", DataType::Int)]);
        let t = cat.create_table("t", schema.clone()).unwrap();
        t.insert(vec![
            Row::uncertain(vec![1i64.into()], u.bool_event(v1).unwrap()),
            Row::uncertain(vec![1i64.into()], u.bool_event(v2).unwrap()),
            Row::certain(vec![2i64.into()]),
        ])
        .unwrap();
        let ex = Executor::new(&cat);
        let plan = Plan::scan("t").distinct();
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 2);
        let one = out
            .rows()
            .iter()
            .find(|r| r.values[0] == Datum::Int(1))
            .unwrap();
        // Lineage of the merged duplicate: v1 ∨ v2 → P = 0.75.
        let mut ev = Evaluator::new(&u);
        assert!((ev.prob(&one.lineage) - 0.75).abs() < 1e-12);

        let union = Plan::Union {
            left: Box::new(Plan::scan("t")),
            right: Box::new(Plan::scan("t")),
        };
        assert_eq!(
            ex.run(&union).unwrap().len(),
            6,
            "bag union keeps duplicates"
        );
    }

    #[test]
    fn join_lineage_is_conjunction() {
        let mut u = Universe::new();
        let va = u.add_bool("a", 0.5).unwrap();
        let vb = u.add_bool("b", 0.4).unwrap();
        let cat = Catalog::new();
        let ta = cat
            .create_table("ta", Schema::of(&[("k", DataType::Int)]))
            .unwrap();
        let tb = cat
            .create_table("tb", Schema::of(&[("k", DataType::Int)]))
            .unwrap();
        ta.insert(vec![Row::uncertain(
            vec![1i64.into()],
            u.bool_event(va).unwrap(),
        )])
        .unwrap();
        tb.insert(vec![Row::uncertain(
            vec![1i64.into()],
            u.bool_event(vb).unwrap(),
        )])
        .unwrap();
        let ex = Executor::new(&cat);
        let plan = Plan::Join {
            left: Box::new(Plan::scan("ta")),
            right: Box::new(Plan::scan("tb")),
            on: vec![(0, 0)],
            filter: None,
        };
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 1);
        let mut ev = Evaluator::new(&u);
        assert!((ev.prob(&out.rows()[0].lineage) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn aggregates_with_groups() {
        let cat = setup();
        let ex = Executor::new(&cat);
        let plan = Plan::Aggregate {
            input: Box::new(Plan::scan("genres")),
            group_by: vec![1],
            aggs: vec![AggExpr {
                fun: AggFun::Count,
                arg: None,
                name: "n".into(),
            }],
        };
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 2);
        let news = out
            .rows()
            .iter()
            .find(|r| r.values[0] == Datum::str("news"))
            .unwrap();
        assert_eq!(news.values[1], Datum::Int(2));
    }

    #[test]
    fn global_aggregates() {
        let cat = setup();
        let ex = Executor::new(&cat);
        let plan = Plan::Aggregate {
            input: Box::new(Plan::scan("programs")),
            group_by: vec![],
            aggs: vec![
                AggExpr {
                    fun: AggFun::Count,
                    arg: None,
                    name: "n".into(),
                },
                AggExpr {
                    fun: AggFun::Avg,
                    arg: Some(ScalarExpr::col(2)),
                    name: "avg_score".into(),
                },
                AggExpr {
                    fun: AggFun::Min,
                    arg: Some(ScalarExpr::col(2)),
                    name: "min_score".into(),
                },
                AggExpr {
                    fun: AggFun::Max,
                    arg: Some(ScalarExpr::col(2)),
                    name: "max_score".into(),
                },
                AggExpr {
                    fun: AggFun::Sum,
                    arg: Some(ScalarExpr::col(0)),
                    name: "sum_id".into(),
                },
            ],
        };
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 1);
        let r = &out.rows()[0].values;
        assert_eq!(r[0], Datum::Int(4));
        let avg = (0.6006 + 0.071 + 0.18 + 0.02) / 4.0;
        assert!((r[1].as_f64().unwrap() - avg).abs() < 1e-12);
        assert_eq!(r[2], Datum::Float(0.02));
        assert_eq!(r[3], Datum::Float(0.6006));
        assert_eq!(r[4], Datum::Int(10));
    }

    #[test]
    fn expected_count_needs_universe() {
        let mut u = Universe::new();
        let v = u.add_bool("v", 0.25).unwrap();
        let cat = Catalog::new();
        let t = cat
            .create_table("t", Schema::of(&[("x", DataType::Int)]))
            .unwrap();
        t.insert(vec![
            Row::certain(vec![1i64.into()]),
            Row::uncertain(vec![2i64.into()], u.bool_event(v).unwrap()),
        ])
        .unwrap();
        let plan = Plan::Aggregate {
            input: Box::new(Plan::scan("t")),
            group_by: vec![],
            aggs: vec![AggExpr {
                fun: AggFun::ExpectedCount,
                arg: None,
                name: "en".into(),
            }],
        };
        let no_universe = Executor::new(&cat).run(&plan);
        assert!(matches!(no_universe, Err(DbError::MissingUniverse)));
        let out = Executor::new(&cat).with_universe(&u).run(&plan).unwrap();
        assert_eq!(out.rows()[0].values[0], Datum::Float(1.25));
    }

    #[test]
    fn views_expand_and_detect_cycles() {
        let cat = setup();
        cat.create_view(
            "good_programs",
            Plan::scan("programs").select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(2),
                ScalarExpr::lit(0.1),
            )),
        )
        .unwrap();
        let ex = Executor::new(&cat);
        let out = ex.run(&Plan::scan("good_programs")).unwrap();
        assert_eq!(out.len(), 2);
        // Column names re-qualified under the view name.
        assert!(out.schema().resolve("good_programs.name").is_ok());

        // Cyclic views: a → b → a.
        cat.create_view("a", Plan::scan("b")).unwrap();
        cat.create_view("b", Plan::scan("a")).unwrap();
        let err = ex.run(&Plan::scan("a"));
        assert!(matches!(err, Err(DbError::Unsupported(_))));
    }

    #[test]
    fn order_by_is_stable_and_directional() {
        let cat = Catalog::new();
        let t = cat
            .create_table(
                "t",
                Schema::of(&[("k", DataType::Int), ("tag", DataType::Str)]),
            )
            .unwrap();
        t.insert(certain_rows(vec![
            vec![1i64.into(), "a".into()],
            vec![2i64.into(), "b".into()],
            vec![1i64.into(), "c".into()],
        ]))
        .unwrap();
        let ex = Executor::new(&cat);
        let plan = Plan::scan("t").order_by(vec![SortKey {
            expr: ScalarExpr::col(0),
            desc: false,
        }]);
        let out = ex.run(&plan).unwrap();
        let tags: Vec<_> = out
            .rows()
            .iter()
            .map(|r| r.values[1].as_str().unwrap().to_string())
            .collect();
        assert_eq!(tags, vec!["a", "c", "b"], "stable: a before c");
        let desc = Plan::scan("t").order_by(vec![SortKey {
            expr: ScalarExpr::col(0),
            desc: true,
        }]);
        let out = ex.run(&desc).unwrap();
        assert_eq!(out.rows()[0].values[0], Datum::Int(2));
    }

    #[test]
    fn empty_aggregate_produces_single_row() {
        let cat = Catalog::new();
        cat.create_table("e", Schema::of(&[("x", DataType::Int)]))
            .unwrap();
        let ex = Executor::new(&cat);
        let plan = Plan::Aggregate {
            input: Box::new(Plan::scan("e")),
            group_by: vec![],
            aggs: vec![
                AggExpr {
                    fun: AggFun::Count,
                    arg: None,
                    name: "n".into(),
                },
                AggExpr {
                    fun: AggFun::Sum,
                    arg: Some(ScalarExpr::col(0)),
                    name: "s".into(),
                },
            ],
        };
        let out = ex.run(&plan).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values[0], Datum::Int(0));
        assert_eq!(out.rows()[0].values[1], Datum::Null);
    }
}
