use std::fmt;
use std::sync::Arc;

use crate::{DataType, DbError, Result};

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, possibly qualified (`alias.name`).
    pub name: String,
    /// Column type. `Null` values are admitted in every column.
    pub dtype: DataType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }

    /// The unqualified part of the column name.
    pub fn base_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// An ordered list of columns.
///
/// Name resolution ([`Schema::resolve`]) first tries an exact match, then an
/// unambiguous match on the unqualified name — so `name` finds
/// `programs.name` after a join, but resolving `id` fails with
/// [`DbError::AmbiguousColumn`] if two inputs both expose an `id`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Arc<Self> {
        Arc::new(Self::new(
            cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        ))
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column at an index.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Resolves a column name to its index (exact, then unqualified).
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.base_name() == name)
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(DbError::UnknownColumn(name.to_string())),
            _ => Err(DbError::AmbiguousColumn(name.to_string())),
        }
    }

    /// A new schema with every column name prefixed by `alias.` (stripping
    /// any previous qualifier), as done when scanning `table AS alias`.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Column::new(format!("{alias}.{}", c.base_name()), c.dtype))
                .collect(),
        )
    }

    /// Concatenation of two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }

    /// Checks union compatibility: same arity and column types.
    pub fn union_compatible(&self, other: &Schema) -> Result<()> {
        if self.len() != other.len()
            || self
                .columns
                .iter()
                .zip(other.columns())
                .any(|(a, b)| a.dtype != b.dtype)
        {
            return Err(DbError::SchemaMismatch {
                left: self.to_string(),
                right: other.to_string(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("p.id", DataType::Id),
            Column::new("p.name", DataType::Str),
            Column::new("g.id", DataType::Id),
        ])
    }

    #[test]
    fn resolve_exact_then_suffix() {
        let s = schema();
        assert_eq!(s.resolve("p.name").unwrap(), 1);
        assert_eq!(s.resolve("name").unwrap(), 1);
        assert!(matches!(s.resolve("id"), Err(DbError::AmbiguousColumn(_))));
        assert!(matches!(
            s.resolve("missing"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn qualification_strips_old_prefix() {
        let s = schema().qualified("x");
        assert_eq!(s.columns()[0].name, "x.id");
        assert_eq!(s.columns()[1].name, "x.name");
        assert_eq!(s.resolve("x.name").unwrap(), 1);
    }

    #[test]
    fn join_concatenates() {
        let a = Schema::of(&[("a", DataType::Int)]);
        let b = Schema::of(&[("b", DataType::Str)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.resolve("b").unwrap(), 1);
    }

    #[test]
    fn union_compatibility() {
        let a = Schema::of(&[("x", DataType::Int), ("y", DataType::Str)]);
        let b = Schema::of(&[("u", DataType::Int), ("v", DataType::Str)]);
        let c = Schema::of(&[("x", DataType::Int)]);
        assert!(a.union_compatible(&b).is_ok());
        assert!(a.union_compatible(&c).is_err());
    }

    #[test]
    fn display_lists_columns() {
        let s = Schema::of(&[("x", DataType::Int)]);
        assert_eq!(s.to_string(), "(x INT)");
    }
}
