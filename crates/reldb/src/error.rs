use std::fmt;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Referenced table (or view) does not exist.
    UnknownTable(String),
    /// A table or view with this name already exists.
    DuplicateTable(String),
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// An unqualified column name matched several columns.
    AmbiguousColumn(String),
    /// Row arity or column types do not match the schema.
    SchemaMismatch {
        /// Left/expected schema (display form).
        left: String,
        /// Right/actual schema (display form).
        right: String,
    },
    /// A scalar expression was applied to a value of the wrong type.
    TypeError(String),
    /// Division by zero in a scalar expression.
    DivisionByZero,
    /// SQL syntax error.
    SqlParse {
        /// Byte offset in the SQL text.
        at: usize,
        /// Description of the problem.
        message: String,
    },
    /// A feature the engine does not support was requested.
    Unsupported(String),
    /// An aggregate needed a universe (e.g. expected counts) but the
    /// executor was not given one.
    MissingUniverse,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table or view `{t}`"),
            DbError::DuplicateTable(t) => write!(f, "table or view `{t}` already exists"),
            DbError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            DbError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left} vs {right}")
            }
            DbError::TypeError(msg) => write!(f, "type error: {msg}"),
            DbError::DivisionByZero => write!(f, "division by zero"),
            DbError::SqlParse { at, message } => {
                write!(f, "SQL syntax error at byte {at}: {message}")
            }
            DbError::Unsupported(what) => write!(f, "unsupported: {what}"),
            DbError::MissingUniverse => {
                write!(
                    f,
                    "this query needs an event universe (Executor::with_universe)"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_subject() {
        assert!(DbError::UnknownTable("programs".into())
            .to_string()
            .contains("programs"));
        assert!(DbError::SqlParse {
            at: 12,
            message: "expected FROM".into()
        }
        .to_string()
        .contains("byte 12"));
        assert!(DbError::AmbiguousColumn("id".into())
            .to_string()
            .contains("id"));
    }
}
