//! `EXPLAIN`-style plan rendering.
//!
//! The scaling experiment's headline quantity is how large the naive
//! engine's view plans get; this module renders any [`Plan`] as an indented
//! operator tree (one line per operator, children indented), which the
//! benchmarks and examples use to show *why* the naive approach explodes.

use std::fmt::Write as _;

use crate::{AggFun, Plan};

/// Renders a plan as an indented operator tree.
pub fn explain_plan(plan: &Plan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &Plan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match plan {
        Plan::Scan { table, alias } => {
            let _ = match alias {
                Some(a) => writeln!(out, "{pad}Scan {table} AS {a}"),
                None => writeln!(out, "{pad}Scan {table}"),
            };
        }
        Plan::Values { schema, rows } => {
            let _ = writeln!(out, "{pad}Values {} row(s) {}", rows.len(), schema);
        }
        Plan::Select { input, predicate } => {
            let _ = writeln!(out, "{pad}Select {predicate}");
            render(input, depth + 1, out);
        }
        Plan::Project { input, exprs } => {
            let cols: Vec<String> = exprs
                .iter()
                .map(|(e, name)| format!("{e} AS {name}"))
                .collect();
            let _ = writeln!(out, "{pad}Project {}", cols.join(", "));
            render(input, depth + 1, out);
        }
        Plan::Join {
            left,
            right,
            on,
            filter,
        } => {
            let on_str: Vec<String> = on.iter().map(|(l, r)| format!("#{l}=#{r}")).collect();
            let _ = match (on.is_empty(), filter) {
                (true, None) => writeln!(out, "{pad}CrossJoin"),
                (true, Some(f)) => writeln!(out, "{pad}NestedLoopJoin ON {f}"),
                (false, None) => writeln!(out, "{pad}HashJoin ON {}", on_str.join(" AND ")),
                (false, Some(f)) => {
                    writeln!(out, "{pad}HashJoin ON {} FILTER {f}", on_str.join(" AND "))
                }
            };
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::Union { left, right } => {
            let _ = writeln!(out, "{pad}UnionAll");
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct (lineage ∨)");
            render(input, depth + 1, out);
        }
        Plan::OrderBy { input, keys } => {
            let keys: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.expr, if k.desc { " DESC" } else { "" }))
                .collect();
            let _ = writeln!(out, "{pad}OrderBy {}", keys.join(", "));
            render(input, depth + 1, out);
        }
        Plan::Limit { input, limit } => {
            let _ = writeln!(out, "{pad}Limit {limit}");
            render(input, depth + 1, out);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let groups: Vec<String> = group_by.iter().map(|i| format!("#{i}")).collect();
            let fs: Vec<String> = aggs
                .iter()
                .map(|a| {
                    let name = match a.fun {
                        AggFun::Count => "COUNT",
                        AggFun::Sum => "SUM",
                        AggFun::Min => "MIN",
                        AggFun::Max => "MAX",
                        AggFun::Avg => "AVG",
                        AggFun::ExpectedCount => "ECOUNT",
                    };
                    match &a.arg {
                        Some(e) => format!("{name}({e}) AS {}", a.name),
                        None => format!("{name}(*) AS {}", a.name),
                    }
                })
                .collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate GROUP BY [{}] {}",
                groups.join(", "),
                fs.join(", ")
            );
            render(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, ScalarExpr, SortKey};

    #[test]
    fn renders_the_paper_query_plan() {
        let plan = Plan::scan("programs")
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(2),
                ScalarExpr::lit(0.5),
            ))
            .project(vec![
                (ScalarExpr::col(1), "name".into()),
                (ScalarExpr::col(2), "preferencescore".into()),
            ])
            .order_by(vec![SortKey {
                expr: ScalarExpr::col(1),
                desc: true,
            }])
            .limit(10);
        let text = explain_plan(&plan);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("Limit 10"));
        assert!(lines[1].contains("OrderBy #1 DESC"), "{text}");
        assert!(lines[2].contains("Project"), "{text}");
        assert!(lines[3].contains("Select (#2 > 0.5)"), "{text}");
        assert!(lines[4].trim_start().starts_with("Scan programs"), "{text}");
        // Indentation grows with depth.
        assert!(lines[4].starts_with("        "), "{text}");
    }

    #[test]
    fn renders_joins_unions_and_aggregates() {
        let join = Plan::Join {
            left: Box::new(Plan::scan_as("a", "x")),
            right: Box::new(Plan::scan("b")),
            on: vec![(0, 0)],
            filter: Some(ScalarExpr::lit(true)),
        };
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Union {
                left: Box::new(join),
                right: Box::new(Plan::scan("c").distinct()),
            }),
            group_by: vec![0],
            aggs: vec![crate::AggExpr {
                fun: AggFun::ExpectedCount,
                arg: None,
                name: "en".into(),
            }],
        };
        let text = explain_plan(&plan);
        assert!(text.contains("HashJoin ON #0=#0 FILTER true"), "{text}");
        assert!(text.contains("Scan a AS x"), "{text}");
        assert!(text.contains("UnionAll"), "{text}");
        assert!(text.contains("Distinct (lineage ∨)"), "{text}");
        assert!(text.contains("ECOUNT(*) AS en"), "{text}");
    }

    #[test]
    fn cross_and_nested_loop_joins_are_distinguished() {
        let cross = Plan::Join {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: vec![],
            filter: None,
        };
        assert!(explain_plan(&cross).contains("CrossJoin"));
        let nl = Plan::Join {
            left: Box::new(Plan::scan("a")),
            right: Box::new(Plan::scan("b")),
            on: vec![],
            filter: Some(ScalarExpr::lit(true)),
        };
        assert!(explain_plan(&nl).contains("NestedLoopJoin"));
    }
}
