//! Property tests for the relational engine: the lineage algebra must match
//! possible-world semantics, and operators must satisfy classical laws.

use capra_events::worlds::Worlds;
use capra_events::{EventExpr, Universe};
use capra_reldb::{
    Catalog, CmpOp, DataType, Datum, Executor, Plan, Relation, Row, ScalarExpr, Schema,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const TOL: f64 = 1e-9;

/// Builds a catalog with two small uncertain tables over one universe.
fn build_tables(left_rows: &[(i64, u8)], right_rows: &[(i64, u8)]) -> (Catalog, Universe) {
    let catalog = Catalog::new();
    let mut u = Universe::new();
    let schema = Schema::of(&[("k", DataType::Int)]);
    for (name, rows) in [("l", left_rows), ("r", right_rows)] {
        let t = catalog.create_table(name, schema.clone()).unwrap();
        t.insert(
            rows.iter()
                .enumerate()
                .map(|(i, &(k, p))| {
                    let var = u
                        .add_bool(&format!("{name}{i}"), f64::from(p) / 255.0)
                        .unwrap();
                    Row::uncertain(vec![Datum::Int(k)], u.bool_event(var).unwrap())
                })
                .collect(),
        )
        .unwrap();
    }
    (catalog, u)
}

/// Expected multiset of key → presence-probability via world enumeration:
/// for each world, evaluate the relational expression over the *certain*
/// sub-instance and count resulting tuples.
fn world_semantics<F>(u: &Universe, relation: &Relation, query: F) -> BTreeMap<Vec<Datum>, f64>
where
    F: Fn(&[Row]) -> Vec<Vec<Datum>>,
{
    let exprs: Vec<EventExpr> = relation.rows().iter().map(|r| r.lineage.clone()).collect();
    let mut out: BTreeMap<Vec<Datum>, f64> = BTreeMap::new();
    for (world, p) in Worlds::of_exprs(u, exprs.iter()) {
        let present: Vec<Row> = relation
            .rows()
            .iter()
            .filter(|r| world.eval(&r.lineage).unwrap_or(false))
            .cloned()
            .collect();
        for tuple in query(&present) {
            *out.entry(tuple).or_default() += p;
        }
    }
    out
}

/// Per-tuple presence probability of a (deduplicated) result relation.
fn lineage_probabilities(u: &Universe, rel: &Relation) -> BTreeMap<Vec<Datum>, f64> {
    let mut ev = capra_events::Evaluator::new(u);
    rel.rows()
        .iter()
        .map(|r| (r.values.clone(), ev.prob(&r.lineage)))
        .collect()
}

prop_compose! {
    fn tables()(
        left in prop::collection::vec((0i64..4, any::<u8>()), 1..5),
        right in prop::collection::vec((0i64..4, any::<u8>()), 1..5),
    ) -> (Vec<(i64, u8)>, Vec<(i64, u8)>) {
        (left, right)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DISTINCT's lineage disjunction equals the world-enumeration
    /// probability that the key appears at all.
    #[test]
    fn distinct_matches_possible_worlds((left, right) in tables()) {
        let (catalog, u) = build_tables(&left, &right);
        let ex = Executor::new(&catalog);
        let scan = ex.run(&Plan::scan("l")).unwrap();
        let distinct = ex.run(&Plan::scan("l").distinct()).unwrap();
        let via_lineage = lineage_probabilities(&u, &distinct);
        let via_worlds = world_semantics(&u, &scan, |rows| {
            let mut keys: Vec<Vec<Datum>> =
                rows.iter().map(|r| r.values.clone()).collect();
            keys.sort();
            keys.dedup();
            keys
        });
        prop_assert_eq!(via_lineage.len(), via_worlds.len());
        for (key, p) in &via_lineage {
            prop_assert!((p - via_worlds[key]).abs() < TOL,
                "key {:?}: {} vs {}", key, p, via_worlds[key]);
        }
    }

    /// Join lineage (conjunction) matches the expected probability of the
    /// joined pair existing, assuming the join of independent rows.
    #[test]
    fn join_matches_possible_worlds((left, right) in tables()) {
        let (catalog, u) = build_tables(&left, &right);
        let ex = Executor::new(&catalog);
        let join = Plan::Join {
            left: Box::new(Plan::scan("l")),
            right: Box::new(Plan::scan("r")),
            on: vec![(0, 0)],
            filter: None,
        };
        let out = ex.run(&join).unwrap();
        let mut ev = capra_events::Evaluator::new(&u);
        // Every output row's probability = P(left row) · P(right row)
        // because distinct base rows have independent lineage variables.
        let l = ex.run(&Plan::scan("l")).unwrap();
        let r = ex.run(&Plan::scan("r")).unwrap();
        let mut expected_total = 0.0;
        for lr in l.rows() {
            for rr in r.rows() {
                if lr.values[0] == rr.values[0] {
                    expected_total += ev.prob(&lr.lineage) * ev.prob(&rr.lineage);
                }
            }
        }
        let actual_total: f64 = out
            .rows()
            .iter()
            .map(|row| ev.prob(&row.lineage))
            .sum();
        prop_assert!((expected_total - actual_total).abs() < TOL);
    }

    /// Selection commutes with itself and is idempotent.
    #[test]
    fn selection_laws((left, _right) in tables(), threshold in 0i64..4) {
        let (catalog, _u) = build_tables(&left, &[(0, 128)]);
        let ex = Executor::new(&catalog);
        let p1 = ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(0), ScalarExpr::lit(threshold));
        let p2 = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(3i64));
        let a = ex.run(&Plan::scan("l").select(p1.clone()).select(p2.clone())).unwrap();
        let b = ex.run(&Plan::scan("l").select(p2.clone()).select(p1.clone())).unwrap();
        prop_assert_eq!(a.rows().len(), b.rows().len());
        let idem = ex.run(&Plan::scan("l").select(p1.clone()).select(p1.clone())).unwrap();
        let once = ex.run(&Plan::scan("l").select(p1)).unwrap();
        prop_assert_eq!(idem.rows().len(), once.rows().len());
    }

    /// Union is a bag union: cardinalities add; distinct-after-union equals
    /// the set union with OR-ed lineage.
    #[test]
    fn union_laws((left, right) in tables()) {
        let (catalog, u) = build_tables(&left, &right);
        let ex = Executor::new(&catalog);
        let union = Plan::Union {
            left: Box::new(Plan::scan("l")),
            right: Box::new(Plan::scan("r")),
        };
        let bag = ex.run(&union.clone()).unwrap();
        prop_assert_eq!(bag.rows().len(), left.len() + right.len());
        let set = ex.run(&union.distinct()).unwrap();
        // Deduplicated: every surviving row's probability ≤ 1 and matches
        // world enumeration over both tables.
        let probs = lineage_probabilities(&u, &set);
        for p in probs.values() {
            prop_assert!((0.0..=1.0 + TOL).contains(p));
        }
    }

    /// ORDER BY then LIMIT returns a sorted prefix.
    #[test]
    fn order_limit_prefix((left, _right) in tables(), n in 0usize..6) {
        let (catalog, _u) = build_tables(&left, &[(0, 1)]);
        let ex = Executor::new(&catalog);
        let sorted = ex
            .run(&Plan::scan("l").order_by(vec![capra_reldb::SortKey {
                expr: ScalarExpr::col(0),
                desc: false,
            }]))
            .unwrap();
        let limited = ex
            .run(&Plan::scan("l")
                .order_by(vec![capra_reldb::SortKey {
                    expr: ScalarExpr::col(0),
                    desc: false,
                }])
                .limit(n))
            .unwrap();
        prop_assert_eq!(limited.rows().len(), n.min(left.len()));
        for (a, b) in limited.rows().iter().zip(sorted.rows()) {
            prop_assert_eq!(&a.values, &b.values);
        }
        let keys: Vec<&Datum> = sorted.rows().iter().map(|r| &r.values[0]).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
