//! Property-based tests for the event-expression substrate.
//!
//! Strategy: generate small random universes (boolean + choice variables)
//! and random expressions over them, then check the exact evaluator against
//! algebraic laws and against brute-force possible-world enumeration.

use capra_events::worlds::brute_force_prob;
use capra_events::{
    brute_force_expectation, expectation, Evaluator, EventExpr, Factor, Universe, VarId,
};
use proptest::prelude::*;

const TOL: f64 = 1e-9;

/// A reproducible random universe of `n_bool` boolean variables and
/// `n_choice` three-way choice variables, with probabilities derived from
/// the given byte seeds.
fn build_universe(bool_ps: &[u8], choice_ps: &[(u8, u8)]) -> (Universe, Vec<VarId>) {
    let mut u = Universe::new();
    let mut vars = Vec::new();
    for (i, &b) in bool_ps.iter().enumerate() {
        let p = f64::from(b) / 255.0;
        vars.push(u.add_bool(&format!("b{i}"), p).unwrap());
    }
    for (i, &(x, y)) in choice_ps.iter().enumerate() {
        // Two alternatives scaled to sum below 1; residual takes the rest.
        let p0 = f64::from(x) / 512.0;
        let p1 = f64::from(y) / 512.0;
        vars.push(u.add_choice(&format!("c{i}"), &[p0, p1]).unwrap());
    }
    (u, vars)
}

/// Recursively build an expression from a shape script. Each step consumes
/// entries from `ops`; depth is bounded by construction of the vec length.
/// `n_bool` is the number of leading boolean variables in `vars` (which only
/// have alternative 0); the remaining choice variables have two.
fn build_expr(
    vars: &[VarId],
    n_bool: usize,
    alts: &[u16],
    ops: &[u8],
    pos: &mut usize,
    depth: u32,
) -> EventExpr {
    let atom_for = |idx: usize, alt_seed: u16| {
        let vi = idx % vars.len();
        let alt = if vi < n_bool { 0 } else { alt_seed % 2 };
        EventExpr::atom(vars[vi], alt)
    };
    if *pos >= ops.len() || depth > 3 {
        let a = atom_for(*pos, alts[*pos % alts.len()]);
        *pos += 1;
        return a;
    }
    let op = ops[*pos];
    *pos += 1;
    match op % 4 {
        0 => atom_for(op as usize, u16::from(op) >> 2),
        1 => EventExpr::not(build_expr(vars, n_bool, alts, ops, pos, depth + 1)),
        2 => EventExpr::and([
            build_expr(vars, n_bool, alts, ops, pos, depth + 1),
            build_expr(vars, n_bool, alts, ops, pos, depth + 1),
        ]),
        _ => EventExpr::or([
            build_expr(vars, n_bool, alts, ops, pos, depth + 1),
            build_expr(vars, n_bool, alts, ops, pos, depth + 1),
        ]),
    }
}

prop_compose! {
    fn scenario()(
        bool_ps in prop::collection::vec(any::<u8>(), 1..4),
        choice_ps in prop::collection::vec((any::<u8>(), any::<u8>()), 0..3),
        ops in prop::collection::vec(any::<u8>(), 1..24),
        alts in prop::collection::vec(any::<u16>(), 1..8),
    ) -> (Universe, EventExpr) {
        let (u, vars) = build_universe(&bool_ps, &choice_ps);
        let mut pos = 0;
        let e = build_expr(&vars, bool_ps.len(), &alts, &ops, &mut pos, 0);
        (u, e)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prob_in_unit_interval((u, e) in scenario()) {
        let mut ev = Evaluator::new(&u);
        let p = ev.prob(&e);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn complement_law((u, e) in scenario()) {
        let mut ev = Evaluator::new(&u);
        let p = ev.prob(&e);
        let np = ev.prob(&EventExpr::not(e));
        prop_assert!((p + np - 1.0).abs() < TOL);
    }

    #[test]
    fn idempotence((u, e) in scenario()) {
        let mut ev = Evaluator::new(&u);
        let p = ev.prob(&e);
        prop_assert!((ev.prob(&EventExpr::and([e.clone(), e.clone()])) - p).abs() < TOL);
        prop_assert!((ev.prob(&EventExpr::or([e.clone(), e])) - p).abs() < TOL);
    }

    #[test]
    fn inclusion_exclusion((ua, a) in scenario(), (_ub, _b) in scenario()) {
        // Use two expressions over the SAME universe for a meaningful law;
        // regenerate b over ua's variables by reusing a's complement shape.
        let b = EventExpr::not(a.clone());
        let mut ev = Evaluator::new(&ua);
        let pa = ev.prob(&a);
        let pb = ev.prob(&b);
        let pab = ev.prob(&EventExpr::and([a.clone(), b.clone()]));
        let pa_or_b = ev.prob(&EventExpr::or([a, b]));
        prop_assert!((pa_or_b - (pa + pb - pab)).abs() < TOL);
    }

    #[test]
    fn evaluator_matches_brute_force((u, e) in scenario()) {
        let mut ev = Evaluator::new(&u);
        let exact = ev.prob(&e);
        let brute = brute_force_prob(&u, &e);
        prop_assert!((exact - brute).abs() < TOL, "{exact} vs {brute} for {e}");
    }

    #[test]
    fn interned_evaluator_matches_brute_force_tightly((u, e) in scenario()) {
        // The hash-consing refactor must not move any probability by more
        // than float-noise: 1e-12 against the possible-world oracle.
        let mut ev = Evaluator::new(&u);
        let exact = ev.prob(&e);
        let brute = brute_force_prob(&u, &e);
        prop_assert!((exact - brute).abs() < 1e-12, "{exact} vs {brute} for {e}");
    }

    #[test]
    fn interning_is_stable_under_reconstruction((u, e) in scenario()) {
        // Rebuilding an expression from its structure yields the *same*
        // interned nodes: equal value, equal node id, equal probability.
        let rebuilt = capra_events::parse_event(&e.display(&u).to_string(), &u)
            .expect("display/parse round-trip");
        prop_assert_eq!(&rebuilt, &e);
        prop_assert_eq!(rebuilt.node_id(), e.node_id());
        prop_assert_eq!(rebuilt.cache_key(), e.cache_key());
        let mut ev = Evaluator::new(&u);
        let p1 = ev.prob(&e);
        let p2 = ev.prob(&rebuilt);
        prop_assert!((p1 - p2).abs() == 0.0, "identical nodes must evaluate identically");
    }

    #[test]
    fn support_cache_matches_fresh_walk((u, e) in scenario()) {
        let _ = &u;
        // The per-node support cached at construction must equal a manual
        // recollection over the tree.
        fn walk(e: &EventExpr, out: &mut std::collections::BTreeSet<capra_events::VarId>) {
            match e {
                EventExpr::True | EventExpr::False => {}
                EventExpr::Atom(a) => { out.insert(a.var); }
                EventExpr::Not(inner) => walk(inner, out),
                EventExpr::And(kids) | EventExpr::Or(kids) => {
                    for k in kids.iter() { walk(k, out); }
                }
            }
        }
        let mut fresh = std::collections::BTreeSet::new();
        walk(&e, &mut fresh);
        prop_assert_eq!(e.support(), fresh);
    }

    #[test]
    fn ablations_agree((u, e) in scenario()) {
        let mut base = Evaluator::new(&u);
        let expected = base.prob(&e);
        for (memo, comp) in [(false, false), (true, false), (false, true)] {
            let mut ev = Evaluator::with_options(&u, memo, comp);
            prop_assert!((ev.prob(&e) - expected).abs() < TOL);
        }
    }

    #[test]
    fn expectation_matches_brute_force(
        (u, e1) in scenario(),
        w_hi in 0.0f64..1.0,
        w_lo in 0.0f64..1.0,
    ) {
        // Paper-shaped factors: σ when e holds, 1−σ otherwise, plus a second
        // factor correlated through the same expression's complement.
        let f1 = Factor::new([(e1.clone(), w_hi), (EventExpr::not(e1.clone()), 1.0 - w_hi)]);
        let f2 = Factor::new([
            (EventExpr::not(e1.clone()), w_lo),
            (e1.clone(), 1.0 - w_lo),
        ]);
        let exact = expectation(&u, &[f1.clone(), f2.clone()]);
        let brute = brute_force_expectation(&u, &[f1, f2]);
        prop_assert!((exact - brute).abs() < TOL, "{exact} vs {brute}");
    }

    #[test]
    fn expectation_of_indicator_is_probability((u, e) in scenario()) {
        let mut ev = Evaluator::new(&u);
        let p = ev.prob(&e);
        let via_expect = expectation(&u, &[Factor::indicator(e)]);
        prop_assert!((p - via_expect).abs() < TOL);
    }

    #[test]
    fn restriction_partitions_probability((u, e) in scenario()) {
        // P(e) = Σ_o P(var=o) · P(e | var=o) for any variable in support.
        let support = e.support();
        if let Some(&var) = support.iter().next() {
            let mut ev = Evaluator::new(&u);
            let direct = ev.prob(&e);
            let n = u.num_outcomes(var).unwrap();
            let mut total = 0.0;
            for o in 0..n {
                total += u.outcome_prob(var, o).unwrap() * ev.prob(&e.restrict(var, o));
            }
            prop_assert!((direct - total).abs() < TOL);
        }
    }
}
