//! # capra-events — probabilistic event expressions
//!
//! This crate is the uncertainty substrate of CAPRA, the reproduction of
//! *"Ranking Query Results using Context-Aware Preferences"* (van Bunningen
//! et al., ICDE 2007). The paper models uncertain context and document
//! features with **event expressions** in the style of Fuhr & Rölleke's
//! probabilistic relational algebra (its refs \[9\] and \[17\]): every uncertain
//! fact carries a boolean expression over *basic events*, and the probability
//! of a derived fact is the probability of its expression. Crucially, the
//! paper demands that correlations (e.g. *a person can only be at a single
//! place at one moment*) be captured **without approximation** — so this
//! crate implements exact inference, not independence-assuming shortcuts.
//!
//! ## Model
//!
//! * A [`Universe`] registers independent **discrete random variables**.
//!   Each variable has a set of mutually exclusive *alternatives* with given
//!   probabilities (plus an implicit residual outcome when they sum to less
//!   than one). Variables are independent of each other; correlation between
//!   *facts* arises from facts sharing variables.
//! * An [`EventExpr`] is a boolean combination (`and` / `or` / `not`) of
//!   atoms `variable = alternative`. Composite nodes are **hash-consed** in
//!   a process-global interner: structurally equal expressions are
//!   pointer-equal, carry a stable node id ([`EventExpr::node_id`]) and
//!   precompute their structural hash, size and variable support — which is
//!   what makes the evaluator's memoisation O(1) per lookup.
//! * [`Evaluator`] computes exact probabilities by Shannon expansion over the
//!   shared variables, with memoisation and factorisation over independent
//!   components.
//! * [`Factor`] / [`expectation`] generalise this to expectations of products
//!   of piecewise-constant random variables — the exact computation needed by
//!   the context-aware scoring formula of the paper's Section 3.3 when
//!   features are correlated.
//! * [`worlds`] provides brute-force possible-world enumeration, used as the
//!   testing oracle and by the naive scoring engines.
//!
//! ## Example
//!
//! ```
//! use capra_events::{Universe, EventExpr, Evaluator};
//!
//! let mut u = Universe::new();
//! // A person is in exactly one of three rooms.
//! let room = u.add_choice("room", &[0.5, 0.3, 0.2]).unwrap();
//! let kitchen = u.atom(room, 0).unwrap();
//! let lounge = u.atom(room, 1).unwrap();
//!
//! let mut ev = Evaluator::new(&u);
//! // Mutually exclusive: never in the kitchen and the lounge at once.
//! assert_eq!(ev.prob(&EventExpr::and([kitchen.clone(), lounge.clone()])), 0.0);
//! assert!((ev.prob(&EventExpr::or([kitchen, lounge])) - 0.8).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod eval;
mod expect;
mod expr;
mod hashers;
mod parse;
pub mod tier;
mod universe;
pub mod worlds;

pub use batch::{BatchEvaluator, BatchExpectation, BatchStats};
pub use error::EventError;
pub use eval::{EvalCache, EvalStats, EvalTier, Evaluator, FrozenEvalCache};
pub use expect::{
    brute_force_expectation, expectation, ExpectCache, ExpectTier, Expectation, ExportedGroup,
    Factor, FrozenExpectCache,
};
pub use expr::{interner_stats, Atom, EventExpr, ExprKey, InternerStats, NaryNode, NotNode};
pub use parse::parse_event;
pub use tier::{CacheFootprint, EvictionPolicy, TierChain, TierPayload};
pub use universe::{Universe, VarId};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, EventError>;

/// Tolerance used when validating probabilities supplied by callers.
pub const PROB_EPSILON: f64 = 1e-9;

/// Clamps a computed probability into `[0, 1]`, tolerating tiny numerical
/// drift (up to [`PROB_EPSILON`]) introduced by summing many floating-point
/// terms. Values outside the tolerated band are a logic error and panic in
/// debug builds.
pub(crate) fn clamp_prob(p: f64) -> f64 {
    debug_assert!(
        (-PROB_EPSILON..=1.0 + PROB_EPSILON).contains(&p),
        "probability {p} outside tolerated range"
    );
    p.clamp(0.0, 1.0)
}
