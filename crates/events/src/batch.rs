//! Columnar batch evaluation: one walk per interned node per *batch* of
//! documents, instead of one walk per document.
//!
//! The scoring engines in `capra-core` evaluate the same hash-consed
//! [`EventExpr`] nodes once per document, even though every memoised
//! probability is a pure function of node identity — the per-document loop
//! is mostly repeated cache probes and pointer-chasing. This module turns
//! that loop inside out: callers lay the per-document expressions of one
//! rule out as a **column** (one lane per document) and the batch wrappers
//! evaluate each *distinct* expression exactly once, broadcasting the
//! result across all lanes that share it.
//!
//! Distinctness is the interner's pointer identity (plus the precomputed
//! structural hash), so the per-column dedup table costs one O(1) probe
//! per lane. Lanes whose expression is not served by a broadcast fall back
//! to one scalar evaluation through the wrapped [`Evaluator`] /
//! [`Expectation`] — bit-identical to the scalar path by construction,
//! because the underlying memo values are order-independent pure functions
//! of the hash-consed keys.
//!
//! [`BatchStats`] counts sweeps, lanes and per-lane fallbacks so the
//! serving layer can report how much of the work the columnar path
//! actually deduplicated.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use crate::eval::Evaluator;
use crate::expect::{Expectation, Factor};
use crate::expr::EventExpr;

/// Counters for the columnar batch-evaluation path.
///
/// One **sweep** is one column evaluated as a batch (typically one rule,
/// or one factor-product signature, across all documents of a request).
/// Each sweep has one **lane** per document slot. A **fallback** is a lane
/// that required its own full evaluation — neither served by broadcasting
/// another lane's result nor resolved inline (constants and atoms cost
/// nothing either way and never count as fallbacks). A low
/// `fallbacks / lanes` ratio means the columnar path is paying off; equal
/// counts mean every lane was distinct and the batch degraded to the
/// scalar cost (never worse than it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Column sweeps run (one per batched column).
    pub sweeps: u64,
    /// Total lanes across all sweeps (documents × batched columns).
    pub lanes: u64,
    /// Lanes that required their own evaluation instead of a broadcast.
    pub fallbacks: u64,
}

impl BatchStats {
    /// Mean lanes per sweep — the effective batch width.
    pub fn lanes_per_sweep(&self) -> f64 {
        if self.sweeps == 0 {
            0.0
        } else {
            self.lanes as f64 / self.sweeps as f64
        }
    }

    /// Fraction of lanes that did *not* need their own full evaluation —
    /// broadcasts plus inline-resolved constants and atoms (`0.0` when no
    /// lanes have run).
    pub fn broadcast_rate(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            (self.lanes - self.fallbacks) as f64 / self.lanes as f64
        }
    }
}

impl Add for BatchStats {
    type Output = BatchStats;
    fn add(self, other: BatchStats) -> BatchStats {
        BatchStats {
            sweeps: self.sweeps + other.sweeps,
            lanes: self.lanes + other.lanes,
            fallbacks: self.fallbacks + other.fallbacks,
        }
    }
}

impl AddAssign for BatchStats {
    fn add_assign(&mut self, other: BatchStats) {
        *self = *self + other;
    }
}

impl Sum for BatchStats {
    fn sum<I: Iterator<Item = BatchStats>>(iter: I) -> BatchStats {
        iter.fold(BatchStats::default(), Add::add)
    }
}

/// A columnar wrapper over an [`Evaluator`]: evaluates a column of
/// expressions (one lane per document) with each distinct expression
/// computed once and broadcast to every lane sharing it.
pub struct BatchEvaluator<'a, 'u> {
    inner: &'a mut Evaluator<'u>,
    stats: BatchStats,
}

impl<'a, 'u> BatchEvaluator<'a, 'u> {
    /// Wraps `inner` for columnar use. The wrapped evaluator keeps its
    /// memo state; scalar and batched calls may be freely interleaved.
    pub fn new(inner: &'a mut Evaluator<'u>) -> Self {
        Self {
            inner,
            stats: BatchStats::default(),
        }
    }

    /// The wrapped evaluator, for scalar probes between sweeps (e.g. the
    /// per-rule context probabilities that do not vary across lanes).
    pub fn evaluator(&mut self) -> &mut Evaluator<'u> {
        self.inner
    }

    /// Evaluates one column: returns `P(column[i])` for every lane `i`.
    ///
    /// Distinct *connective* expressions (by interned identity) are
    /// evaluated exactly once per sweep; repeated lanes are broadcasts.
    /// Constant and atom lanes are resolved inline — the scalar evaluator
    /// already serves those without a memo probe, so a dedup-table probe
    /// would only add cost. Results are bit-identical to calling
    /// [`Evaluator::prob`] per lane.
    pub fn probs(&mut self, column: &[EventExpr]) -> Vec<f64> {
        self.stats.sweeps += 1;
        self.stats.lanes += column.len() as u64;
        let mut dedup: HashMap<&EventExpr, f64> = HashMap::new();
        let mut out = Vec::with_capacity(column.len());
        for expr in column {
            let p = match expr {
                EventExpr::True => 1.0,
                EventExpr::False => 0.0,
                EventExpr::Atom(_) => self.inner.prob(expr),
                _ => match dedup.entry(expr) {
                    Entry::Occupied(hit) => *hit.get(),
                    Entry::Vacant(slot) => {
                        self.stats.fallbacks += 1;
                        *slot.insert(self.inner.prob(expr))
                    }
                },
            };
            out.push(p);
        }
        out
    }

    /// Counters accumulated by this wrapper since construction.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }
}

/// A columnar wrapper over an [`Expectation`]: computes a column of
/// factor-product expectations with each distinct *signature* built and
/// computed once, then broadcast.
///
/// Unlike [`BatchEvaluator`], lanes here are whole factor products, so the
/// dedup key is a caller-chosen signature (for the lineage engine: the
/// per-rule preference events of a document). The factor list itself is
/// only constructed for signatures that actually need an evaluation —
/// broadcast lanes skip both the build and the compute.
pub struct BatchExpectation<'a, 'u> {
    inner: &'a mut Expectation<'u>,
    stats: BatchStats,
}

impl<'a, 'u> BatchExpectation<'a, 'u> {
    /// Wraps `inner` for columnar use. The wrapped computer keeps its memo
    /// state; scalar and batched calls may be freely interleaved.
    pub fn new(inner: &'a mut Expectation<'u>) -> Self {
        Self {
            inner,
            stats: BatchStats::default(),
        }
    }

    /// The wrapped expectation computer, for scalar probes between sweeps.
    pub fn expectation(&mut self) -> &mut Expectation<'u> {
        self.inner
    }

    /// Computes one column of expectations, one lane per entry of `keys`.
    ///
    /// `build` is invoked once per *distinct* key (in first-occurrence
    /// order) to construct that signature's factor list; its expectation is
    /// computed once and broadcast to every lane sharing the key. Results
    /// are bit-identical to building and computing per lane, because the
    /// underlying memo entries are pure functions of the (hash-consed)
    /// factor keys.
    pub fn compute_grouped<K>(
        &mut self,
        keys: &[K],
        mut build: impl FnMut(&K) -> Vec<Factor>,
    ) -> Vec<f64>
    where
        K: Eq + Hash,
    {
        self.stats.sweeps += 1;
        self.stats.lanes += keys.len() as u64;
        let mut dedup: HashMap<&K, f64> = HashMap::with_capacity(keys.len());
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let e = match dedup.entry(key) {
                Entry::Occupied(hit) => *hit.get(),
                Entry::Vacant(slot) => {
                    self.stats.fallbacks += 1;
                    let factors = build(key);
                    *slot.insert(self.inner.compute(&factors))
                }
            };
            out.push(e);
        }
        out
    }

    /// Counters accumulated by this wrapper since construction.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn universe() -> (Universe, Vec<EventExpr>) {
        let mut u = Universe::new();
        let atoms: Vec<EventExpr> = (0..4)
            .map(|i| {
                let v = u.add_bool(&format!("v{i}"), 0.1 + 0.2 * i as f64).unwrap();
                u.atom(v, 0).unwrap()
            })
            .collect();
        (u, atoms)
    }

    #[test]
    fn batch_probs_match_scalar_bit_for_bit() {
        let (u, atoms) = universe();
        let column: Vec<EventExpr> = vec![
            EventExpr::and([atoms[0].clone(), atoms[1].clone()]),
            EventExpr::or([atoms[2].clone(), atoms[3].clone()]),
            EventExpr::and([atoms[0].clone(), atoms[1].clone()]), // repeat lane
            EventExpr::True,
        ];
        let mut scalar = Evaluator::new(&u);
        let want: Vec<f64> = column.iter().map(|e| scalar.prob(e)).collect();

        let mut ev = Evaluator::new(&u);
        let mut batch = BatchEvaluator::new(&mut ev);
        let got = batch.probs(&column);
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let stats = batch.stats();
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.lanes, 4);
        // Two distinct connectives; the repeated `and` broadcasts and the
        // constant `True` lane resolves inline.
        assert_eq!(stats.fallbacks, 2);
    }

    #[test]
    fn grouped_expectation_builds_once_per_distinct_key() {
        let (u, atoms) = universe();
        let keys = [0usize, 1, 0, 1, 0];
        let mut builds = 0usize;
        let mut ex = Expectation::new(&u);
        let mut batch = BatchExpectation::new(&mut ex);
        let got = batch.compute_grouped(&keys, |&k| {
            builds += 1;
            vec![Factor::new([
                (EventExpr::not(atoms[k].clone()), 1.0),
                (atoms[k].clone(), 0.5),
            ])]
        });
        assert_eq!(builds, 2, "one build per distinct key");
        let mut scalar = Expectation::new(&u);
        for (&k, e) in keys.iter().zip(&got) {
            let factors = vec![Factor::new([
                (EventExpr::not(atoms[k].clone()), 1.0),
                (atoms[k].clone(), 0.5),
            ])];
            assert_eq!(scalar.compute(&factors).to_bits(), e.to_bits());
        }
        let stats = batch.stats();
        assert_eq!((stats.sweeps, stats.lanes, stats.fallbacks), (1, 5, 2));
    }

    #[test]
    fn stats_accumulate_and_sum() {
        let a = BatchStats {
            sweeps: 2,
            lanes: 10,
            fallbacks: 3,
        };
        let b = BatchStats {
            sweeps: 1,
            lanes: 6,
            fallbacks: 6,
        };
        let mut acc = a;
        acc += b;
        assert_eq!(acc, a + b);
        assert_eq!([a, b].into_iter().sum::<BatchStats>(), acc);
        assert!((a.lanes_per_sweep() - 5.0).abs() < 1e-12);
        assert!((a.broadcast_rate() - 0.7).abs() < 1e-12);
        assert_eq!(BatchStats::default().lanes_per_sweep(), 0.0);
        assert_eq!(BatchStats::default().broadcast_rate(), 0.0);
    }
}
