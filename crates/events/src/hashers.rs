//! Fast non-cryptographic hashing for the crate's internal caches.
//!
//! Interned expressions carry precomputed structural hashes, so cache
//! lookups reduce to hashing a handful of `u64`s — std's SipHash is
//! overkill there. [`MixHasher`] folds words with the same xorshift-multiply
//! mix the interner uses; [`FastMap`] is a `HashMap` using it.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Xorshift-multiply word mixer (fixed keys; deterministic per process).
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut h = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

/// Word-at-a-time hasher over [`mix`].
#[derive(Default)]
pub(crate) struct MixHasher(u64);

impl Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_ne_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = mix(self.0, n);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` keyed through [`MixHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<MixHasher>>;
