use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::hashers::{mix, FastMap};
use crate::{Universe, VarId};

/// An atomic event: a discrete random variable taking one alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The variable.
    pub var: VarId,
    /// The alternative the variable takes.
    pub alt: u16,
}

/// A boolean event expression over the basic events of a [`Universe`].
///
/// Expressions are immutable trees with shared (`Arc`) children, so cloning a
/// lineage expression while it flows through relational operators is cheap.
/// The constructors [`EventExpr::and`], [`EventExpr::or`] and
/// [`EventExpr::not`] apply local simplifications eagerly:
///
/// * constant folding (`x ∧ false = false`, `x ∨ true = true`, …),
/// * flattening of nested conjunctions/disjunctions,
/// * deduplication and canonical ordering of children (which maximises
///   memoisation hits during evaluation),
/// * complement cancellation (`x ∧ ¬x = false`, `x ∨ ¬x = true`),
/// * mutual-exclusion of atoms (`(v=a) ∧ (v=b) = false` for `a ≠ b`).
///
/// The simplifications are semantics-preserving for every universe; they do
/// *not* attempt full minimisation (which is NP-hard).
///
/// ## Hash-consing
///
/// Composite nodes (`Not`/`And`/`Or`) are **interned** in a process-global
/// table: constructing the same structure twice yields the same allocation,
/// so structurally equal expressions are pointer-equal and carry a stable
/// [`EventExpr::node_id`]. Every node precomputes its structural hash, node
/// count and variable support at construction, which makes equality,
/// hashing, [`EventExpr::support_slice`] and the evaluator's memo-table
/// lookups O(1) instead of O(tree size). The interner holds only weak
/// references — dropping the last user of a node frees it.
#[derive(Debug, Clone)]
pub enum EventExpr {
    /// The certain event.
    True,
    /// The impossible event.
    False,
    /// A basic event `var = alt`.
    Atom(Atom),
    /// Complement of an event (interned; derefs to the inner expression).
    Not(Arc<NotNode>),
    /// Conjunction of two or more events (children sorted, deduplicated;
    /// interned; derefs to the child slice).
    And(Arc<NaryNode>),
    /// Disjunction of two or more events (children sorted, deduplicated;
    /// interned; derefs to the child slice).
    Or(Arc<NaryNode>),
}

/// Cache metadata every interned composite node carries.
#[derive(Debug)]
struct NodeMeta {
    /// Process-unique id (stable while the node is alive; structurally
    /// equal live nodes share it, because the interner dedups them).
    id: u64,
    /// Precomputed structural hash.
    hash: u64,
    /// Node count of the subtree (saturating).
    size: u32,
    /// Sorted, deduplicated variable support of the subtree.
    support: Box<[VarId]>,
}

/// Interned payload of [`EventExpr::Not`]. Derefs to the inner expression,
/// so existing `match`-and-recurse code keeps working.
#[derive(Debug)]
pub struct NotNode {
    inner: EventExpr,
    meta: NodeMeta,
}

impl Deref for NotNode {
    type Target = EventExpr;
    fn deref(&self) -> &EventExpr {
        &self.inner
    }
}

/// Interned payload of [`EventExpr::And`] / [`EventExpr::Or`]. Derefs to
/// the canonical child slice.
#[derive(Debug)]
pub struct NaryNode {
    kids: Box<[EventExpr]>,
    meta: NodeMeta,
}

impl Deref for NaryNode {
    type Target = [EventExpr];
    fn deref(&self) -> &[EventExpr] {
        &self.kids
    }
}

/// A compact, copyable identity key for an [`EventExpr`]: leaves are
/// self-describing, composites carry their interner id. Two live
/// expressions have equal keys iff they are structurally equal.
///
/// Intended for *external* caches that pin the keyed expressions
/// themselves (a composite's id is only stable while some clone of the
/// node is alive — once dropped, rebuilding the same structure mints a
/// fresh id). The in-crate memos instead key by `EventExpr` directly,
/// which pins the node automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExprKey {
    /// Key of [`EventExpr::True`].
    True,
    /// Key of [`EventExpr::False`].
    False,
    /// Key of an atom.
    Atom(Atom),
    /// Key of an interned composite node.
    Node(u64),
}

// ---------------------------------------------------------------------------
// The interner.
// ---------------------------------------------------------------------------

const TAG_TRUE: u64 = 0x9AE1_6A3B_2F90_404F;
const TAG_FALSE: u64 = 0x3C79_AC49_2BA7_B653;
const TAG_ATOM: u64 = 0x1BF6_7FBB_1727_12E1;
const TAG_NOT: u64 = 0xD6E8_FEB8_6659_FD93;
const TAG_AND: u64 = 0xA076_1D64_78BD_642F ^ 0xF;
const TAG_OR: u64 = 0xE703_7ED1_A0B4_28DB;

enum Slot {
    Not(Weak<NotNode>),
    And(Weak<NaryNode>),
    Or(Weak<NaryNode>),
}

impl Slot {
    fn is_dead(&self) -> bool {
        match self {
            Slot::Not(w) => w.strong_count() == 0,
            Slot::And(w) | Slot::Or(w) => w.strong_count() == 0,
        }
    }
}

/// Running counters of the process-global interner.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InternerStats {
    /// Constructor calls that found an existing structurally equal node.
    pub hits: u64,
    /// Constructor calls that allocated a new node.
    pub misses: u64,
}

#[derive(Default)]
struct InternShard {
    table: FastMap<u64, Vec<Slot>>,
    hits: u64,
    misses: u64,
    /// Misses since the last full sweep; drives periodic reclamation.
    misses_since_sweep: u64,
}

impl InternShard {
    /// Drops dead weak slots and emptied buckets across the whole shard.
    ///
    /// Construction already purges the *touched* bucket, but buckets whose
    /// hash is never revisited would otherwise pin their dead `Weak`s (and
    /// the `ArcInner` blocks behind them) forever. Sweeping once the misses
    /// since the last sweep exceed the table size keeps the amortised cost
    /// O(1) per construction while bounding the table by the live node
    /// count.
    fn maybe_sweep(&mut self) {
        self.misses_since_sweep += 1;
        if self.misses_since_sweep <= (self.table.len() as u64).max(64) {
            return;
        }
        self.misses_since_sweep = 0;
        self.table.retain(|_, bucket| {
            bucket.retain(|s| !s.is_dead());
            !bucket.is_empty()
        });
    }
}

/// The interner is sharded by structural hash so parallel scoring shards
/// contend on different locks while still sharing node identity.
const INTERN_SHARDS: usize = 16;

fn interner() -> &'static [Mutex<InternShard>; INTERN_SHARDS] {
    static INTERNER: OnceLock<[Mutex<InternShard>; INTERN_SHARDS]> = OnceLock::new();
    INTERNER.get_or_init(|| std::array::from_fn(|_| Mutex::new(InternShard::default())))
}

fn next_id() -> u64 {
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Aggregated counters of the global expression interner (observability
/// for benches and tests).
pub fn interner_stats() -> InternerStats {
    let mut out = InternerStats::default();
    for shard in interner() {
        let s = shard.lock().unwrap_or_else(|e| e.into_inner());
        out.hits += s.hits;
        out.misses += s.misses;
    }
    out
}

fn merged_support(parts: &[EventExpr]) -> Box<[VarId]> {
    let mut out: Vec<VarId> = Vec::new();
    for p in parts {
        out.extend_from_slice(p.support_slice());
    }
    out.sort_unstable();
    out.dedup();
    out.into_boxed_slice()
}

fn intern_not(inner: EventExpr) -> EventExpr {
    let hash = mix(TAG_NOT, inner.structural_hash());
    let shard = &interner()[(hash as usize) % INTERN_SHARDS];
    let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
    let bucket = guard.table.entry(hash).or_default();
    bucket.retain(|s| !s.is_dead());
    for slot in bucket.iter() {
        if let Slot::Not(w) = slot {
            if let Some(node) = w.upgrade() {
                if node.inner == inner {
                    guard.hits += 1;
                    return EventExpr::Not(node);
                }
            }
        }
    }
    let meta = NodeMeta {
        id: next_id(),
        hash,
        size: inner.size_u32().saturating_add(1),
        support: inner.support_slice().into(),
    };
    let node = Arc::new(NotNode { inner, meta });
    guard
        .table
        .get_mut(&hash)
        .expect("bucket just touched")
        .push(Slot::Not(Arc::downgrade(&node)));
    guard.misses += 1;
    guard.maybe_sweep();
    EventExpr::Not(node)
}

fn intern_nary(is_and: bool, kids: Vec<EventExpr>) -> EventExpr {
    debug_assert!(kids.len() >= 2, "leaf cases handled by the constructor");
    let tag = if is_and { TAG_AND } else { TAG_OR };
    let mut hash = tag;
    for k in &kids {
        hash = mix(hash, k.structural_hash());
    }
    let shard = &interner()[(hash as usize) % INTERN_SHARDS];
    let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
    let bucket = guard.table.entry(hash).or_default();
    bucket.retain(|s| !s.is_dead());
    for slot in bucket.iter() {
        let w = match (slot, is_and) {
            (Slot::And(w), true) | (Slot::Or(w), false) => w,
            _ => continue,
        };
        if let Some(node) = w.upgrade() {
            if node.kids.len() == kids.len() && node.kids.iter().zip(&kids).all(|(a, b)| a == b) {
                guard.hits += 1;
                return if is_and {
                    EventExpr::And(node)
                } else {
                    EventExpr::Or(node)
                };
            }
        }
    }
    let size = kids
        .iter()
        .fold(1u32, |acc, k| acc.saturating_add(k.size_u32()));
    let meta = NodeMeta {
        id: next_id(),
        hash,
        size,
        support: merged_support(&kids),
    };
    let node = Arc::new(NaryNode {
        kids: kids.into_boxed_slice(),
        meta,
    });
    let slot = if is_and {
        Slot::And(Arc::downgrade(&node))
    } else {
        Slot::Or(Arc::downgrade(&node))
    };
    guard
        .table
        .get_mut(&hash)
        .expect("bucket just touched")
        .push(slot);
    guard.misses += 1;
    guard.maybe_sweep();
    if is_and {
        EventExpr::And(node)
    } else {
        EventExpr::Or(node)
    }
}

// ---------------------------------------------------------------------------
// Identity-based equality / ordering / hashing.
// ---------------------------------------------------------------------------

impl PartialEq for EventExpr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EventExpr::True, EventExpr::True) | (EventExpr::False, EventExpr::False) => true,
            (EventExpr::Atom(a), EventExpr::Atom(b)) => a == b,
            // The interner guarantees structurally equal live composites
            // share one allocation, so pointer identity IS structural
            // equality here.
            (EventExpr::Not(a), EventExpr::Not(b)) => Arc::ptr_eq(a, b),
            (EventExpr::And(a), EventExpr::And(b)) | (EventExpr::Or(a), EventExpr::Or(b)) => {
                Arc::ptr_eq(a, b)
            }
            _ => false,
        }
    }
}

impl Eq for EventExpr {}

impl Hash for EventExpr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.structural_hash());
    }
}

impl PartialOrd for EventExpr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventExpr {
    /// A total order consistent with `Eq`: leaves order structurally
    /// (atoms by `(var, alt)`, so same-variable atoms are adjacent in the
    /// canonical child order — the mutual-exclusion scan relies on it);
    /// composites order by their precomputed **structural hash** — stable
    /// across re-interning epochs and process runs, since the mixer is
    /// fixed — with the interner id only breaking 64-bit hash collisions
    /// (where the relative order of the two colliding nodes is arbitrary
    /// but still a total order consistent with `Eq`).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(e: &EventExpr) -> u8 {
            match e {
                EventExpr::True => 0,
                EventExpr::False => 1,
                EventExpr::Atom(_) => 2,
                EventExpr::Not(_) => 3,
                EventExpr::And(_) => 4,
                EventExpr::Or(_) => 5,
            }
        }
        fn meta_key(e: &EventExpr) -> (u64, u64) {
            match e {
                EventExpr::Not(n) => (n.meta.hash, n.meta.id),
                EventExpr::And(n) | EventExpr::Or(n) => (n.meta.hash, n.meta.id),
                _ => (0, 0),
            }
        }
        rank(self)
            .cmp(&rank(other))
            .then_with(|| match (self, other) {
                (EventExpr::Atom(a), EventExpr::Atom(b)) => a.cmp(b),
                (EventExpr::Not(_), EventExpr::Not(_))
                | (EventExpr::And(_), EventExpr::And(_))
                | (EventExpr::Or(_), EventExpr::Or(_)) => meta_key(self).cmp(&meta_key(other)),
                _ => std::cmp::Ordering::Equal,
            })
    }
}

impl EventExpr {
    /// The atomic event `var = alt`. Prefer [`Universe::atom`] for a
    /// bounds-checked constructor.
    pub fn atom(var: VarId, alt: u16) -> Self {
        EventExpr::Atom(Atom { var, alt })
    }

    /// Complement, with double-negation and constant elimination.
    #[allow(clippy::should_implement_trait)] // constructor over values, not `!` on refs
    pub fn not(e: EventExpr) -> Self {
        match e {
            EventExpr::True => EventExpr::False,
            EventExpr::False => EventExpr::True,
            EventExpr::Not(inner) => inner.inner.clone(),
            other => intern_not(other),
        }
    }

    /// Conjunction of the given events (empty conjunction is `True`).
    pub fn and<I: IntoIterator<Item = EventExpr>>(items: I) -> Self {
        Self::nary(items, /*is_and=*/ true)
    }

    /// Disjunction of the given events (empty disjunction is `False`).
    pub fn or<I: IntoIterator<Item = EventExpr>>(items: I) -> Self {
        Self::nary(items, /*is_and=*/ false)
    }

    /// Shared n-ary constructor. `is_and` selects conjunction semantics;
    /// disjunction is the dual (absorbing element swapped, etc.).
    fn nary<I: IntoIterator<Item = EventExpr>>(items: I, is_and: bool) -> Self {
        let (absorbing, neutral) = if is_and {
            (EventExpr::False, EventExpr::True)
        } else {
            (EventExpr::True, EventExpr::False)
        };
        // Flatten, then sort + dedup for the canonical child order (cheap:
        // comparisons are leaf compares or interner-id compares).
        let mut children: Vec<EventExpr> = Vec::new();
        let mut stack: Vec<EventExpr> = items.into_iter().collect();
        while let Some(item) = stack.pop() {
            match item {
                ref e if *e == neutral => {}
                ref e if *e == absorbing => return absorbing,
                EventExpr::And(kids) if is_and => stack.extend(kids.iter().cloned()),
                EventExpr::Or(kids) if !is_and => stack.extend(kids.iter().cloned()),
                other => children.push(other),
            }
        }
        children.sort_unstable();
        children.dedup();
        // Complement cancellation and atom mutual exclusion.
        let mut seen_alt: Option<Atom> = None;
        for child in &children {
            match child {
                EventExpr::Not(inner) if children.binary_search(&inner.inner).is_ok() => {
                    return absorbing;
                }
                EventExpr::Atom(a) if is_and => {
                    // Two distinct alternatives of the same variable can
                    // never hold simultaneously (atoms sort adjacently by
                    // variable, so comparing neighbours suffices).
                    if let Some(prev) = seen_alt {
                        if prev.var == a.var && prev.alt != a.alt {
                            return absorbing;
                        }
                    }
                    seen_alt = Some(*a);
                }
                // (match guard form keeps clippy's collapsible-if quiet)
                _ => {}
            }
        }
        match children.len() {
            0 => neutral,
            1 => children.into_iter().next().expect("len checked"),
            _ => intern_nary(is_and, children),
        }
    }

    /// True if this expression is the constant `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, EventExpr::True)
    }

    /// True if this expression is the constant `False`.
    pub fn is_false(&self) -> bool {
        matches!(self, EventExpr::False)
    }

    /// True if the expression is one of the two constants.
    pub fn is_const(&self) -> bool {
        self.is_true() || self.is_false()
    }

    /// The precomputed structural hash (equal expressions hash equal).
    pub fn structural_hash(&self) -> u64 {
        match self {
            EventExpr::True => TAG_TRUE,
            EventExpr::False => TAG_FALSE,
            EventExpr::Atom(a) => mix(TAG_ATOM, (u64::from(a.var.0) << 16) | u64::from(a.alt)),
            EventExpr::Not(n) => n.meta.hash,
            EventExpr::And(n) | EventExpr::Or(n) => n.meta.hash,
        }
    }

    /// The interner id of a composite node; `None` for leaves.
    pub fn node_id(&self) -> Option<u64> {
        match self {
            EventExpr::Not(n) => Some(n.meta.id),
            EventExpr::And(n) | EventExpr::Or(n) => Some(n.meta.id),
            _ => None,
        }
    }

    /// A compact identity key suitable for hash-map caches ([`ExprKey`]).
    pub fn cache_key(&self) -> ExprKey {
        match self {
            EventExpr::True => ExprKey::True,
            EventExpr::False => ExprKey::False,
            EventExpr::Atom(a) => ExprKey::Atom(*a),
            EventExpr::Not(n) => ExprKey::Node(n.meta.id),
            EventExpr::And(n) | EventExpr::Or(n) => ExprKey::Node(n.meta.id),
        }
    }

    /// Collects the set of variables this expression depends on.
    ///
    /// Allocates a fresh set; the zero-cost variant is
    /// [`EventExpr::support_slice`], which returns the support cached at
    /// construction time.
    pub fn support(&self) -> std::collections::BTreeSet<VarId> {
        self.support_slice().iter().copied().collect()
    }

    /// The sorted, deduplicated variable support, precomputed at
    /// construction (O(1); no tree walk).
    pub fn support_slice(&self) -> &[VarId] {
        match self {
            EventExpr::True | EventExpr::False => &[],
            EventExpr::Atom(a) => std::slice::from_ref(&a.var),
            EventExpr::Not(n) => &n.meta.support,
            EventExpr::And(n) | EventExpr::Or(n) => &n.meta.support,
        }
    }

    /// True if `var` occurs in the expression (binary search on the cached
    /// support).
    pub fn mentions(&self, var: VarId) -> bool {
        self.support_slice().binary_search(&var).is_ok()
    }

    pub(crate) fn collect_support(&self, out: &mut std::collections::BTreeSet<VarId>) {
        out.extend(self.support_slice().iter().copied());
    }

    fn size_u32(&self) -> u32 {
        match self {
            EventExpr::True | EventExpr::False | EventExpr::Atom(_) => 1,
            EventExpr::Not(n) => n.meta.size,
            EventExpr::And(n) | EventExpr::Or(n) => n.meta.size,
        }
    }

    /// Number of nodes in the expression tree (a complexity measure;
    /// precomputed, saturating at `u32::MAX`).
    pub fn size(&self) -> usize {
        self.size_u32() as usize
    }

    /// Restricts (cofactors) the expression under the assumption that
    /// variable `var` takes outcome `outcome`.
    ///
    /// Outcome indices follow [`Universe::num_outcomes`]: an index equal to
    /// the number of declared alternatives denotes the residual outcome, in
    /// which every atom of the variable is false.
    ///
    /// Subtrees that do not mention `var` are returned as-is (cheap `Arc`
    /// clone) — the cached support makes the check O(log n).
    pub fn restrict(&self, var: VarId, outcome: usize) -> EventExpr {
        if !self.mentions(var) {
            return self.clone();
        }
        match self {
            EventExpr::True => EventExpr::True,
            EventExpr::False => EventExpr::False,
            EventExpr::Atom(a) => {
                debug_assert_eq!(a.var, var, "mentions() filtered foreign atoms");
                if a.alt as usize == outcome {
                    EventExpr::True
                } else {
                    EventExpr::False
                }
            }
            EventExpr::Not(inner) => EventExpr::not(inner.inner.restrict(var, outcome)),
            EventExpr::And(kids) => EventExpr::and(kids.iter().map(|k| k.restrict(var, outcome))),
            EventExpr::Or(kids) => EventExpr::or(kids.iter().map(|k| k.restrict(var, outcome))),
        }
    }

    /// Renders the expression with variable names resolved against a
    /// universe. See also the plain [`fmt::Display`] impl, which prints raw
    /// variable indices.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> DisplayExpr<'a> {
        DisplayExpr {
            expr: self,
            universe: Some(universe),
        }
    }
}

/// Helper returned by [`EventExpr::display`].
pub struct DisplayExpr<'a> {
    expr: &'a EventExpr,
    universe: Option<&'a Universe>,
}

impl DisplayExpr<'_> {
    fn fmt_expr(&self, e: &EventExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match e {
            EventExpr::True => write!(f, "⊤"),
            EventExpr::False => write!(f, "⊥"),
            EventExpr::Atom(a) => {
                match self.universe.and_then(|u| u.name(a.var).ok()) {
                    // Names with characters outside the parser's bare-name
                    // set are backtick-quoted so Display/parse round-trips.
                    Some(name)
                        if name
                            .chars()
                            .all(|c| crate::parse::is_name_char(c) || c.is_ascii_digit()) =>
                    {
                        write!(f, "{name}")?
                    }
                    Some(name) => write!(f, "`{name}`")?,
                    None => write!(f, "v{}", a.var.index())?,
                }
                // Boolean variables (single alternative) omit the `=0`.
                let is_bool = self
                    .universe
                    .and_then(|u| u.num_alts(a.var).ok())
                    .is_some_and(|n| n == 1);
                if !is_bool || a.alt != 0 {
                    write!(f, "={}", a.alt)?;
                }
                Ok(())
            }
            EventExpr::Not(inner) => {
                write!(f, "¬")?;
                self.fmt_child(inner, f)
            }
            EventExpr::And(kids) => self.fmt_nary(kids, " ∧ ", f),
            EventExpr::Or(kids) => self.fmt_nary(kids, " ∨ ", f),
        }
    }

    fn fmt_child(&self, e: &EventExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if matches!(e, EventExpr::And(_) | EventExpr::Or(_)) {
            write!(f, "(")?;
            self.fmt_expr(e, f)?;
            write!(f, ")")
        } else {
            self.fmt_expr(e, f)
        }
    }

    fn fmt_nary(&self, kids: &[EventExpr], sep: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in kids.iter().enumerate() {
            if i > 0 {
                write!(f, "{sep}")?;
            }
            self.fmt_child(k, f)?;
        }
        Ok(())
    }
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_expr(self.expr, f)
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        DisplayExpr {
            expr: self,
            universe: None,
        }
        .fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn constants_fold() {
        let a = EventExpr::atom(v(0), 0);
        assert_eq!(EventExpr::and([a.clone(), EventExpr::True]), a, "x ∧ ⊤ = x");
        assert_eq!(
            EventExpr::and([a.clone(), EventExpr::False]),
            EventExpr::False
        );
        assert_eq!(EventExpr::or([a.clone(), EventExpr::True]), EventExpr::True);
        assert_eq!(EventExpr::or([a.clone(), EventExpr::False]), a);
        assert_eq!(EventExpr::and([]), EventExpr::True);
        assert_eq!(EventExpr::or([]), EventExpr::False);
    }

    #[test]
    fn dedup_and_flatten() {
        let a = EventExpr::atom(v(0), 0);
        let b = EventExpr::atom(v(1), 0);
        let nested = EventExpr::and([a.clone(), EventExpr::and([a.clone(), b.clone()])]);
        match &nested {
            EventExpr::And(kids) => assert_eq!(kids.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        // Canonical order: same expression irrespective of argument order.
        assert_eq!(
            EventExpr::and([b.clone(), a.clone()]),
            EventExpr::and([a, b])
        );
    }

    #[test]
    fn complement_cancellation() {
        let a = EventExpr::atom(v(0), 0);
        let na = EventExpr::not(a.clone());
        assert_eq!(EventExpr::and([a.clone(), na.clone()]), EventExpr::False);
        assert_eq!(EventExpr::or([a.clone(), na.clone()]), EventExpr::True);
        assert_eq!(EventExpr::not(na), a);
    }

    #[test]
    fn atom_mutual_exclusion_in_and() {
        let a0 = EventExpr::atom(v(0), 0);
        let a1 = EventExpr::atom(v(0), 1);
        assert_eq!(EventExpr::and([a0.clone(), a1]), EventExpr::False);
        // Same alternative twice is just the atom.
        assert_eq!(EventExpr::and([a0.clone(), a0.clone()]), a0);
    }

    #[test]
    fn single_child_unwraps() {
        let a = EventExpr::atom(v(0), 0);
        assert_eq!(EventExpr::and([a.clone()]), a);
        assert_eq!(EventExpr::or([a.clone()]), a);
    }

    #[test]
    fn support_collects_vars() {
        let e = EventExpr::or([
            EventExpr::and([EventExpr::atom(v(0), 0), EventExpr::atom(v(2), 1)]),
            EventExpr::not(EventExpr::atom(v(1), 0)),
        ]);
        let s = e.support();
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![v(0), v(1), v(2)]);
        assert_eq!(e.support_slice(), &[v(0), v(1), v(2)]);
        assert!(e.mentions(v(2)) && !e.mentions(v(3)));
    }

    #[test]
    fn restrict_substitutes_outcomes() {
        let a = EventExpr::atom(v(0), 0);
        let b = EventExpr::atom(v(1), 0);
        let e = EventExpr::and([a, b.clone()]);
        assert_eq!(e.restrict(v(0), 0), b);
        assert_eq!(e.restrict(v(0), 1), EventExpr::False);
        // Residual outcome of a choice var kills all its atoms.
        let c = EventExpr::or([EventExpr::atom(v(2), 0), EventExpr::atom(v(2), 1)]);
        assert_eq!(c.restrict(v(2), 2), EventExpr::False);
        // Restricting a variable outside the support is identity.
        assert_eq!(c.restrict(v(9), 0), c);
    }

    #[test]
    fn size_counts_nodes() {
        let a = EventExpr::atom(v(0), 0);
        let e = EventExpr::or([a.clone(), EventExpr::not(EventExpr::atom(v(1), 0))]);
        assert_eq!(a.size(), 1);
        assert_eq!(e.size(), 4); // or + atom + not + atom
    }

    #[test]
    fn interning_gives_pointer_equality() {
        let build = || {
            EventExpr::or([
                EventExpr::and([EventExpr::atom(v(0), 0), EventExpr::atom(v(1), 0)]),
                EventExpr::not(EventExpr::atom(v(2), 1)),
            ])
        };
        let (e1, e2) = (build(), build());
        assert_eq!(e1, e2);
        match (&e1, &e2) {
            (EventExpr::Or(a), EventExpr::Or(b)) => {
                assert!(Arc::ptr_eq(a, b), "same structure must intern to one node");
            }
            other => panic!("expected Or nodes, got {other:?}"),
        }
        assert_eq!(e1.node_id(), e2.node_id());
        assert_eq!(e1.cache_key(), e2.cache_key());
        assert_eq!(e1.structural_hash(), e2.structural_hash());
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let a = EventExpr::and([EventExpr::atom(v(10), 0), EventExpr::atom(v(11), 0)]);
        let b = EventExpr::or([EventExpr::atom(v(10), 0), EventExpr::atom(v(11), 0)]);
        assert_ne!(a, b);
        assert_ne!(a.node_id(), b.node_id());
    }

    #[test]
    fn interner_reports_hits() {
        let before = interner_stats();
        let mk = || EventExpr::and([EventExpr::atom(v(20), 0), EventExpr::atom(v(21), 0)]);
        let _keep = mk();
        let _again = mk();
        let after = interner_stats();
        assert!(after.hits > before.hits, "second build must be a hit");
    }

    #[test]
    fn dropped_nodes_can_be_reclaimed() {
        // A node with no remaining strong refs must not satisfy equality
        // through a stale weak: rebuilding after the drop still works and
        // yields a structurally equal (freshly interned) node.
        let mk = || EventExpr::and([EventExpr::atom(v(30), 0), EventExpr::atom(v(31), 0)]);
        let id1 = mk().node_id(); // dropped immediately
        let e2 = mk();
        assert!(id1.is_some() && e2.node_id().is_some());
        assert_eq!(mk(), e2, "relive node interned consistently");
    }

    #[test]
    fn display_without_universe() {
        let e = EventExpr::and([EventExpr::atom(v(0), 0), EventExpr::atom(v(1), 2)]);
        let s = e.to_string();
        assert!(s.contains("v0"), "{s}");
        assert!(s.contains("v1=2"), "{s}");
    }

    #[test]
    fn display_with_universe_uses_names() {
        let mut u = Universe::new();
        let rain = u.add_bool("rain", 0.5).unwrap();
        let room = u.add_choice("room", &[0.4, 0.6]).unwrap();
        let e = EventExpr::or([u.atom(rain, 0).unwrap(), u.atom(room, 1).unwrap()]);
        let s = e.display(&u).to_string();
        assert!(s.contains("rain"), "{s}");
        assert!(s.contains("room=1"), "{s}");
    }
}
