use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::{Universe, VarId};

/// An atomic event: a discrete random variable taking one alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// The variable.
    pub var: VarId,
    /// The alternative the variable takes.
    pub alt: u16,
}

/// A boolean event expression over the basic events of a [`Universe`].
///
/// Expressions are immutable trees with shared (`Arc`) children, so cloning a
/// lineage expression while it flows through relational operators is cheap.
/// The constructors [`EventExpr::and`], [`EventExpr::or`] and
/// [`EventExpr::not`] apply local simplifications eagerly:
///
/// * constant folding (`x ∧ false = false`, `x ∨ true = true`, …),
/// * flattening of nested conjunctions/disjunctions,
/// * deduplication and canonical ordering of children (which maximises
///   memoisation hits during evaluation),
/// * complement cancellation (`x ∧ ¬x = false`, `x ∨ ¬x = true`),
/// * mutual-exclusion of atoms (`(v=a) ∧ (v=b) = false` for `a ≠ b`).
///
/// The simplifications are semantics-preserving for every universe; they do
/// *not* attempt full minimisation (which is NP-hard).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventExpr {
    /// The certain event.
    True,
    /// The impossible event.
    False,
    /// A basic event `var = alt`.
    Atom(Atom),
    /// Complement of an event.
    Not(Arc<EventExpr>),
    /// Conjunction of two or more events (children sorted, deduplicated).
    And(Arc<[EventExpr]>),
    /// Disjunction of two or more events (children sorted, deduplicated).
    Or(Arc<[EventExpr]>),
}

impl EventExpr {
    /// The atomic event `var = alt`. Prefer [`Universe::atom`] for a
    /// bounds-checked constructor.
    pub fn atom(var: VarId, alt: u16) -> Self {
        EventExpr::Atom(Atom { var, alt })
    }

    /// Complement, with double-negation and constant elimination.
    #[allow(clippy::should_implement_trait)] // constructor over values, not `!` on refs
    pub fn not(e: EventExpr) -> Self {
        match e {
            EventExpr::True => EventExpr::False,
            EventExpr::False => EventExpr::True,
            EventExpr::Not(inner) => inner.as_ref().clone(),
            other => EventExpr::Not(Arc::new(other)),
        }
    }

    /// Conjunction of the given events (empty conjunction is `True`).
    pub fn and<I: IntoIterator<Item = EventExpr>>(items: I) -> Self {
        Self::nary(items, /*is_and=*/ true)
    }

    /// Disjunction of the given events (empty disjunction is `False`).
    pub fn or<I: IntoIterator<Item = EventExpr>>(items: I) -> Self {
        Self::nary(items, /*is_and=*/ false)
    }

    /// Shared n-ary constructor. `is_and` selects conjunction semantics;
    /// disjunction is the dual (absorbing element swapped, etc.).
    fn nary<I: IntoIterator<Item = EventExpr>>(items: I, is_and: bool) -> Self {
        let (absorbing, neutral) = if is_and {
            (EventExpr::False, EventExpr::True)
        } else {
            (EventExpr::True, EventExpr::False)
        };
        // BTreeSet gives dedup + canonical order in one go.
        let mut children: BTreeSet<EventExpr> = BTreeSet::new();
        let mut stack: Vec<EventExpr> = items.into_iter().collect();
        while let Some(item) = stack.pop() {
            match item {
                ref e if *e == neutral => {}
                ref e if *e == absorbing => return absorbing,
                EventExpr::And(kids) if is_and => stack.extend(kids.iter().cloned()),
                EventExpr::Or(kids) if !is_and => stack.extend(kids.iter().cloned()),
                other => {
                    children.insert(other);
                }
            }
        }
        // Complement cancellation and atom mutual exclusion.
        let mut seen_alt: Option<Atom> = None;
        for child in &children {
            match child {
                EventExpr::Not(inner) if children.contains(inner.as_ref()) => {
                    return absorbing;
                }
                EventExpr::Atom(a) if is_and => {
                    // Two distinct alternatives of the same variable can
                    // never hold simultaneously.
                    if let Some(prev) = seen_alt {
                        if prev.var == a.var && prev.alt != a.alt {
                            return absorbing;
                        }
                    }
                    seen_alt = Some(*a);
                }
                // (match guard form keeps clippy's collapsible-if quiet)
                _ => {}
            }
        }
        match children.len() {
            0 => neutral,
            1 => children.into_iter().next().expect("len checked"),
            _ => {
                let kids: Arc<[EventExpr]> = children.into_iter().collect();
                if is_and {
                    EventExpr::And(kids)
                } else {
                    EventExpr::Or(kids)
                }
            }
        }
    }

    /// True if this expression is the constant `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, EventExpr::True)
    }

    /// True if this expression is the constant `False`.
    pub fn is_false(&self) -> bool {
        matches!(self, EventExpr::False)
    }

    /// True if the expression is one of the two constants.
    pub fn is_const(&self) -> bool {
        self.is_true() || self.is_false()
    }

    /// Collects the set of variables this expression depends on.
    pub fn support(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_support(&mut out);
        out
    }

    pub(crate) fn collect_support(&self, out: &mut BTreeSet<VarId>) {
        match self {
            EventExpr::True | EventExpr::False => {}
            EventExpr::Atom(a) => {
                out.insert(a.var);
            }
            EventExpr::Not(inner) => inner.collect_support(out),
            EventExpr::And(kids) | EventExpr::Or(kids) => {
                for k in kids.iter() {
                    k.collect_support(out);
                }
            }
        }
    }

    /// Number of nodes in the expression tree (a complexity measure).
    pub fn size(&self) -> usize {
        match self {
            EventExpr::True | EventExpr::False | EventExpr::Atom(_) => 1,
            EventExpr::Not(inner) => 1 + inner.size(),
            EventExpr::And(kids) | EventExpr::Or(kids) => {
                1 + kids.iter().map(EventExpr::size).sum::<usize>()
            }
        }
    }

    /// Restricts (cofactors) the expression under the assumption that
    /// variable `var` takes outcome `outcome`.
    ///
    /// Outcome indices follow [`Universe::num_outcomes`]: an index equal to
    /// the number of declared alternatives denotes the residual outcome, in
    /// which every atom of the variable is false.
    pub fn restrict(&self, var: VarId, outcome: usize) -> EventExpr {
        match self {
            EventExpr::True => EventExpr::True,
            EventExpr::False => EventExpr::False,
            EventExpr::Atom(a) => {
                if a.var == var {
                    if a.alt as usize == outcome {
                        EventExpr::True
                    } else {
                        EventExpr::False
                    }
                } else {
                    self.clone()
                }
            }
            EventExpr::Not(inner) => EventExpr::not(inner.restrict(var, outcome)),
            EventExpr::And(kids) => {
                EventExpr::and(kids.iter().map(|k| k.restrict(var, outcome)))
            }
            EventExpr::Or(kids) => EventExpr::or(kids.iter().map(|k| k.restrict(var, outcome))),
        }
    }

    /// Renders the expression with variable names resolved against a
    /// universe. See also the plain [`fmt::Display`] impl, which prints raw
    /// variable indices.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> DisplayExpr<'a> {
        DisplayExpr {
            expr: self,
            universe: Some(universe),
        }
    }
}

/// Helper returned by [`EventExpr::display`].
pub struct DisplayExpr<'a> {
    expr: &'a EventExpr,
    universe: Option<&'a Universe>,
}

impl DisplayExpr<'_> {
    fn fmt_expr(&self, e: &EventExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match e {
            EventExpr::True => write!(f, "⊤"),
            EventExpr::False => write!(f, "⊥"),
            EventExpr::Atom(a) => {
                match self.universe.and_then(|u| u.name(a.var).ok()) {
                    // Names with characters outside the parser's bare-name
                    // set are backtick-quoted so Display/parse round-trips.
                    Some(name)
                        if name
                            .chars()
                            .all(|c| crate::parse::is_name_char(c) || c.is_ascii_digit()) =>
                    {
                        write!(f, "{name}")?
                    }
                    Some(name) => write!(f, "`{name}`")?,
                    None => write!(f, "v{}", a.var.index())?,
                }
                // Boolean variables (single alternative) omit the `=0`.
                let is_bool = self
                    .universe
                    .and_then(|u| u.num_alts(a.var).ok())
                    .is_some_and(|n| n == 1);
                if !is_bool || a.alt != 0 {
                    write!(f, "={}", a.alt)?;
                }
                Ok(())
            }
            EventExpr::Not(inner) => {
                write!(f, "¬")?;
                self.fmt_child(inner, f)
            }
            EventExpr::And(kids) => self.fmt_nary(kids, " ∧ ", f),
            EventExpr::Or(kids) => self.fmt_nary(kids, " ∨ ", f),
        }
    }

    fn fmt_child(&self, e: &EventExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if matches!(e, EventExpr::And(_) | EventExpr::Or(_)) {
            write!(f, "(")?;
            self.fmt_expr(e, f)?;
            write!(f, ")")
        } else {
            self.fmt_expr(e, f)
        }
    }

    fn fmt_nary(&self, kids: &[EventExpr], sep: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in kids.iter().enumerate() {
            if i > 0 {
                write!(f, "{sep}")?;
            }
            self.fmt_child(k, f)?;
        }
        Ok(())
    }
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_expr(self.expr, f)
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        DisplayExpr {
            expr: self,
            universe: None,
        }
        .fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn constants_fold() {
        let a = EventExpr::atom(v(0), 0);
        assert_eq!(
            EventExpr::and([a.clone(), EventExpr::True]),
            a,
            "x ∧ ⊤ = x"
        );
        assert_eq!(
            EventExpr::and([a.clone(), EventExpr::False]),
            EventExpr::False
        );
        assert_eq!(EventExpr::or([a.clone(), EventExpr::True]), EventExpr::True);
        assert_eq!(EventExpr::or([a.clone(), EventExpr::False]), a);
        assert_eq!(EventExpr::and([]), EventExpr::True);
        assert_eq!(EventExpr::or([]), EventExpr::False);
    }

    #[test]
    fn dedup_and_flatten() {
        let a = EventExpr::atom(v(0), 0);
        let b = EventExpr::atom(v(1), 0);
        let nested = EventExpr::and([a.clone(), EventExpr::and([a.clone(), b.clone()])]);
        match &nested {
            EventExpr::And(kids) => assert_eq!(kids.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        // Canonical order: same expression irrespective of argument order.
        assert_eq!(
            EventExpr::and([b.clone(), a.clone()]),
            EventExpr::and([a, b])
        );
    }

    #[test]
    fn complement_cancellation() {
        let a = EventExpr::atom(v(0), 0);
        let na = EventExpr::not(a.clone());
        assert_eq!(EventExpr::and([a.clone(), na.clone()]), EventExpr::False);
        assert_eq!(EventExpr::or([a.clone(), na.clone()]), EventExpr::True);
        assert_eq!(EventExpr::not(na), a);
    }

    #[test]
    fn atom_mutual_exclusion_in_and() {
        let a0 = EventExpr::atom(v(0), 0);
        let a1 = EventExpr::atom(v(0), 1);
        assert_eq!(EventExpr::and([a0.clone(), a1]), EventExpr::False);
        // Same alternative twice is just the atom.
        assert_eq!(EventExpr::and([a0.clone(), a0.clone()]), a0);
    }

    #[test]
    fn single_child_unwraps() {
        let a = EventExpr::atom(v(0), 0);
        assert_eq!(EventExpr::and([a.clone()]), a);
        assert_eq!(EventExpr::or([a.clone()]), a);
    }

    #[test]
    fn support_collects_vars() {
        let e = EventExpr::or([
            EventExpr::and([EventExpr::atom(v(0), 0), EventExpr::atom(v(2), 1)]),
            EventExpr::not(EventExpr::atom(v(1), 0)),
        ]);
        let s = e.support();
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn restrict_substitutes_outcomes() {
        let a = EventExpr::atom(v(0), 0);
        let b = EventExpr::atom(v(1), 0);
        let e = EventExpr::and([a, b.clone()]);
        assert_eq!(e.restrict(v(0), 0), b);
        assert_eq!(e.restrict(v(0), 1), EventExpr::False);
        // Residual outcome of a choice var kills all its atoms.
        let c = EventExpr::or([EventExpr::atom(v(2), 0), EventExpr::atom(v(2), 1)]);
        assert_eq!(c.restrict(v(2), 2), EventExpr::False);
    }

    #[test]
    fn size_counts_nodes() {
        let a = EventExpr::atom(v(0), 0);
        let e = EventExpr::or([a.clone(), EventExpr::not(EventExpr::atom(v(1), 0))]);
        assert_eq!(a.size(), 1);
        assert_eq!(e.size(), 4); // or + atom + not + atom
    }

    #[test]
    fn display_without_universe() {
        let e = EventExpr::and([EventExpr::atom(v(0), 0), EventExpr::atom(v(1), 2)]);
        let s = e.to_string();
        assert!(s.contains("v0"), "{s}");
        assert!(s.contains("v1=2"), "{s}");
    }

    #[test]
    fn display_with_universe_uses_names() {
        let mut u = Universe::new();
        let rain = u.add_bool("rain", 0.5).unwrap();
        let room = u.add_choice("room", &[0.4, 0.6]).unwrap();
        let e = EventExpr::or([u.atom(rain, 0).unwrap(), u.atom(room, 1).unwrap()]);
        let s = e.display(&u).to_string();
        assert!(s.contains("rain"), "{s}");
        assert!(s.contains("room=1"), "{s}");
    }
}
