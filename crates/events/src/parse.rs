//! Text syntax for event expressions, round-tripping with the `Display`
//! implementation of [`EventExpr`]:
//!
//! ```text
//! expr  := disj
//! disj  := conj ( ('∨' | '|' | 'or') conj )*
//! conj  := unary ( ('∧' | '&' | 'and') unary )*
//! unary := ('¬' | '!' | 'not') unary | primary
//! primary := '(' expr ')' | '⊤' | 'true' | '⊥' | 'false'
//!          | name ( '=' alt )?
//! ```
//!
//! Names resolve against a [`Universe`]; `name` alone means alternative 0
//! (the boolean-variable shorthand the printer also uses). This gives event
//! expressions a durable external form — rule repositories and debug dumps
//! can be written down and read back.

use crate::{EventError, EventExpr, Result, Universe};

/// Parses an event expression against the variables of `universe`.
pub fn parse_event(input: &str, universe: &Universe) -> Result<EventExpr> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        universe,
    };
    let e = p.disj()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(e)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    Number(u16),
    And,
    Or,
    Not,
    True,
    False,
    Eq,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '=' => {
                chars.next();
                out.push(Tok::Eq);
            }
            '∧' | '&' => {
                chars.next();
                out.push(Tok::And);
            }
            '∨' | '|' => {
                chars.next();
                out.push(Tok::Or);
            }
            '¬' | '!' => {
                chars.next();
                out.push(Tok::Not);
            }
            '⊤' => {
                chars.next();
                out.push(Tok::True);
            }
            '⊥' => {
                chars.next();
                out.push(Tok::False);
            }
            '`' => {
                chars.next();
                let mut name = String::new();
                loop {
                    match chars.next() {
                        Some('`') => break,
                        Some(c) => name.push(c),
                        None => {
                            return Err(EventError::Parse(
                                "unterminated backtick-quoted name".into(),
                            ))
                        }
                    }
                }
                out.push(Tok::Name(name));
            }
            c if c.is_ascii_digit() => {
                let mut n: u32 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + v;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Number(u16::try_from(n).map_err(|_| {
                    EventError::BadProbability {
                        value: f64::from(n),
                        what: "alternative index".into(),
                    }
                })?));
            }
            c if is_name_char(c) => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if is_name_char(d) || d.is_ascii_digit() {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(match name.to_ascii_lowercase().as_str() {
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Name(name),
                });
            }
            other => return Err(EventError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

pub(crate) fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() && !c.is_ascii_digit() || matches!(c, '_' | '-' | ':' | '~' | '#' | '.')
}

struct Parser<'u> {
    tokens: Vec<Tok>,
    pos: usize,
    universe: &'u Universe,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> EventError {
        EventError::Parse(message.to_string())
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.tokens.get(self.pos) == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn disj(&mut self) -> Result<EventExpr> {
        let mut parts = vec![self.conj()?];
        while self.eat(&Tok::Or) {
            parts.push(self.conj()?);
        }
        Ok(EventExpr::or(parts))
    }

    fn conj(&mut self) -> Result<EventExpr> {
        let mut parts = vec![self.unary()?];
        while self.eat(&Tok::And) {
            parts.push(self.unary()?);
        }
        Ok(EventExpr::and(parts))
    }

    fn unary(&mut self) -> Result<EventExpr> {
        if self.eat(&Tok::Not) {
            return Ok(EventExpr::not(self.unary()?));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<EventExpr> {
        match self.tokens.get(self.pos).cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.disj()?;
                if !self.eat(&Tok::RParen) {
                    return Err(self.error("expected `)`"));
                }
                Ok(inner)
            }
            Some(Tok::True) => {
                self.pos += 1;
                Ok(EventExpr::True)
            }
            Some(Tok::False) => {
                self.pos += 1;
                Ok(EventExpr::False)
            }
            Some(Tok::Name(name)) => {
                self.pos += 1;
                let var = self
                    .universe
                    .var(&name)
                    .ok_or_else(|| self.error(&format!("unknown variable `{name}`")))?;
                let alt = if self.eat(&Tok::Eq) {
                    match self.tokens.get(self.pos).cloned() {
                        Some(Tok::Number(n)) => {
                            self.pos += 1;
                            n
                        }
                        _ => return Err(self.error("expected an alternative index after `=`")),
                    }
                } else {
                    0
                };
                self.universe.atom(var, alt)
            }
            _ => Err(self.error("expected an event")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluator;

    fn universe() -> Universe {
        let mut u = Universe::new();
        u.add_bool("rain", 0.3).unwrap();
        u.add_bool("cold", 0.5).unwrap();
        u.add_choice("room", &[0.5, 0.3, 0.2]).unwrap();
        u
    }

    #[test]
    fn parses_ascii_and_unicode_forms() {
        let u = universe();
        for s in ["rain and not cold", "rain ∧ ¬cold", "rain & !cold"] {
            let e = parse_event(s, &u).unwrap();
            let mut ev = Evaluator::new(&u);
            assert!((ev.prob(&e) - 0.15).abs() < 1e-12, "{s}");
        }
    }

    #[test]
    fn choice_alternatives_and_constants() {
        let u = universe();
        let e = parse_event("room=1 or room=2", &u).unwrap();
        let mut ev = Evaluator::new(&u);
        assert!((ev.prob(&e) - 0.5).abs() < 1e-12);
        assert_eq!(parse_event("true", &u).unwrap(), EventExpr::True);
        assert_eq!(parse_event("⊥", &u).unwrap(), EventExpr::False);
    }

    #[test]
    fn precedence_and_parentheses() {
        let u = universe();
        let e1 = parse_event("rain or cold and room=0", &u).unwrap();
        let e2 = parse_event("rain or (cold and room=0)", &u).unwrap();
        assert_eq!(e1, e2);
        let e3 = parse_event("(rain or cold) and room=0", &u).unwrap();
        assert_ne!(e1, e3);
    }

    #[test]
    fn display_round_trip() {
        let u = universe();
        let inputs = [
            "rain ∧ ¬cold",
            "room=1 ∨ (rain ∧ room=0)",
            "¬(rain ∨ cold)",
            "⊤",
        ];
        for s in inputs {
            let e = parse_event(s, &u).unwrap();
            let printed = e.display(&u).to_string();
            let reparsed = parse_event(&printed, &u).unwrap();
            assert_eq!(reparsed, e, "round trip failed: `{s}` → `{printed}`");
        }
    }

    #[test]
    fn backtick_quoted_names_round_trip() {
        let mut u = Universe::new();
        u.add_bool("r:hasGenre:Channel 5 news", 0.95).unwrap();
        let e = parse_event("`r:hasGenre:Channel 5 news`", &u).unwrap();
        let printed = e.display(&u).to_string();
        assert!(printed.starts_with('`'), "{printed}");
        assert_eq!(parse_event(&printed, &u).unwrap(), e);
        assert!(parse_event("`open", &u).is_err());
    }

    #[test]
    fn errors_are_reported() {
        let u = universe();
        assert!(parse_event("ghost", &u).is_err());
        assert!(parse_event("rain and", &u).is_err());
        assert!(parse_event("(rain", &u).is_err());
        assert!(parse_event("rain cold", &u).is_err());
        assert!(parse_event("room=9", &u).is_err(), "alt out of range");
        assert!(parse_event("room=", &u).is_err());
    }
}
