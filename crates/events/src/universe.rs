use std::collections::HashMap;

use crate::{EventError, EventExpr, Result, PROB_EPSILON};

/// Identifier of a discrete random variable inside a [`Universe`].
///
/// `VarId`s are only meaningful relative to the universe that created them;
/// mixing ids across universes is caught (fallibly) by bounds checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Raw index of this variable, usable as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct VarInfo {
    name: String,
    /// Probability of each declared alternative; mutually exclusive.
    alt_probs: Vec<f64>,
    /// Probability that none of the declared alternatives happens.
    residual: f64,
}

/// A registry of independent discrete random variables ("basic events").
///
/// The universe is the sample space over which [`EventExpr`]s are
/// interpreted. Two kinds of variables exist:
///
/// * **boolean** variables ([`Universe::add_bool`]) with one alternative
///   ("the event happens") — e.g. *the EPG labels this program
///   human-interest*;
/// * **choice** variables ([`Universe::add_choice`]) with several mutually
///   exclusive alternatives — e.g. *the user is in exactly one of five
///   rooms*. This is how the paper's requirement that correlations such as
///   "a person can only be at a single place at one moment" are modelled
///   without approximation.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    vars: Vec<VarInfo>,
    by_name: HashMap<String, VarId>,
    /// Monotonic version counter, bumped on every successful mutation.
    /// Variables are append-only and their probabilities immutable, so two
    /// universes derived from the same value with equal epochs hold exactly
    /// the same declarations.
    epoch: u64,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if no variables have been declared.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Monotonic mutation counter: bumped on every successful variable
    /// declaration. A cheap staleness check for caches layered on top —
    /// equal epochs on the same universe value mean nothing was added in
    /// between (declared probabilities are immutable, so no other change is
    /// possible).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn validate_prob(p: f64, what: &str) -> Result<()> {
        if !(p.is_finite() && (-PROB_EPSILON..=1.0 + PROB_EPSILON).contains(&p)) {
            return Err(EventError::BadProbability {
                value: p,
                what: what.to_string(),
            });
        }
        Ok(())
    }

    fn register(&mut self, name: &str, alt_probs: Vec<f64>) -> Result<VarId> {
        if self.by_name.contains_key(name) {
            return Err(EventError::DuplicateVariable(name.to_string()));
        }
        let sum: f64 = alt_probs.iter().sum();
        if sum > 1.0 + PROB_EPSILON {
            return Err(EventError::ProbabilitiesExceedOne {
                var: name.to_string(),
                sum,
            });
        }
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarInfo {
            name: name.to_string(),
            alt_probs,
            residual: (1.0 - sum).max(0.0),
        });
        self.by_name.insert(name.to_string(), id);
        self.epoch += 1;
        Ok(id)
    }

    /// Declares a boolean variable that is true with probability `p`.
    ///
    /// The returned id has a single alternative (index 0) representing "the
    /// event happens"; use [`Universe::atom`] or [`Universe::bool_event`] to
    /// obtain the corresponding expression.
    pub fn add_bool(&mut self, name: &str, p: f64) -> Result<VarId> {
        Self::validate_prob(p, name)?;
        self.register(name, vec![p.clamp(0.0, 1.0)])
    }

    /// Declares a choice variable with mutually exclusive alternatives.
    ///
    /// `probs[i]` is the probability of alternative `i`; the probabilities
    /// must sum to at most one. Any missing mass goes to an implicit
    /// *residual* outcome in which none of the alternatives holds.
    pub fn add_choice(&mut self, name: &str, probs: &[f64]) -> Result<VarId> {
        if probs.is_empty() {
            return Err(EventError::EmptyChoice(name.to_string()));
        }
        for (i, &p) in probs.iter().enumerate() {
            Self::validate_prob(p, &format!("{name}[{i}]"))?;
        }
        self.register(name, probs.iter().map(|p| p.clamp(0.0, 1.0)).collect())
    }

    /// Looks a variable up by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Name of a variable.
    pub fn name(&self, var: VarId) -> Result<&str> {
        self.info(var).map(|v| v.name.as_str())
    }

    fn info(&self, var: VarId) -> Result<&VarInfo> {
        self.vars
            .get(var.index())
            .ok_or(EventError::UnknownVariable(var.0))
    }

    /// Number of *declared* alternatives of `var` (excluding the residual).
    pub fn num_alts(&self, var: VarId) -> Result<usize> {
        self.info(var).map(|v| v.alt_probs.len())
    }

    /// Number of outcomes to enumerate for `var`: the declared alternatives
    /// plus the residual outcome when it has nonzero probability.
    pub fn num_outcomes(&self, var: VarId) -> Result<usize> {
        let info = self.info(var)?;
        Ok(info.alt_probs.len() + usize::from(info.residual > PROB_EPSILON))
    }

    /// Probability of outcome `o` of `var` (outcome indices as in
    /// [`Universe::num_outcomes`]: declared alternatives first, residual
    /// last).
    pub fn outcome_prob(&self, var: VarId, o: usize) -> Result<f64> {
        let info = self.info(var)?;
        if o < info.alt_probs.len() {
            Ok(info.alt_probs[o])
        } else if o == info.alt_probs.len() {
            Ok(info.residual)
        } else {
            Err(EventError::AltOutOfRange {
                var: info.name.clone(),
                alt: o as u16,
                num_alts: info.alt_probs.len(),
            })
        }
    }

    /// Probability of the atom `var = alt`.
    pub fn alt_prob(&self, var: VarId, alt: u16) -> Result<f64> {
        let info = self.info(var)?;
        info.alt_probs
            .get(alt as usize)
            .copied()
            .ok_or_else(|| EventError::AltOutOfRange {
                var: info.name.clone(),
                alt,
                num_alts: info.alt_probs.len(),
            })
    }

    /// Builds the atomic event expression `var = alt`, bounds-checked.
    pub fn atom(&self, var: VarId, alt: u16) -> Result<EventExpr> {
        // Validate the reference before constructing.
        self.alt_prob(var, alt)?;
        Ok(EventExpr::atom(var, alt))
    }

    /// Builds the event "boolean variable `var` is true" (alternative 0).
    pub fn bool_event(&self, var: VarId) -> Result<EventExpr> {
        self.atom(var, 0)
    }

    /// Iterates over all variable ids in declaration order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(|i| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_variable_roundtrip() {
        let mut u = Universe::new();
        let v = u.add_bool("rain", 0.3).unwrap();
        assert_eq!(u.var("rain"), Some(v));
        assert_eq!(u.name(v).unwrap(), "rain");
        assert_eq!(u.num_alts(v).unwrap(), 1);
        assert_eq!(u.num_outcomes(v).unwrap(), 2);
        assert!((u.outcome_prob(v, 0).unwrap() - 0.3).abs() < 1e-12);
        assert!((u.outcome_prob(v, 1).unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn certain_bool_has_single_outcome() {
        let mut u = Universe::new();
        let v = u.add_bool("sure", 1.0).unwrap();
        assert_eq!(u.num_outcomes(v).unwrap(), 1);
    }

    #[test]
    fn choice_variable_with_residual() {
        let mut u = Universe::new();
        let v = u.add_choice("room", &[0.5, 0.3]).unwrap();
        assert_eq!(u.num_alts(v).unwrap(), 2);
        assert_eq!(u.num_outcomes(v).unwrap(), 3);
        assert!((u.outcome_prob(v, 2).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn choice_variable_exact_partition() {
        let mut u = Universe::new();
        let v = u.add_choice("coin", &[0.5, 0.5]).unwrap();
        assert_eq!(u.num_outcomes(v).unwrap(), 2);
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut u = Universe::new();
        assert!(matches!(
            u.add_bool("x", 1.5),
            Err(EventError::BadProbability { .. })
        ));
        assert!(matches!(
            u.add_bool("x", -0.1),
            Err(EventError::BadProbability { .. })
        ));
        assert!(matches!(
            u.add_bool("x", f64::NAN),
            Err(EventError::BadProbability { .. })
        ));
        assert!(matches!(
            u.add_choice("y", &[0.7, 0.7]),
            Err(EventError::ProbabilitiesExceedOne { .. })
        ));
        assert!(matches!(
            u.add_choice("z", &[]),
            Err(EventError::EmptyChoice(_))
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut u = Universe::new();
        u.add_bool("x", 0.5).unwrap();
        assert!(matches!(
            u.add_bool("x", 0.1),
            Err(EventError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn atom_bounds_checked() {
        let mut u = Universe::new();
        let v = u.add_choice("room", &[0.5, 0.5]).unwrap();
        assert!(u.atom(v, 1).is_ok());
        assert!(matches!(
            u.atom(v, 2),
            Err(EventError::AltOutOfRange { .. })
        ));
        assert!(matches!(
            u.outcome_prob(v, 5),
            Err(EventError::AltOutOfRange { .. })
        ));
    }

    #[test]
    fn epoch_counts_successful_mutations_only() {
        let mut u = Universe::new();
        assert_eq!(u.epoch(), 0);
        u.add_bool("a", 0.5).unwrap();
        assert_eq!(u.epoch(), 1);
        u.add_choice("b", &[0.2, 0.3]).unwrap();
        assert_eq!(u.epoch(), 2);
        // Failed declarations leave the epoch untouched.
        assert!(u.add_bool("a", 0.1).is_err());
        assert!(u.add_bool("c", 1.5).is_err());
        assert_eq!(u.epoch(), 2);
    }

    #[test]
    fn unknown_var_detected() {
        let u = Universe::new();
        assert!(matches!(
            u.name(VarId(3)),
            Err(EventError::UnknownVariable(3))
        ));
    }
}
