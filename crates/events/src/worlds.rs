//! Brute-force possible-world enumeration.
//!
//! A *world* assigns an outcome to every variable in (a subset of) the
//! universe. Enumeration is exponential and exists for two purposes:
//!
//! * as the **testing oracle** against which the exact evaluator and the
//!   factorised scoring engines are verified, and
//! * as the computational core of the paper's **naive implementation**
//!   (Section 5), which enumerates every combination of context features and
//!   document features — the behaviour whose exponential blow-up the paper
//!   measures.

use std::collections::BTreeSet;

use crate::{EventExpr, Universe, VarId};

/// An assignment of outcomes to a fixed list of variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    vars: Vec<VarId>,
    outcomes: Vec<usize>,
}

impl World {
    /// The outcome assigned to `var`, if `var` is part of this world.
    pub fn outcome(&self, var: VarId) -> Option<usize> {
        self.vars
            .iter()
            .position(|&v| v == var)
            .map(|i| self.outcomes[i])
    }

    /// Evaluates an event expression in this world. Variables outside the
    /// world's scope make the result `None`.
    pub fn eval(&self, expr: &EventExpr) -> Option<bool> {
        match expr {
            EventExpr::True => Some(true),
            EventExpr::False => Some(false),
            EventExpr::Atom(a) => self.outcome(a.var).map(|o| o == a.alt as usize),
            EventExpr::Not(inner) => self.eval(inner).map(|b| !b),
            EventExpr::And(kids) => {
                let mut all = true;
                for k in kids.iter() {
                    all &= self.eval(k)?;
                }
                Some(all)
            }
            EventExpr::Or(kids) => {
                let mut any = false;
                for k in kids.iter() {
                    any |= self.eval(k)?;
                }
                Some(any)
            }
        }
    }
}

/// Iterator over all worlds of a set of variables, with their probabilities.
///
/// The number of worlds is the product of the variables' outcome counts;
/// callers are responsible for keeping the variable set small.
pub struct Worlds<'u> {
    universe: &'u Universe,
    vars: Vec<VarId>,
    counts: Vec<usize>,
    /// Mixed-radix counter over outcomes; `None` once exhausted.
    next: Option<Vec<usize>>,
}

impl<'u> Worlds<'u> {
    /// Enumerates worlds over the given variables.
    pub fn over(universe: &'u Universe, vars: impl IntoIterator<Item = VarId>) -> Self {
        let vars: Vec<VarId> = vars.into_iter().collect();
        let counts: Vec<usize> = vars
            .iter()
            .map(|&v| {
                universe
                    .num_outcomes(v)
                    .expect("world variable outside universe")
            })
            .collect();
        let next = if counts.iter().all(|&c| c > 0) {
            Some(vec![0; vars.len()])
        } else {
            None
        };
        Self {
            universe,
            vars,
            counts,
            next,
        }
    }

    /// Enumerates worlds over the support of `expr`.
    pub fn of_expr(universe: &'u Universe, expr: &EventExpr) -> Self {
        Self::over(universe, expr.support())
    }

    /// Enumerates worlds over the union of the supports of several exprs.
    pub fn of_exprs<'a>(
        universe: &'u Universe,
        exprs: impl IntoIterator<Item = &'a EventExpr>,
    ) -> Self {
        let mut support = BTreeSet::new();
        for e in exprs {
            e.collect_support(&mut support);
        }
        Self::over(universe, support)
    }

    /// Total number of worlds this iterator will yield.
    pub fn world_count(&self) -> u128 {
        self.counts.iter().map(|&c| c as u128).product()
    }
}

impl Iterator for Worlds<'_> {
    type Item = (World, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.next.clone()?;
        // Advance the mixed-radix counter.
        let mut bump = current.clone();
        let mut i = bump.len();
        self.next = loop {
            if i == 0 {
                break None;
            }
            i -= 1;
            bump[i] += 1;
            if bump[i] < self.counts[i] {
                break Some(bump);
            }
            bump[i] = 0;
        };
        let mut p = 1.0;
        for (idx, &o) in current.iter().enumerate() {
            p *= self
                .universe
                .outcome_prob(self.vars[idx], o)
                .expect("outcome in range");
        }
        Some((
            World {
                vars: self.vars.clone(),
                outcomes: current,
            },
            p,
        ))
    }
}

/// Probability of `expr` by brute-force enumeration (testing oracle).
pub fn brute_force_prob(universe: &Universe, expr: &EventExpr) -> f64 {
    Worlds::of_expr(universe, expr)
        .filter(|(w, _)| w.eval(expr).expect("support covers expr"))
        .map(|(_, p)| p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_support_yields_single_world() {
        let u = Universe::new();
        let worlds: Vec<_> = Worlds::of_expr(&u, &EventExpr::True).collect();
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].1, 1.0);
        assert_eq!(worlds[0].0.eval(&EventExpr::True), Some(true));
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let b = u.add_choice("b", &[0.2, 0.5]).unwrap();
        let total: f64 = Worlds::over(&u, [a, b]).map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(Worlds::over(&u, [a, b]).world_count(), 6);
    }

    #[test]
    fn brute_force_simple_events() {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let b = u.add_bool("b", 0.5).unwrap();
        let ea = u.bool_event(a).unwrap();
        let eb = u.bool_event(b).unwrap();
        assert!((brute_force_prob(&u, &ea) - 0.3).abs() < 1e-12);
        let both = EventExpr::and([ea.clone(), eb.clone()]);
        assert!((brute_force_prob(&u, &both) - 0.15).abs() < 1e-12);
        let either = EventExpr::or([ea, eb]);
        assert!((brute_force_prob(&u, &either) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn eval_returns_none_outside_scope() {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let b = u.add_bool("b", 0.5).unwrap();
        let eb = u.bool_event(b).unwrap();
        let (world, _) = Worlds::over(&u, [a]).next().unwrap();
        assert_eq!(world.eval(&eb), None);
    }

    #[test]
    fn figure1_neither_bulletin() {
        // The paper's Figure 1: traffic 80%, weather 60% on workday
        // mornings; P(neither) = 0.2 · 0.4 = 0.08.
        let mut u = Universe::new();
        let traffic = u.add_bool("traffic", 0.8).unwrap();
        let weather = u.add_bool("weather", 0.6).unwrap();
        let neither = EventExpr::and([
            EventExpr::not(u.bool_event(traffic).unwrap()),
            EventExpr::not(u.bool_event(weather).unwrap()),
        ]);
        assert!((brute_force_prob(&u, &neither) - 0.08).abs() < 1e-12);
    }
}
