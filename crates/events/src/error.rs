use std::fmt;

/// Errors raised while building universes or event expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum EventError {
    /// A probability was outside `[0, 1]`.
    BadProbability {
        /// The offending value.
        value: f64,
        /// What the value was supposed to describe.
        what: String,
    },
    /// The alternative probabilities of a choice variable sum to more than 1.
    ProbabilitiesExceedOne {
        /// Name of the variable being declared.
        var: String,
        /// The sum of the supplied alternative probabilities.
        sum: f64,
    },
    /// A variable name was registered twice.
    DuplicateVariable(String),
    /// A [`crate::VarId`] did not belong to the universe it was used with.
    UnknownVariable(u32),
    /// An atom referenced an alternative index the variable does not have.
    AltOutOfRange {
        /// The variable whose alternative was referenced.
        var: String,
        /// The out-of-range alternative index.
        alt: u16,
        /// Number of declared alternatives.
        num_alts: usize,
    },
    /// A choice variable was declared with no alternatives.
    EmptyChoice(String),
    /// Syntax error while parsing an event expression.
    Parse(String),
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::BadProbability { value, what } => {
                write!(f, "probability {value} for {what} is outside [0, 1]")
            }
            EventError::ProbabilitiesExceedOne { var, sum } => write!(
                f,
                "alternative probabilities of variable `{var}` sum to {sum} > 1"
            ),
            EventError::DuplicateVariable(name) => {
                write!(f, "variable `{name}` is already declared")
            }
            EventError::UnknownVariable(idx) => {
                write!(f, "variable id {idx} does not belong to this universe")
            }
            EventError::AltOutOfRange { var, alt, num_alts } => write!(
                f,
                "alternative {alt} out of range for variable `{var}` ({num_alts} alternatives)"
            ),
            EventError::EmptyChoice(name) => {
                write!(f, "choice variable `{name}` needs at least one alternative")
            }
            EventError::Parse(message) => write!(f, "event syntax error: {message}"),
        }
    }
}

impl std::error::Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EventError::BadProbability {
            value: 1.5,
            what: "sensor reading".into(),
        };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("sensor reading"));

        let e = EventError::AltOutOfRange {
            var: "room".into(),
            alt: 9,
            num_alts: 5,
        };
        assert!(e.to_string().contains("room"));
        assert!(e.to_string().contains('9'));
    }
}
