//! Generic bounded snapshot-tier chains — the shared LSM-flavoured
//! machinery behind [`crate::FrozenEvalCache`] and
//! [`crate::FrozenExpectCache`].
//!
//! A *chain* is a short immutable linked list of **tiers** (newest first),
//! each holding one batch of memo entries published together. Publishing
//! normally just pushes a new tier sharing the rest of the chain via `Arc`
//! — O(new entries), no copy of the accumulated state. When the chain
//! reaches `MAX_CHAIN` tiers, the *young* tiers are compacted into one
//! over the shared root, and only when the young state rivals the root's
//! size is everything folded into a new root: the
//! big tier is recopied once per size doubling, so total copying stays
//! linear in the snapshot's final size while lookups stay at a handful of
//! O(1) probes.
//!
//! **Epoch tags and eviction.** Every tier records the binding epoch
//! (`Kb::binding_epoch` in the core crate) current when its entries were
//! published. Memo entries are written exactly once — lookup hits never
//! rewrite them — so a pushed tier's tag says when *all* of its entries
//! were computed; compactions and folds keep the **oldest** surviving
//! constituent's tag, so a merged tier keeps ageing from its oldest
//! content instead of being rejuvenated by the recopy. An
//! [`EvictionPolicy`] turns those tags into liveness: whenever a
//! compaction or fold rewrites the chain anyway, tiers that went
//! unrefreshed for more than the allowed number of epochs are dropped
//! instead of recopied. Entries for superseded facts (re-asserted facts
//! mint fresh variables, so their old expressions are never looked up
//! again) age out this way; a still-live entry that is evicted with its
//! tier is simply recomputed on its next miss — bit-identically, every
//! value being a pure function of its hash-consed key — so eviction can
//! never change a score, only trade memory for an occasional recompute.

use std::sync::Arc;

/// How many frozen tiers a snapshot chain may accumulate before a republish
/// compacts it. Bounds every lookup at `MAX_CHAIN + 1` O(1) map probes.
pub(crate) const MAX_CHAIN: usize = 4;

/// What a republish does to a snapshot chain — one policy shared by every
/// [`TierChain`] instantiation, kept in a single function
/// ([`chain_action`]) so the caches cannot silently diverge.
///
/// The policy is LSM-flavoured: young tiers are cheap to push and compact,
/// while the big root tier is recopied only when the accumulated young
/// state rivals its size — i.e. once per size doubling — so the recurring
/// republish cost is proportional to the *young* tiers, not the whole
/// snapshot, and total copying stays linear in the final snapshot size.
pub(crate) enum ChainAction {
    /// No usable base: the new entries become a flat root tier.
    Root,
    /// Chain has room: push the new entries as a tier on top of the base.
    Push,
    /// Chain is at [`MAX_CHAIN`] but the young tiers are still small:
    /// merge them with the new entries into one tier over the shared root.
    Compact,
    /// The young state rivals the root: fold everything into a new root.
    Fold,
}

/// Chooses the [`ChainAction`] for a republish, from the base chain's
/// shape (`depth`, young-tier entry count, root entry count, base
/// emptiness) and the size of the incoming entries.
pub(crate) fn chain_action(
    base_is_empty: bool,
    depth: usize,
    young_len: usize,
    root_len: usize,
    new_len: usize,
) -> ChainAction {
    if base_is_empty {
        ChainAction::Root
    } else if depth < MAX_CHAIN {
        ChainAction::Push
    } else if young_len + new_len >= root_len {
        ChainAction::Fold
    } else {
        ChainAction::Compact
    }
}

/// When a snapshot-tier chain drops tiers (see the module docs).
///
/// Age is measured in **binding epochs**: the distance between the epoch a
/// republish runs under and the epoch tagged on a tier when its entries
/// were published. A stable KB never advances its binding epoch, so every
/// tier's age stays zero and *no* policy evicts anything there — warm hit
/// rates on stable-KB workloads are bit-identical to the pre-eviction
/// behaviour regardless of the policy chosen.
///
/// ```
/// use capra_events::EvictionPolicy;
///
/// assert_eq!(
///     EvictionPolicy::default(),
///     EvictionPolicy::MaxAge(EvictionPolicy::DEFAULT_MAX_AGE),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Keep every tier for the life of the chain (the pre-eviction
    /// behaviour: snapshots only ever grow while a KB identity lives).
    Never,
    /// Drop tiers whose entries went unrefreshed for more than this many
    /// binding epochs, whenever a compaction or fold rewrites the chain
    /// anyway. `MaxAge(0)` keeps only entries of the current epoch.
    MaxAge(u64),
}

impl EvictionPolicy {
    /// Default age limit for [`EvictionPolicy::MaxAge`]: generous enough
    /// that serving loops which mutate a handful of facts per call keep
    /// their memos warm across tens of calls, small enough that a
    /// mutate-every-call loop's footprint stays flat instead of growing
    /// for the life of the KB.
    pub const DEFAULT_MAX_AGE: u64 = 64;

    /// True if a tier tagged `tier_epoch` survives a rewrite at `now`.
    pub(crate) fn keeps(self, tier_epoch: u64, now: u64) -> bool {
        match self {
            EvictionPolicy::Never => true,
            EvictionPolicy::MaxAge(age) => now.saturating_sub(tier_epoch) <= age,
        }
    }
}

impl Default for EvictionPolicy {
    /// [`EvictionPolicy::MaxAge`] at [`EvictionPolicy::DEFAULT_MAX_AGE`].
    fn default() -> Self {
        Self::MaxAge(Self::DEFAULT_MAX_AGE)
    }
}

/// Aggregate size of a memo cache: its snapshot chains plus any private
/// overlay, as reported by the `footprint()` methods across the stack
/// (frozen caches, `EvalScratch`, `ScratchPool`, sessions, services).
///
/// Footprints aggregate component-wise with `+` or [`std::iter::Sum`]:
///
/// ```
/// use capra_events::CacheFootprint;
///
/// let a = CacheFootprint { tiers: 1, entries: 10, pinned_nodes: 2 };
/// let b = CacheFootprint { tiers: 2, entries: 5, pinned_nodes: 1 };
/// let total: CacheFootprint = [a, b].into_iter().sum();
/// assert_eq!(total, a + b);
/// assert_eq!(total.entries, 15);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheFootprint {
    /// Frozen snapshot tiers currently holding at least one entry.
    pub tiers: usize,
    /// Memo entries across all tiers and private overlays. An upper bound
    /// on distinct entries: a key shadowed in several tiers counts once
    /// per tier (shadowed values are bit-identical by construction).
    pub entries: usize,
    /// Estimated hash-consed expression nodes pinned alive in the
    /// process-global interner by those entries' keys (each key counts the
    /// composite nodes it holds directly; transitively shared subtrees are
    /// not walked).
    pub pinned_nodes: usize,
}

impl std::ops::Add for CacheFootprint {
    type Output = CacheFootprint;

    fn add(self, other: CacheFootprint) -> CacheFootprint {
        CacheFootprint {
            tiers: self.tiers + other.tiers,
            entries: self.entries + other.entries,
            pinned_nodes: self.pinned_nodes + other.pinned_nodes,
        }
    }
}

impl std::ops::AddAssign for CacheFootprint {
    fn add_assign(&mut self, other: CacheFootprint) {
        *self = *self + other;
    }
}

impl std::iter::Sum for CacheFootprint {
    /// Component-wise total over any number of footprints — what a serving
    /// layer uses to aggregate per-cache reports into one fleet-wide gauge.
    fn sum<I: Iterator<Item = CacheFootprint>>(iter: I) -> CacheFootprint {
        iter.fold(CacheFootprint::default(), |acc, f| acc + f)
    }
}

/// One tier's worth of entries: the payload a [`TierChain`] stacks,
/// compacts and folds. Implementations are plain bundles of memo maps —
/// all merge semantics live here, so the chain mechanics stay generic.
pub trait TierPayload: Default + Clone {
    /// Number of entries that count toward the chain-shape policy (the
    /// count the chain-shape policy weighs young state against the root by).
    fn len(&self) -> usize;

    /// True if the payload holds nothing at all. May be stricter than
    /// `len() == 0` when the payload tracks entries [`TierPayload::len`]
    /// does not count (e.g. pivot-cache entries).
    fn is_empty(&self) -> bool;

    /// Merges `newer` into `self`, newer entries shadowing. Shared keys
    /// carry bit-identical values per the determinism contract of the
    /// frozen caches, so the shadowing direction cannot change results.
    fn absorb(&mut self, newer: Self);
}

/// An immutable chain of snapshot tiers, newest first (see module docs).
/// [`crate::FrozenEvalCache`] and [`crate::FrozenExpectCache`] are
/// instantiations of this chain over their respective memo payloads.
pub struct TierChain<P> {
    /// This tier's entries.
    pub(crate) payload: P,
    /// Binding epoch current when this tier's entries were published;
    /// compactions and folds keep the oldest surviving constituent's tag
    /// (see the module docs). 0 when the chain is not epoch-tracked.
    pub(crate) epoch: u64,
    /// Older tier this one extends (`None` for a flat/root tier).
    pub(crate) parent: Option<Arc<TierChain<P>>>,
    /// Chain length including this tier.
    pub(crate) depth: usize,
}

impl<P: TierPayload> Default for TierChain<P> {
    fn default() -> Self {
        Self {
            payload: P::default(),
            epoch: 0,
            parent: None,
            depth: 1,
        }
    }
}

impl<P: TierPayload> TierChain<P> {
    /// The chain of tiers, newest first.
    pub(crate) fn tiers(&self) -> impl Iterator<Item = &TierChain<P>> {
        std::iter::successors(Some(self), |t| t.parent.as_deref())
    }

    /// Policy-counted entries across all tiers (keys shadowed in several
    /// tiers count once per tier — an upper bound on distinct entries).
    pub(crate) fn entry_count(&self) -> usize {
        self.tiers().map(|t| t.payload.len()).sum()
    }

    /// True if no tier holds any payload entry.
    pub(crate) fn payloads_empty(&self) -> bool {
        self.tiers().all(|t| t.payload.is_empty())
    }

    /// Number of tiers currently holding at least one entry.
    pub(crate) fn occupied_tiers(&self) -> usize {
        self.tiers().filter(|t| !t.payload.is_empty()).count()
    }

    /// The oldest tier of the chain, as an owned handle.
    pub(crate) fn root_arc(self: &Arc<Self>) -> Arc<Self> {
        let mut root = Arc::clone(self);
        while let Some(parent) = &root.parent {
            let parent = Arc::clone(parent);
            root = parent;
        }
        root
    }

    /// A flat single-tier chain.
    fn root_tier(payload: P, epoch: u64) -> Arc<Self> {
        Arc::new(Self {
            payload,
            epoch,
            parent: None,
            depth: 1,
        })
    }

    /// Merges `newest_first` tiers under `newest` into one payload (older
    /// entries first, newer shadowing), returning it with the **oldest**
    /// surviving constituent's epoch tag.
    fn fold_tiers(newest_first: &[&Self], newest: P, epoch: u64) -> (P, u64) {
        let Some(oldest) = newest_first.last() else {
            return (newest, epoch);
        };
        let mut acc = oldest.payload.clone();
        for tier in newest_first[..newest_first.len() - 1].iter().rev() {
            acc.absorb(tier.payload.clone());
        }
        acc.absorb(newest);
        (acc, oldest.epoch)
    }

    /// Publishes `payload` — the merged overlays of one run, tagged with
    /// the current binding `epoch` — on top of `base`, choosing
    /// push/compact/fold per [`chain_action`]. Whenever a compaction or
    /// fold rewrites the chain anyway, tiers `policy` considers stale at
    /// `epoch` are dropped instead of recopied; epoch tags are
    /// non-increasing from newest to oldest tier, so stale tiers always
    /// form a suffix of the chain and eviction is a truncation.
    ///
    /// Callers handle their cache-specific "nothing new" fast path (empty
    /// payload → reuse `base` untouched) *before* calling this.
    pub(crate) fn publish(
        base: Option<&Arc<Self>>,
        payload: P,
        epoch: u64,
        policy: EvictionPolicy,
    ) -> Arc<Self> {
        let Some(base) = base else {
            return Self::root_tier(payload, epoch);
        };
        let root_len = base.root_arc().payload.len();
        let action = chain_action(
            base.payloads_empty(),
            base.depth,
            base.entry_count() - root_len,
            root_len,
            payload.len(),
        );
        match action {
            ChainAction::Root => Self::root_tier(payload, epoch),
            ChainAction::Push => Arc::new(Self {
                payload,
                epoch,
                parent: Some(Arc::clone(base)),
                depth: base.depth + 1,
            }),
            ChainAction::Compact => {
                // Young tiers (everything above the root) merge with the
                // new entries into one tier over the shared root — except
                // stale young tiers, which are dropped rather than
                // recopied. A stale root is dropped the same way, making
                // the compacted tier the new root.
                let young: Vec<&Self> = base
                    .tiers()
                    .take(base.depth - 1)
                    .take_while(|t| policy.keeps(t.epoch, epoch))
                    .collect();
                let (merged, tag) = Self::fold_tiers(&young, payload, epoch);
                let root = base.root_arc();
                if policy.keeps(root.epoch, epoch) {
                    Arc::new(Self {
                        payload: merged,
                        epoch: tag,
                        parent: Some(root),
                        depth: 2,
                    })
                } else {
                    Self::root_tier(merged, tag)
                }
            }
            ChainAction::Fold => {
                let live: Vec<&Self> = base
                    .tiers()
                    .take_while(|t| policy.keeps(t.epoch, epoch))
                    .collect();
                let (merged, tag) = Self::fold_tiers(&live, payload, epoch);
                Self::root_tier(merged, tag)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Minimal payload: a plain map, as the frozen caches use.
    #[derive(Default, Clone)]
    struct TestTier(HashMap<u32, u32>);

    impl TierPayload for TestTier {
        fn len(&self) -> usize {
            self.0.len()
        }

        fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        fn absorb(&mut self, newer: Self) {
            self.0.extend(newer.0);
        }
    }

    fn tier(entries: &[(u32, u32)]) -> TestTier {
        TestTier(entries.iter().copied().collect())
    }

    fn get(chain: &TierChain<TestTier>, key: u32) -> Option<u32> {
        chain.tiers().find_map(|t| t.payload.0.get(&key).copied())
    }

    #[test]
    fn policy_keeps_by_epoch_distance() {
        assert!(EvictionPolicy::Never.keeps(0, u64::MAX));
        let p = EvictionPolicy::MaxAge(3);
        assert!(p.keeps(7, 10));
        assert!(!p.keeps(6, 10));
        assert!(p.keeps(10, 10));
        // Epochs from the future (clock reset across KBs) never underflow.
        assert!(p.keeps(10, 0));
    }

    #[test]
    fn pushes_then_compacts_at_max_chain() {
        let policy = EvictionPolicy::Never;
        // Big root, so small republishes compact instead of folding.
        let root: Vec<(u32, u32)> = (100..200).map(|k| (k, k)).collect();
        let mut chain = TierChain::publish(None, tier(&root), 0, policy);
        for i in 1..MAX_CHAIN as u32 {
            chain = TierChain::publish(Some(&chain), tier(&[(i, i)]), u64::from(i), policy);
            assert_eq!(chain.depth, i as usize + 1);
        }
        // One past MAX_CHAIN: young tiers compact over the shared root.
        let root_before = chain.root_arc();
        let next = MAX_CHAIN as u32;
        chain = TierChain::publish(Some(&chain), tier(&[(next, next)]), u64::from(next), policy);
        assert_eq!(chain.depth, 2);
        assert!(Arc::ptr_eq(&chain.root_arc(), &root_before));
        for i in 1..=next {
            assert_eq!(get(&chain, i), Some(i), "entry {i} survives compaction");
        }
        assert_eq!(get(&chain, 150), Some(150), "root entries still answer");
    }

    #[test]
    fn folds_when_young_rivals_root() {
        let policy = EvictionPolicy::Never;
        let chain = TierChain::publish(None, tier(&[(0, 0), (1, 1)]), 0, policy);
        let mut chain = chain;
        for gen in 0..8u32 {
            let k = 10 + gen;
            chain = TierChain::publish(Some(&chain), tier(&[(k, k)]), u64::from(gen), policy);
            assert!(chain.depth <= MAX_CHAIN);
        }
        // Everything published must still answer.
        for k in [0u32, 1, 10, 11, 12, 13, 14, 15, 16, 17] {
            assert_eq!(get(&chain, k), Some(k));
        }
    }

    #[test]
    fn compaction_tag_is_oldest_constituent() {
        let policy = EvictionPolicy::Never;
        // Big root so the chain compacts instead of folding.
        let root: Vec<(u32, u32)> = (100..200).map(|k| (k, k)).collect();
        let mut chain = TierChain::publish(None, tier(&root), 1, policy);
        for gen in 2..=(MAX_CHAIN as u64 + 1) {
            chain = TierChain::publish(Some(&chain), tier(&[(gen as u32, 0)]), gen, policy);
        }
        // The compacted young tier must age from its oldest content (epoch
        // 2, the first push), not from the compaction epoch.
        assert_eq!(chain.depth, 2);
        assert_eq!(chain.epoch, 2);
        assert_eq!(chain.root_arc().epoch, 1);
    }

    #[test]
    fn stale_tiers_evict_at_fold_and_compact() {
        let policy = EvictionPolicy::MaxAge(2);
        // Root published at epoch 0, then young tiers at 10, 11, 12: at the
        // next rewrite (epoch 13) the root and the epoch-10 tier are stale
        // (age > 2) while the 11/12 tiers are within the window.
        let mut chain = TierChain::publish(None, tier(&[(0, 0)]), 0, policy);
        for gen in [10u64, 11, 12] {
            chain = TierChain::publish(Some(&chain), tier(&[(gen as u32, 1)]), gen, policy);
        }
        assert_eq!(chain.depth, MAX_CHAIN);
        assert_eq!(get(&chain, 0), Some(0), "pushes never evict");
        chain = TierChain::publish(Some(&chain), tier(&[(13, 1)]), 13, policy);
        assert_eq!(chain.depth, 1, "full fold, stale root dropped");
        assert_eq!(get(&chain, 0), None, "stale root dropped at the rewrite");
        assert_eq!(get(&chain, 10), None, "stale young tier dropped too");
        for k in [11u32, 12, 13] {
            assert_eq!(get(&chain, k), Some(1), "fresh tier {k} survives");
        }
        // Filling the chain again far in the future ages everything out:
        // only tiers within the window of the final rewrite remain.
        for gen in [1000u64, 1001, 1002, 1003] {
            chain = TierChain::publish(Some(&chain), tier(&[(gen as u32, 2)]), gen, policy);
        }
        assert_eq!(chain.entry_count(), 3, "old root and stale push evicted");
        assert_eq!(get(&chain, 11), None);
        assert_eq!(get(&chain, 1000), None, "aged out of the final window");
        for k in [1001u32, 1002, 1003] {
            assert_eq!(get(&chain, k), Some(2));
        }
    }

    #[test]
    fn never_policy_never_drops() {
        let policy = EvictionPolicy::Never;
        let mut chain = TierChain::publish(None, tier(&[(0, 0)]), 0, policy);
        for gen in 1..32u64 {
            chain =
                TierChain::publish(Some(&chain), tier(&[(gen as u32, gen as u32)]), gen, policy);
            assert!(chain.depth <= MAX_CHAIN);
        }
        for k in 0..32u32 {
            assert_eq!(get(&chain, k), Some(k), "entry {k} retained forever");
        }
    }

    #[test]
    fn footprint_adds_componentwise() {
        let a = CacheFootprint {
            tiers: 1,
            entries: 10,
            pinned_nodes: 12,
        };
        let b = CacheFootprint {
            tiers: 2,
            entries: 3,
            pinned_nodes: 4,
        };
        assert_eq!(
            a + b,
            CacheFootprint {
                tiers: 3,
                entries: 13,
                pinned_nodes: 16,
            }
        );
    }
}
