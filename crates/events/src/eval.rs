use std::collections::HashMap;
use std::sync::Arc;

use crate::hashers::FastMap;
use crate::tier::{CacheFootprint, EvictionPolicy, TierChain, TierPayload};
use crate::{clamp_prob, EventExpr, Universe, VarId};

/// Exact probability evaluator for [`EventExpr`]s.
///
/// The evaluator computes `P(e)` by **Shannon expansion**: it repeatedly
/// picks a variable from the support of the expression, conditions on each of
/// its outcomes (which are mutually exclusive and exhaustive), and recurses
/// on the restricted expression:
///
/// ```text
/// P(e) = Σ_o  P(var = o) · P(e | var = o)
/// ```
///
/// Three optimisations keep this tractable on the expressions CAPRA
/// produces:
///
/// * **Identity-keyed memoisation** — restricted sub-expressions recur
///   heavily (the smart constructors canonicalise children precisely so
///   that they do). Because expressions are hash-consed, the memo is keyed
///   by the stable interner node id: a lookup is one integer hash instead
///   of a full tree walk, and hits survive re-construction of the same
///   structure from different call sites.
/// * **Independent-component factorisation** — the support of a conjunction
///   or disjunction is partitioned into groups of children that share
///   variables; groups are mutually independent, so
///   `P(∧ groups) = Π P(group)` and `P(∨ groups) = 1 − Π (1 − P(group))`.
///   Grouping runs over the per-node support slices cached at construction.
/// * **Pivot caching** — the Shannon pivot (most-frequent variable) is a
///   pure function of the expression node, so it is computed once per node
///   id instead of once per expansion.
///
/// The evaluator holds its memo table across calls; reuse one evaluator when
/// scoring many expressions over the same universe — or detach the tables as
/// an [`EvalCache`] (see [`Evaluator::with_cache`]) to persist them across
/// evaluator lifetimes, e.g. between the repeated `score_all` calls of a
/// scoring session.
///
/// For **parallel** reuse the cache splits into two tiers: a frozen,
/// read-only snapshot ([`FrozenEvalCache`]) shared across threads behind an
/// `Arc` and consulted lock-free before the private overlay, plus the
/// overlay itself receiving this evaluator's new entries. Worker overlays
/// are merged and republished deterministically after a run — every entry
/// is a pure function of its hash-consed key, so merge order cannot change
/// a single bit. Both tiers are bound to one universe value (the
/// *universe-affinity invariant*): entries survive further variable
/// declarations, but caches and snapshots must be discarded when switching
/// universes, because variable ids would alias.
pub struct Evaluator<'u> {
    universe: &'u Universe,
    cache: EvalCache,
    stats: EvalStats,
    /// Disable memoisation (for ablation benchmarks).
    use_memo: bool,
    /// Disable component factorisation (for ablation benchmarks).
    use_components: bool,
}

/// The detachable memo state of an [`Evaluator`]: probability and
/// Shannon-pivot tables keyed by hash-consed expression identity, split into
/// **two tiers** — an optional frozen, read-only snapshot shared across
/// threads ([`FrozenEvalCache`], consulted first) and a small private
/// overlay receiving this holder's new entries.
///
/// Entries are valid for the universe whose expressions they were computed
/// over, **including after further variable declarations** (declared
/// variables and their probabilities are immutable, and new variables cannot
/// occur in already-interned expressions). Reusing a cache with a *different*
/// universe is a logic error — variable ids would alias — so holders must
/// discard it when they switch universes. The same *universe affinity*
/// applies to snapshots: a snapshot and every overlay merged into it must
/// have been computed over one universe value.
#[derive(Default)]
pub struct EvalCache {
    /// Shared read-only tier, consulted before the overlay. `None` for a
    /// plain single-holder cache.
    snapshot: Option<Arc<FrozenEvalCache>>,
    /// Probability memo over composite nodes. Keys are hash-consed
    /// expressions, so hashing is the precomputed structural hash and
    /// equality is pointer identity — O(1) either way — while the key
    /// itself pins the interned node alive, guaranteeing that rebuilding
    /// the same structure later resolves to the same node and hits.
    memo: FastMap<EventExpr, f64>,
    /// Shannon-pivot choice per node (same identity-keyed scheme).
    pivots: FastMap<EventExpr, VarId>,
}

impl EvalCache {
    /// An empty overlay backed by a shared read-only snapshot: lookups
    /// consult `snapshot` first and misses are memoised privately, so many
    /// threads can share one snapshot lock-free while each accumulates only
    /// the entries the snapshot lacks.
    pub fn with_snapshot(snapshot: Arc<FrozenEvalCache>) -> Self {
        Self {
            snapshot: Some(snapshot),
            ..Self::default()
        }
    }

    /// Number of *privately* memoised probabilities (the overlay only; the
    /// shared snapshot, if any, is counted by [`FrozenEvalCache::len`]).
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True if this holder memoised nothing privately yet (a backing
    /// snapshot may still answer lookups).
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty() && self.pivots.is_empty()
    }

    fn lookup_prob(&self, expr: &EventExpr) -> Option<f64> {
        if let Some(p) = self.snapshot.as_ref().and_then(|s| s.get_prob(expr)) {
            return Some(p);
        }
        self.memo.get(expr).copied()
    }

    fn lookup_pivot(&self, expr: &EventExpr) -> Option<VarId> {
        if let Some(v) = self.snapshot.as_ref().and_then(|s| s.get_pivot(expr)) {
            return Some(v);
        }
        self.pivots.get(expr).copied()
    }

    /// Folds the private overlay into the backing snapshot chain (creating
    /// one if absent), tagging the new tier with the current binding
    /// `epoch` and evicting stale tiers per `policy` — the single-holder
    /// version of the pooled merge-and-republish, used by long-lived
    /// sequential holders to keep their memo footprint bounded under KB
    /// mutation. Lookups afterwards consult the chain first and keep
    /// memoising privately; retained values are unchanged and evicted ones
    /// are recomputed bit-identically, so behaviour is unaffected.
    pub fn rotate(&mut self, epoch: u64, policy: EvictionPolicy) {
        if self.is_empty() && self.snapshot.is_none() {
            return;
        }
        let base = self.snapshot.take();
        let overlay = std::mem::take(self);
        *self = EvalCache::with_snapshot(FrozenEvalCache::merged_with(
            base.as_ref(),
            [overlay],
            epoch,
            policy,
        ));
    }

    /// Inserts a probability entry into the private overlay — the import
    /// path of the persistence layer: entries decoded from a saved snapshot
    /// are re-interned (so their keys resolve to this process's node
    /// identities) and handed back one by one before the cache is
    /// republished as a frozen tier. Values are pure functions of their
    /// hash-consed keys, so importing an entry computed by another process
    /// is indistinguishable from having computed it here.
    pub fn insert_prob(&mut self, expr: EventExpr, p: f64) {
        self.memo.insert(expr, p);
    }

    /// Inserts a Shannon-pivot entry into the private overlay (the pivot
    /// counterpart of [`EvalCache::insert_prob`]).
    pub fn insert_pivot(&mut self, expr: EventExpr, var: VarId) {
        self.pivots.insert(expr, var);
    }

    /// Entries and pinned-node estimate of the private overlay alone,
    /// ignoring any backing snapshot — for holders that account for the
    /// shared chain separately (e.g. a pool whose parked worker overlays
    /// all share the pool's own snapshot).
    pub fn overlay_footprint(&self) -> CacheFootprint {
        let overlay = self.memo.len() + self.pivots.len();
        CacheFootprint {
            tiers: 0,
            entries: overlay,
            pinned_nodes: overlay,
        }
    }

    /// Occupied tiers, entries and pinned-node estimate of this cache:
    /// the private overlay plus the backing snapshot chain, if any.
    pub fn footprint(&self) -> CacheFootprint {
        let snapshot = self
            .snapshot
            .as_ref()
            .map(|s| s.footprint())
            .unwrap_or_default();
        snapshot + self.overlay_footprint()
    }
}

/// One tier's worth of [`FrozenEvalCache`] entries: the probability memo
/// and Shannon-pivot maps published together by one republish. The chain
/// mechanics (push/compact/fold, epoch tags, eviction) live in
/// [`TierChain`]; this payload only knows how to count and merge itself.
#[derive(Default, Clone)]
pub struct EvalTier {
    memo: FastMap<EventExpr, f64>,
    pivots: FastMap<EventExpr, VarId>,
}

impl TierPayload for EvalTier {
    fn len(&self) -> usize {
        self.memo.len()
    }

    fn is_empty(&self) -> bool {
        self.memo.is_empty() && self.pivots.is_empty()
    }

    fn absorb(&mut self, newer: Self) {
        self.memo.extend(newer.memo);
        self.pivots.extend(newer.pivots);
    }
}

/// A frozen, read-only [`EvalCache`] snapshot, shared across threads behind
/// an `Arc` and consulted lock-free before each holder's private overlay.
///
/// Snapshots grow by [`FrozenEvalCache::merged`] (or, epoch-tracked, by
/// [`FrozenEvalCache::merged_with`]): collect the overlays the workers of
/// one run accumulated and republish base + overlays as a new snapshot.
/// Every memoised value is a **pure function of its hash-consed key**
/// (probability evaluation is deterministic and universe variables are
/// immutable), so two workers that memoise the same key store bit-identical
/// values and the merge is order-independent — results stay bit-identical
/// to a sequential run no matter how work was interleaved.
///
/// Internally a snapshot is a [`TierChain`] of [`EvalTier`]s — a short
/// chain of immutable tiers (newest first, bounded by the chain's LSM
/// policy) in which the big root tier is recopied once per size doubling
/// and, under an [`EvictionPolicy`], tiers untouched for too many binding
/// epochs are dropped whenever a compaction or fold rewrites the chain
/// anyway. See the [`crate::tier`]-module docs for the mechanics and the
/// eviction-correctness argument.
///
/// The universe-affinity rule of [`EvalCache`] applies transitively: all
/// overlays merged into one snapshot lineage must come from evaluators over
/// the same universe value, and the snapshot must be discarded when the
/// universe is replaced.
pub type FrozenEvalCache = TierChain<EvalTier>;

impl FrozenEvalCache {
    /// Number of memoised probabilities across all tiers. Keys shadowed in
    /// several tiers (identical values by construction) count once per
    /// tier, so this is an upper bound on distinct entries.
    pub fn len(&self) -> usize {
        self.entry_count()
    }

    /// True if no tier holds any entry.
    pub fn is_empty(&self) -> bool {
        self.payloads_empty()
    }

    fn get_prob(&self, expr: &EventExpr) -> Option<f64> {
        self.tiers().find_map(|t| t.payload.memo.get(expr).copied())
    }

    fn get_pivot(&self, expr: &EventExpr) -> Option<VarId> {
        self.tiers()
            .find_map(|t| t.payload.pivots.get(expr).copied())
    }

    /// All memoised probabilities across the chain, deduplicated with the
    /// lookup precedence (newest tier wins for shadowed keys — identical
    /// values by construction, so precedence only avoids emitting
    /// duplicates). This is the export path of the persistence layer; the
    /// matching import is [`EvalCache::insert_prob`] after re-interning.
    pub fn export_probs(&self) -> Vec<(EventExpr, f64)> {
        let mut seen: FastMap<EventExpr, ()> = FastMap::default();
        let mut out = Vec::new();
        for t in self.tiers() {
            for (e, p) in t.payload.memo.iter() {
                if seen.insert(e.clone(), ()).is_none() {
                    out.push((e.clone(), *p));
                }
            }
        }
        out
    }

    /// All memoised Shannon pivots across the chain, deduplicated like
    /// [`FrozenEvalCache::export_probs`].
    pub fn export_pivots(&self) -> Vec<(EventExpr, VarId)> {
        let mut seen: FastMap<EventExpr, ()> = FastMap::default();
        let mut out = Vec::new();
        for t in self.tiers() {
            for (e, v) in t.payload.pivots.iter() {
                if seen.insert(e.clone(), ()).is_none() {
                    out.push((e.clone(), *v));
                }
            }
        }
        out
    }

    /// Occupied tiers, memo+pivot entries, and pinned-node estimate of this
    /// chain. Every entry keys a composite hash-consed node it pins in the
    /// process-global interner, so the estimate is the entry count.
    pub fn footprint(&self) -> CacheFootprint {
        let entries = self
            .tiers()
            .map(|t| t.payload.memo.len() + t.payload.pivots.len())
            .sum();
        CacheFootprint {
            tiers: self.occupied_tiers(),
            entries,
            pinned_nodes: entries,
        }
    }

    /// [`FrozenEvalCache::merged_with`] without epoch tracking: tiers are
    /// tagged epoch 0 and nothing is ever evicted — the snapshot only
    /// grows. One-shot callers (and tests) that never mutate the KB use
    /// this; epoch-aware holders should prefer `merged_with`.
    pub fn merged(
        base: Option<&Arc<FrozenEvalCache>>,
        overlays: impl IntoIterator<Item = EvalCache>,
    ) -> Arc<FrozenEvalCache> {
        Self::merged_with(base, overlays, 0, EvictionPolicy::Never)
    }

    /// Merges worker overlays on top of `base` into a new snapshot (the
    /// *republish* step) per the shared [`TierChain`] LSM policy, tagging
    /// the new tier with the current binding `epoch` and dropping tiers
    /// `policy` considers stale whenever a compaction or fold rewrites the
    /// chain anyway. Order-independent and deterministic: values are pure
    /// functions of node identity (see the type docs), so duplicate keys
    /// across overlays carry bit-identical values — and eviction only ever
    /// forces deterministic recomputes, never different results. Each
    /// overlay's own backing snapshot is dropped — it is an ancestor of
    /// `base` in the intended lineage, so its entries are already present.
    pub fn merged_with(
        base: Option<&Arc<FrozenEvalCache>>,
        overlays: impl IntoIterator<Item = EvalCache>,
        epoch: u64,
        policy: EvictionPolicy,
    ) -> Arc<FrozenEvalCache> {
        let mut tier = EvalTier::default();
        for overlay in overlays {
            tier.memo.extend(overlay.memo);
            tier.pivots.extend(overlay.pivots);
        }
        if tier.is_empty() {
            // Nothing new: keep the base as-is instead of stacking an
            // empty tier (which would cost a probe on every lookup).
            if let Some(b) = base {
                return Arc::clone(b);
            }
        }
        TierChain::publish(base, tier, epoch, policy)
    }
}

/// Counters describing the work an [`Evaluator`] performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Shannon expansions performed.
    pub expansions: u64,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Component factorisations applied.
    pub component_splits: u64,
    /// Pivot-cache hits (pivot reused without re-counting atoms).
    pub pivot_hits: u64,
}

impl<'u> Evaluator<'u> {
    /// Creates an evaluator over `universe` with all optimisations enabled.
    pub fn new(universe: &'u Universe) -> Self {
        Self::with_cache(universe, EvalCache::default())
    }

    /// Creates an evaluator seeded with a previously detached cache (see
    /// [`Evaluator::into_cache`]). The cache must have been built over the
    /// same universe value (further declarations are fine).
    pub fn with_cache(universe: &'u Universe, cache: EvalCache) -> Self {
        Self {
            universe,
            cache,
            stats: EvalStats::default(),
            use_memo: true,
            use_components: true,
        }
    }

    /// Detaches the memo state for reuse by a later evaluator over the same
    /// universe.
    pub fn into_cache(self) -> EvalCache {
        self.cache
    }

    /// Creates an evaluator with optimisations toggled individually.
    /// Used by the ablation benchmarks; semantics are unchanged.
    pub fn with_options(universe: &'u Universe, use_memo: bool, use_components: bool) -> Self {
        Self {
            use_memo,
            use_components,
            ..Self::new(universe)
        }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Clears the memo and pivot tables, including any backing snapshot
    /// (the counters are kept).
    pub fn clear(&mut self) {
        self.cache = EvalCache::default();
    }

    /// Exact probability of `expr` under the evaluator's universe.
    pub fn prob(&mut self, expr: &EventExpr) -> f64 {
        clamp_prob(self.prob_rec(expr))
    }

    fn prob_rec(&mut self, expr: &EventExpr) -> f64 {
        match expr {
            EventExpr::True => return 1.0,
            EventExpr::False => return 0.0,
            EventExpr::Atom(a) => {
                return self
                    .universe
                    .alt_prob(a.var, a.alt)
                    .expect("expression references a variable outside its universe");
            }
            EventExpr::Not(inner) => return 1.0 - self.prob_rec(inner),
            _ => {}
        }
        if self.use_memo {
            if let Some(p) = self.cache.lookup_prob(expr) {
                self.stats.memo_hits += 1;
                return p;
            }
        }
        let p = self.prob_connective(expr);
        if self.use_memo {
            // A lookup miss means the snapshot lacks the key too, so the
            // overlay insert never shadows a snapshot entry.
            self.cache.memo.insert(expr.clone(), p);
        }
        p
    }

    /// Probability of an `And`/`Or` node: try component factorisation first,
    /// fall back to Shannon expansion on entangled parts.
    fn prob_connective(&mut self, expr: &EventExpr) -> f64 {
        if self.use_components {
            let (kids, is_and) = match expr {
                EventExpr::And(kids) => (&***kids, true),
                EventExpr::Or(kids) => (&***kids, false),
                _ => unreachable!("prob_connective called on non-connective"),
            };
            let groups = component_groups(kids);
            if groups.len() > 1 {
                self.stats.component_splits += 1;
                let mut acc = 1.0;
                for group in groups {
                    let sub = if is_and {
                        EventExpr::and(group)
                    } else {
                        EventExpr::or(group)
                    };
                    let p = self.prob_rec(&sub);
                    acc *= if is_and { p } else { 1.0 - p };
                }
                return if is_and { acc } else { 1.0 - acc };
            }
        }
        self.shannon(expr)
    }

    fn shannon(&mut self, expr: &EventExpr) -> f64 {
        let var = self.pivot_for(expr);
        self.stats.expansions += 1;
        let n = self
            .universe
            .num_outcomes(var)
            .expect("expression references a variable outside its universe");
        let mut total = 0.0;
        for o in 0..n {
            let p_o = self
                .universe
                .outcome_prob(var, o)
                .expect("outcome index in range");
            if p_o == 0.0 {
                continue;
            }
            let restricted = expr.restrict(var, o);
            total += p_o * self.prob_rec(&restricted);
        }
        total
    }

    /// The Shannon pivot for `expr`, cached by node identity: the pivot is
    /// a pure function of the expression, so the atom-count walk runs once
    /// per distinct node instead of once per expansion.
    fn pivot_for(&mut self, expr: &EventExpr) -> VarId {
        if let Some(var) = self.cache.lookup_pivot(expr) {
            self.stats.pivot_hits += 1;
            return var;
        }
        let var = pick_pivot(expr).expect("connective node must have support");
        self.cache.pivots.insert(expr.clone(), var);
        var
    }
}

/// Partitions indices `0..supports.len()` into groups connected by shared
/// variables. Shared by the probability evaluator (over child expressions)
/// and the expectation computer (over factors).
pub(crate) fn group_indices<'a, I>(supports: I) -> Vec<Vec<usize>>
where
    I: IntoIterator<Item = &'a [VarId]>,
{
    let supports: Vec<&[VarId]> = supports.into_iter().collect();
    let n = supports.len();
    // Union–find over the items.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<VarId, usize> = HashMap::new();
    for (i, sup) in supports.iter().enumerate() {
        for &v in sup.iter() {
            match owner.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    // Emit groups ordered by their smallest member index. Determinism
    // matters: group probabilities are multiplied in this order, and f64
    // multiplication is not associative — hash-map iteration order here
    // would make repeated runs (and parallel shards vs. the sequential
    // path) differ in the last ulp.
    let mut group_of_root: Vec<Option<usize>> = vec![None; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        match group_of_root[root] {
            Some(g) => groups[g].push(i),
            None => {
                group_of_root[root] = Some(groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// Partitions sibling expressions into groups connected by shared variables.
/// Groups are mutually variable-disjoint, hence independent. Uses the
/// supports cached on each node — no tree walks.
pub(crate) fn component_groups(kids: &[EventExpr]) -> Vec<Vec<EventExpr>> {
    group_indices(kids.iter().map(EventExpr::support_slice))
        .into_iter()
        .map(|idxs| idxs.into_iter().map(|i| kids[i].clone()).collect())
        .collect()
}

/// Chooses the Shannon pivot: the variable occurring in the largest number of
/// atoms, which tends to simplify the most sub-terms per expansion.
fn pick_pivot(expr: &EventExpr) -> Option<VarId> {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    count_atoms(expr, &mut counts);
    counts
        .into_iter()
        .max_by_key(|&(var, count)| (count, std::cmp::Reverse(var)))
        .map(|(var, _)| var)
}

fn count_atoms(expr: &EventExpr, counts: &mut HashMap<VarId, usize>) {
    match expr {
        EventExpr::True | EventExpr::False => {}
        EventExpr::Atom(a) => *counts.entry(a.var).or_default() += 1,
        EventExpr::Not(inner) => count_atoms(inner, counts),
        EventExpr::And(kids) | EventExpr::Or(kids) => {
            for k in kids.iter() {
                count_atoms(k, counts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::MAX_CHAIN;
    use crate::worlds::brute_force_prob;

    fn universe3() -> (Universe, EventExpr, EventExpr, EventExpr) {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.5).unwrap();
        let b = u.add_bool("b", 0.25).unwrap();
        let c = u.add_bool("c", 0.8).unwrap();
        let (ea, eb, ec) = (
            u.bool_event(a).unwrap(),
            u.bool_event(b).unwrap(),
            u.bool_event(c).unwrap(),
        );
        (u, ea, eb, ec)
    }

    #[test]
    fn atoms_and_constants() {
        let (u, ea, ..) = universe3();
        let mut ev = Evaluator::new(&u);
        assert_eq!(ev.prob(&EventExpr::True), 1.0);
        assert_eq!(ev.prob(&EventExpr::False), 0.0);
        assert!((ev.prob(&ea) - 0.5).abs() < 1e-12);
        assert!((ev.prob(&EventExpr::not(ea)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn independent_conjunction_multiplies() {
        let (u, ea, eb, ec) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::and([ea, eb, ec]);
        assert!((ev.prob(&e) - 0.5 * 0.25 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn inclusion_exclusion_on_disjunction() {
        let (u, ea, eb, _) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::or([ea, eb]);
        assert!((ev.prob(&e) - (0.5 + 0.25 - 0.125)).abs() < 1e-12);
    }

    #[test]
    fn correlated_subexpressions_are_exact() {
        // P((a ∧ b) ∨ (a ∧ c)) = P(a) · P(b ∨ c) — shares `a`, so naive
        // independence multiplication would be wrong.
        let (u, ea, eb, ec) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::or([
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([ea.clone(), ec.clone()]),
        ]);
        let expected = 0.5 * (0.25 + 0.8 - 0.25 * 0.8);
        assert!((ev.prob(&e) - expected).abs() < 1e-12, "{}", ev.prob(&e));
    }

    #[test]
    fn choice_variables_are_mutually_exclusive() {
        let mut u = Universe::new();
        let room = u.add_choice("room", &[0.5, 0.3, 0.2]).unwrap();
        let r0 = u.atom(room, 0).unwrap();
        let r1 = u.atom(room, 1).unwrap();
        let mut ev = Evaluator::new(&u);
        assert_eq!(ev.prob(&EventExpr::and([r0.clone(), r1.clone()])), 0.0);
        assert!((ev.prob(&EventExpr::or([r0, r1])) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn residual_outcome_counts() {
        let mut u = Universe::new();
        let v = u.add_choice("v", &[0.3, 0.3]).unwrap();
        let e = EventExpr::not(EventExpr::or([
            u.atom(v, 0).unwrap(),
            u.atom(v, 1).unwrap(),
        ]));
        let mut ev = Evaluator::new(&u);
        assert!((ev.prob(&e) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_handmade_cases() {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let b = u.add_choice("b", &[0.2, 0.5]).unwrap();
        let c = u.add_bool("c", 0.9).unwrap();
        let ea = u.bool_event(a).unwrap();
        let eb0 = u.atom(b, 0).unwrap();
        let eb1 = u.atom(b, 1).unwrap();
        let ec = u.bool_event(c).unwrap();
        let cases = vec![
            EventExpr::and([ea.clone(), EventExpr::or([eb0.clone(), ec.clone()])]),
            EventExpr::or([
                EventExpr::and([ea.clone(), eb0.clone()]),
                EventExpr::and([EventExpr::not(ea.clone()), eb1.clone()]),
            ]),
            EventExpr::not(EventExpr::and([
                EventExpr::or([ea.clone(), eb1.clone()]),
                EventExpr::or([EventExpr::not(ec.clone()), eb0.clone()]),
            ])),
        ];
        let mut ev = Evaluator::new(&u);
        for e in cases {
            let exact = ev.prob(&e);
            let brute = brute_force_prob(&u, &e);
            assert!(
                (exact - brute).abs() < 1e-12,
                "mismatch for {e}: {exact} vs {brute}"
            );
        }
    }

    #[test]
    fn ablation_options_preserve_semantics() {
        let mut u = Universe::new();
        let vars: Vec<_> = (0..6)
            .map(|i| u.add_bool(&format!("x{i}"), 0.1 + 0.1 * i as f64).unwrap())
            .collect();
        let es: Vec<_> = vars.iter().map(|&v| u.bool_event(v).unwrap()).collect();
        let e = EventExpr::or([
            EventExpr::and([es[0].clone(), es[1].clone(), es[2].clone()]),
            EventExpr::and([es[1].clone(), es[3].clone()]),
            EventExpr::and([es[4].clone(), EventExpr::not(es[5].clone())]),
        ]);
        let mut base = Evaluator::new(&u);
        let expected = base.prob(&e);
        for (memo, comp) in [(false, false), (false, true), (true, false)] {
            let mut ev = Evaluator::with_options(&u, memo, comp);
            assert!((ev.prob(&e) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn memo_hits_accumulate() {
        let (u, ea, eb, _) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::or([
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([ea.clone(), EventExpr::not(eb.clone())]),
        ]);
        let p1 = ev.prob(&e);
        let p2 = ev.prob(&e);
        assert_eq!(p1, p2);
        assert!(ev.stats().memo_hits > 0);
    }

    #[test]
    fn memo_hits_survive_reconstruction() {
        // The identity-keyed memo must hit even when the *same structure*
        // is rebuilt from scratch (interned to the same node id), not just
        // when the same value is passed twice.
        let mut u = Universe::new();
        let vars: Vec<_> = (0..4)
            .map(|i| u.add_bool(&format!("m{i}"), 0.4).unwrap())
            .collect();
        let build = |u: &Universe| {
            EventExpr::or([
                EventExpr::and([
                    u.bool_event(vars[0]).unwrap(),
                    u.bool_event(vars[1]).unwrap(),
                ]),
                EventExpr::and([
                    u.bool_event(vars[1]).unwrap(),
                    u.bool_event(vars[2]).unwrap(),
                    u.bool_event(vars[3]).unwrap(),
                ]),
            ])
        };
        let mut ev = Evaluator::new(&u);
        let p1 = ev.prob(&build(&u));
        let hits_before = ev.stats().memo_hits;
        let p2 = ev.prob(&build(&u));
        assert_eq!(p1, p2);
        assert!(
            ev.stats().memo_hits > hits_before,
            "rebuilt expression must hit the id-keyed memo"
        );
    }

    #[test]
    fn detached_cache_carries_memo_across_evaluators() {
        let (u, ea, eb, ec) = universe3();
        let e = EventExpr::or([
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([ea.clone(), ec.clone()]),
            EventExpr::and([eb.clone(), ec.clone()]),
        ]);
        let mut first = Evaluator::new(&u);
        let p1 = first.prob(&e);
        let cache = first.into_cache();
        assert!(!cache.is_empty());
        let mut second = Evaluator::with_cache(&u, cache);
        let p2 = second.prob(&e);
        assert_eq!(p1.to_bits(), p2.to_bits(), "cached value is bit-identical");
        assert!(
            second.stats().memo_hits > 0 && second.stats().expansions == 0,
            "second evaluator must answer from the carried cache"
        );
    }

    #[test]
    fn frozen_snapshot_answers_without_expansion() {
        let (u, ea, eb, ec) = universe3();
        let e = EventExpr::or([
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([ea.clone(), ec.clone()]),
            EventExpr::and([eb.clone(), ec.clone()]),
        ]);
        let mut first = Evaluator::new(&u);
        let p1 = first.prob(&e);
        let snapshot = FrozenEvalCache::merged(None, [first.into_cache()]);
        assert!(!snapshot.is_empty());
        // A fresh overlay over the snapshot must answer from the shared
        // tier: same bits, zero expansions, empty private overlay.
        let mut second = Evaluator::with_cache(&u, EvalCache::with_snapshot(Arc::clone(&snapshot)));
        let p2 = second.prob(&e);
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert_eq!(second.stats().expansions, 0);
        assert!(second.stats().memo_hits > 0);
        assert!(
            second.into_cache().is_empty(),
            "snapshot hits must not be copied into the overlay"
        );
    }

    #[test]
    fn merged_snapshot_is_order_independent() {
        let mut u = Universe::new();
        let vars: Vec<_> = (0..6)
            .map(|i| u.add_bool(&format!("s{i}"), 0.15 + 0.1 * i as f64).unwrap())
            .collect();
        let es: Vec<_> = vars.iter().map(|&v| u.bool_event(v).unwrap()).collect();
        // Two "workers" evaluate overlapping entangled expressions on
        // private overlays; one also covers an expression the other lacks.
        let shared = EventExpr::or([
            EventExpr::and([es[0].clone(), es[1].clone()]),
            EventExpr::and([es[1].clone(), es[2].clone()]),
        ]);
        let only_a = EventExpr::or([
            EventExpr::and([es[2].clone(), es[3].clone()]),
            EventExpr::and([es[3].clone(), es[4].clone()]),
        ]);
        let overlay_a = || {
            let mut ev = Evaluator::new(&u);
            let _ = ev.prob(&shared);
            let _ = ev.prob(&only_a);
            ev.into_cache()
        };
        let overlay_b = || {
            let mut ev = Evaluator::new(&u);
            let _ = ev.prob(&shared);
            ev.into_cache()
        };
        // Merge in both orders; duplicate keys must carry identical bits,
        // so the snapshots answer identically and fully (zero expansions).
        let merged_ab = FrozenEvalCache::merged(None, [overlay_a(), overlay_b()]);
        let merged_ba = FrozenEvalCache::merged(None, [overlay_b(), overlay_a()]);
        assert_eq!(merged_ab.len(), merged_ba.len());
        for e in [&shared, &only_a] {
            let mut eva =
                Evaluator::with_cache(&u, EvalCache::with_snapshot(Arc::clone(&merged_ab)));
            let mut evb =
                Evaluator::with_cache(&u, EvalCache::with_snapshot(Arc::clone(&merged_ba)));
            assert_eq!(eva.prob(e).to_bits(), evb.prob(e).to_bits());
            assert_eq!(eva.stats().expansions + evb.stats().expansions, 0);
        }
    }

    #[test]
    fn snapshot_chain_collapses_and_stays_consistent() {
        // Republish more times than MAX_CHAIN: every generation must keep
        // answering every earlier generation's entries (chain lookups span
        // tiers; the collapse must not drop anything).
        let mut u = Universe::new();
        let vars: Vec<_> = (0..2 * (MAX_CHAIN + 2))
            .map(|i| u.add_bool(&format!("c{i}"), 0.2 + 0.05 * i as f64).unwrap())
            .collect();
        let exprs: Vec<EventExpr> = vars
            .chunks(2)
            .map(|pair| {
                let a = u.bool_event(pair[0]).unwrap();
                let b = u.bool_event(pair[1]).unwrap();
                // Entangle the pair so a composite memo entry is created.
                EventExpr::or([
                    EventExpr::and([a.clone(), b.clone()]),
                    EventExpr::and([a, EventExpr::not(b)]),
                ])
            })
            .collect();
        let mut snapshot: Option<Arc<FrozenEvalCache>> = None;
        let mut expected: Vec<f64> = Vec::new();
        for (generation, expr) in exprs.iter().enumerate() {
            let cache = snapshot
                .as_ref()
                .map(|s| EvalCache::with_snapshot(Arc::clone(s)))
                .unwrap_or_default();
            let mut ev = Evaluator::with_cache(&u, cache);
            expected.push(ev.prob(expr));
            snapshot = Some(FrozenEvalCache::merged(
                snapshot.as_ref(),
                [ev.into_cache()],
            ));
            let snap = snapshot.as_ref().unwrap();
            assert!(snap.depth <= MAX_CHAIN, "generation {generation}");
            // Every entry published so far must still answer, bit-identical.
            let mut check = Evaluator::with_cache(&u, EvalCache::with_snapshot(Arc::clone(snap)));
            for (e, want) in exprs[..=generation].iter().zip(&expected) {
                assert_eq!(check.prob(e).to_bits(), want.to_bits());
            }
            assert_eq!(check.stats().expansions, 0, "generation {generation}");
        }
    }

    #[test]
    fn chain_compacts_young_tiers_and_keeps_root_shared() {
        // A big root followed by a stream of tiny republishes: while the
        // young state stays small relative to the root, the root tier must
        // be *shared* (pointer-equal parent, never recopied) and the chain
        // must compact rather than fold.
        let mut u = Universe::new();
        let entangled = |u: &mut Universe, tag: &str| {
            let a = u.add_bool(&format!("{tag}a"), 0.3).unwrap();
            let b = u.add_bool(&format!("{tag}b"), 0.6).unwrap();
            let (ea, eb) = (u.bool_event(a).unwrap(), u.bool_event(b).unwrap());
            EventExpr::or([
                EventExpr::and([ea.clone(), eb.clone()]),
                EventExpr::and([ea, EventExpr::not(eb)]),
            ])
        };
        let root_exprs: Vec<EventExpr> = (0..30)
            .map(|i| entangled(&mut u, &format!("r{i}")))
            .collect();
        let mut ev = Evaluator::new(&u);
        let root_values: Vec<f64> = root_exprs.iter().map(|e| ev.prob(e)).collect();
        let root = FrozenEvalCache::merged(None, [ev.into_cache()]);
        let root_len = root.payload.memo.len();

        let mut snapshot = Arc::clone(&root);
        let mut compacted = false;
        for i in 0..5 {
            let e = entangled(&mut u, &format!("y{i}"));
            let mut ev = Evaluator::with_cache(&u, EvalCache::with_snapshot(Arc::clone(&snapshot)));
            let want = ev.prob(&e);
            snapshot = FrozenEvalCache::merged(Some(&snapshot), [ev.into_cache()]);
            assert!(snapshot.depth <= MAX_CHAIN);
            // Young state is far below the root's size, so the root tier
            // is still the original allocation — never cloned.
            assert!(snapshot.len() - root_len < root_len, "test premise");
            assert!(
                Arc::ptr_eq(&snapshot.root_arc(), &root),
                "generation {i}: small republishes must share the root"
            );
            compacted |= snapshot.depth == 2 && snapshot.parent.is_some();
            let mut check =
                Evaluator::with_cache(&u, EvalCache::with_snapshot(Arc::clone(&snapshot)));
            assert_eq!(check.prob(&e).to_bits(), want.to_bits());
            for (re, rv) in root_exprs.iter().zip(&root_values) {
                assert_eq!(check.prob(re).to_bits(), rv.to_bits());
            }
            assert_eq!(check.stats().expansions, 0, "generation {i}");
        }
        assert!(compacted, "MAX_CHAIN must trigger a compaction, not a fold");
    }

    #[test]
    fn pivot_cache_is_used() {
        let (u, ea, eb, ec) = universe3();
        let mut ev = Evaluator::new(&u);
        // Entangled expression (single component) forcing repeated Shannon
        // expansion of shared subproblems.
        let e = EventExpr::or([
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([ea.clone(), ec.clone()]),
            EventExpr::and([eb.clone(), ec.clone()]),
        ]);
        let _ = ev.prob(&e);
        let _ = ev.prob(&e); // memo short-circuits, pivots persist
        let mut ev2 = Evaluator::with_options(&u, false, false);
        let _ = ev2.prob(&e);
        let _ = ev2.prob(&e);
        assert!(
            ev2.stats().pivot_hits > 0,
            "repeated expansion of one node must reuse its pivot"
        );
    }

    #[test]
    fn component_groups_partition_correctly() {
        let (_, ea, eb, ec) = universe3();
        let ab = EventExpr::and([ea.clone(), eb.clone()]);
        let groups = component_groups(&[ab, ec.clone()]);
        assert_eq!(groups.len(), 2);
        let groups = component_groups(&[
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([eb.clone(), ec.clone()]),
        ]);
        assert_eq!(groups.len(), 1, "b links both children");
    }
}
