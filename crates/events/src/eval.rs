use std::collections::{BTreeSet, HashMap};

use crate::{clamp_prob, EventExpr, Universe, VarId};

/// Exact probability evaluator for [`EventExpr`]s.
///
/// The evaluator computes `P(e)` by **Shannon expansion**: it repeatedly
/// picks a variable from the support of the expression, conditions on each of
/// its outcomes (which are mutually exclusive and exhaustive), and recurses
/// on the restricted expression:
///
/// ```text
/// P(e) = Σ_o  P(var = o) · P(e | var = o)
/// ```
///
/// Two optimisations keep this tractable on the expressions CAPRA produces:
///
/// * **Memoisation** — restricted sub-expressions recur heavily (the smart
///   constructors canonicalise children precisely so that they do). Results
///   are cached keyed by the structural identity of the expression.
/// * **Independent-component factorisation** — the support of a conjunction
///   or disjunction is partitioned into groups of children that share
///   variables; groups are mutually independent, so
///   `P(∧ groups) = Π P(group)` and `P(∨ groups) = 1 − Π (1 − P(group))`.
///
/// The evaluator holds its memo table across calls; reuse one evaluator when
/// scoring many expressions over the same universe.
pub struct Evaluator<'u> {
    universe: &'u Universe,
    memo: HashMap<EventExpr, f64>,
    stats: EvalStats,
    /// Disable memoisation (for ablation benchmarks).
    use_memo: bool,
    /// Disable component factorisation (for ablation benchmarks).
    use_components: bool,
}

/// Counters describing the work an [`Evaluator`] performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvalStats {
    /// Shannon expansions performed.
    pub expansions: u64,
    /// Memo-table hits.
    pub memo_hits: u64,
    /// Component factorisations applied.
    pub component_splits: u64,
}

impl<'u> Evaluator<'u> {
    /// Creates an evaluator over `universe` with all optimisations enabled.
    pub fn new(universe: &'u Universe) -> Self {
        Self {
            universe,
            memo: HashMap::new(),
            stats: EvalStats::default(),
            use_memo: true,
            use_components: true,
        }
    }

    /// Creates an evaluator with optimisations toggled individually.
    /// Used by the ablation benchmarks; semantics are unchanged.
    pub fn with_options(universe: &'u Universe, use_memo: bool, use_components: bool) -> Self {
        Self {
            use_memo,
            use_components,
            ..Self::new(universe)
        }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Clears the memo table (the counters are kept).
    pub fn clear(&mut self) {
        self.memo.clear();
    }

    /// Exact probability of `expr` under the evaluator's universe.
    pub fn prob(&mut self, expr: &EventExpr) -> f64 {
        clamp_prob(self.prob_rec(expr))
    }

    fn prob_rec(&mut self, expr: &EventExpr) -> f64 {
        match expr {
            EventExpr::True => return 1.0,
            EventExpr::False => return 0.0,
            EventExpr::Atom(a) => {
                return self
                    .universe
                    .alt_prob(a.var, a.alt)
                    .expect("expression references a variable outside its universe");
            }
            EventExpr::Not(inner) => return 1.0 - self.prob_rec(inner),
            _ => {}
        }
        if self.use_memo {
            if let Some(&p) = self.memo.get(expr) {
                self.stats.memo_hits += 1;
                return p;
            }
        }
        let p = self.prob_connective(expr);
        if self.use_memo {
            self.memo.insert(expr.clone(), p);
        }
        p
    }

    /// Probability of an `And`/`Or` node: try component factorisation first,
    /// fall back to Shannon expansion on entangled parts.
    fn prob_connective(&mut self, expr: &EventExpr) -> f64 {
        if self.use_components {
            let (kids, is_and) = match expr {
                EventExpr::And(kids) => (kids, true),
                EventExpr::Or(kids) => (kids, false),
                _ => unreachable!("prob_connective called on non-connective"),
            };
            let groups = component_groups(kids);
            if groups.len() > 1 {
                self.stats.component_splits += 1;
                let mut acc = 1.0;
                for group in groups {
                    let sub = if is_and {
                        EventExpr::and(group)
                    } else {
                        EventExpr::or(group)
                    };
                    let p = self.prob_rec(&sub);
                    acc *= if is_and { p } else { 1.0 - p };
                }
                return if is_and { acc } else { 1.0 - acc };
            }
        }
        self.shannon(expr)
    }

    fn shannon(&mut self, expr: &EventExpr) -> f64 {
        let var = pick_pivot(expr).expect("connective node must have support");
        self.stats.expansions += 1;
        let n = self
            .universe
            .num_outcomes(var)
            .expect("expression references a variable outside its universe");
        let mut total = 0.0;
        for o in 0..n {
            let p_o = self
                .universe
                .outcome_prob(var, o)
                .expect("outcome index in range");
            if p_o == 0.0 {
                continue;
            }
            let restricted = expr.restrict(var, o);
            total += p_o * self.prob_rec(&restricted);
        }
        total
    }
}

/// Partitions sibling expressions into groups connected by shared variables.
/// Groups are mutually variable-disjoint, hence independent.
pub(crate) fn component_groups(kids: &[EventExpr]) -> Vec<Vec<EventExpr>> {
    let supports: Vec<BTreeSet<VarId>> = kids.iter().map(EventExpr::support).collect();
    let n = kids.len();
    // Union–find over the children.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<VarId, usize> = HashMap::new();
    for (i, sup) in supports.iter().enumerate() {
        for &v in sup {
            match owner.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<EventExpr>> = HashMap::new();
    for (i, kid) in kids.iter().enumerate() {
        groups
            .entry(find(&mut parent, i))
            .or_default()
            .push(kid.clone());
    }
    groups.into_values().collect()
}

/// Chooses the Shannon pivot: the variable occurring in the largest number of
/// atoms, which tends to simplify the most sub-terms per expansion.
fn pick_pivot(expr: &EventExpr) -> Option<VarId> {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    count_atoms(expr, &mut counts);
    counts
        .into_iter()
        .max_by_key(|&(var, count)| (count, std::cmp::Reverse(var)))
        .map(|(var, _)| var)
}

fn count_atoms(expr: &EventExpr, counts: &mut HashMap<VarId, usize>) {
    match expr {
        EventExpr::True | EventExpr::False => {}
        EventExpr::Atom(a) => *counts.entry(a.var).or_default() += 1,
        EventExpr::Not(inner) => count_atoms(inner, counts),
        EventExpr::And(kids) | EventExpr::Or(kids) => {
            for k in kids.iter() {
                count_atoms(k, counts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::brute_force_prob;

    fn universe3() -> (Universe, EventExpr, EventExpr, EventExpr) {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.5).unwrap();
        let b = u.add_bool("b", 0.25).unwrap();
        let c = u.add_bool("c", 0.8).unwrap();
        let (ea, eb, ec) = (
            u.bool_event(a).unwrap(),
            u.bool_event(b).unwrap(),
            u.bool_event(c).unwrap(),
        );
        (u, ea, eb, ec)
    }

    #[test]
    fn atoms_and_constants() {
        let (u, ea, ..) = universe3();
        let mut ev = Evaluator::new(&u);
        assert_eq!(ev.prob(&EventExpr::True), 1.0);
        assert_eq!(ev.prob(&EventExpr::False), 0.0);
        assert!((ev.prob(&ea) - 0.5).abs() < 1e-12);
        assert!((ev.prob(&EventExpr::not(ea)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn independent_conjunction_multiplies() {
        let (u, ea, eb, ec) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::and([ea, eb, ec]);
        assert!((ev.prob(&e) - 0.5 * 0.25 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn inclusion_exclusion_on_disjunction() {
        let (u, ea, eb, _) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::or([ea, eb]);
        assert!((ev.prob(&e) - (0.5 + 0.25 - 0.125)).abs() < 1e-12);
    }

    #[test]
    fn correlated_subexpressions_are_exact() {
        // P((a ∧ b) ∨ (a ∧ c)) = P(a) · P(b ∨ c) — shares `a`, so naive
        // independence multiplication would be wrong.
        let (u, ea, eb, ec) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::or([
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([ea.clone(), ec.clone()]),
        ]);
        let expected = 0.5 * (0.25 + 0.8 - 0.25 * 0.8);
        assert!((ev.prob(&e) - expected).abs() < 1e-12, "{}", ev.prob(&e));
    }

    #[test]
    fn choice_variables_are_mutually_exclusive() {
        let mut u = Universe::new();
        let room = u.add_choice("room", &[0.5, 0.3, 0.2]).unwrap();
        let r0 = u.atom(room, 0).unwrap();
        let r1 = u.atom(room, 1).unwrap();
        let mut ev = Evaluator::new(&u);
        assert_eq!(ev.prob(&EventExpr::and([r0.clone(), r1.clone()])), 0.0);
        assert!((ev.prob(&EventExpr::or([r0, r1])) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn residual_outcome_counts() {
        let mut u = Universe::new();
        let v = u.add_choice("v", &[0.3, 0.3]).unwrap();
        let e = EventExpr::not(EventExpr::or([u.atom(v, 0).unwrap(), u.atom(v, 1).unwrap()]));
        let mut ev = Evaluator::new(&u);
        assert!((ev.prob(&e) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_handmade_cases() {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let b = u.add_choice("b", &[0.2, 0.5]).unwrap();
        let c = u.add_bool("c", 0.9).unwrap();
        let ea = u.bool_event(a).unwrap();
        let eb0 = u.atom(b, 0).unwrap();
        let eb1 = u.atom(b, 1).unwrap();
        let ec = u.bool_event(c).unwrap();
        let cases = vec![
            EventExpr::and([ea.clone(), EventExpr::or([eb0.clone(), ec.clone()])]),
            EventExpr::or([
                EventExpr::and([ea.clone(), eb0.clone()]),
                EventExpr::and([EventExpr::not(ea.clone()), eb1.clone()]),
            ]),
            EventExpr::not(EventExpr::and([
                EventExpr::or([ea.clone(), eb1.clone()]),
                EventExpr::or([EventExpr::not(ec.clone()), eb0.clone()]),
            ])),
        ];
        let mut ev = Evaluator::new(&u);
        for e in cases {
            let exact = ev.prob(&e);
            let brute = brute_force_prob(&u, &e);
            assert!(
                (exact - brute).abs() < 1e-12,
                "mismatch for {e}: {exact} vs {brute}"
            );
        }
    }

    #[test]
    fn ablation_options_preserve_semantics() {
        let mut u = Universe::new();
        let vars: Vec<_> = (0..6)
            .map(|i| u.add_bool(&format!("x{i}"), 0.1 + 0.1 * i as f64).unwrap())
            .collect();
        let es: Vec<_> = vars.iter().map(|&v| u.bool_event(v).unwrap()).collect();
        let e = EventExpr::or([
            EventExpr::and([es[0].clone(), es[1].clone(), es[2].clone()]),
            EventExpr::and([es[1].clone(), es[3].clone()]),
            EventExpr::and([es[4].clone(), EventExpr::not(es[5].clone())]),
        ]);
        let mut base = Evaluator::new(&u);
        let expected = base.prob(&e);
        for (memo, comp) in [(false, false), (false, true), (true, false)] {
            let mut ev = Evaluator::with_options(&u, memo, comp);
            assert!((ev.prob(&e) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn memo_hits_accumulate() {
        let (u, ea, eb, _) = universe3();
        let mut ev = Evaluator::new(&u);
        let e = EventExpr::or([
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([ea.clone(), EventExpr::not(eb.clone())]),
        ]);
        let p1 = ev.prob(&e);
        let p2 = ev.prob(&e);
        assert_eq!(p1, p2);
        assert!(ev.stats().memo_hits > 0);
    }

    #[test]
    fn component_groups_partition_correctly() {
        let (_, ea, eb, ec) = universe3();
        let ab = EventExpr::and([ea.clone(), eb.clone()]);
        let groups = component_groups(&[ab, ec.clone()]);
        assert_eq!(groups.len(), 2);
        let groups = component_groups(&[
            EventExpr::and([ea.clone(), eb.clone()]),
            EventExpr::and([eb.clone(), ec.clone()]),
        ]);
        assert_eq!(groups.len(), 1, "b links both children");
    }
}
