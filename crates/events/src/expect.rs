//! Exact expectations of products of event-indicator factors.
//!
//! The context-aware scoring formula of the paper (Section 3.3) is an
//! expectation of a *product over preference rules*, where each rule
//! contributes a piecewise-constant random variable:
//!
//! ```text
//! term_r = 1        if the rule's context feature does not hold
//!        = σ_r      if the context feature and the document feature hold
//!        = 1 − σ_r  if the context feature holds but the document feature doesn't
//! ```
//!
//! When features are described by *correlated* event expressions (shared
//! sensors, mutually exclusive genres, …) the expectation does not factor
//! into independent per-rule terms. [`Expectation`] computes it exactly by
//! Shannon expansion over the shared random variables, with memoisation and
//! factorisation over variable-disjoint groups of factors — the same
//! machinery as [`crate::Evaluator`], lifted from probabilities of events to
//! expectations of products. Hash-consed expressions make the memo keys
//! cheap: a factor is identified by its case events (pointer identity,
//! precomputed hashes) plus the case weights, so keying a sub-problem costs
//! O(#cases) instead of O(total expression size).

use std::collections::HashMap;
use std::sync::Arc;

use crate::eval::group_indices;
use crate::hashers::FastMap;
use crate::tier::{CacheFootprint, EvictionPolicy, TierChain, TierPayload};
use crate::{EvalCache, EventExpr, FrozenEvalCache, Universe, VarId};

/// A piecewise-constant random variable: in a world `w` its value is the sum
/// of the weights of the cases whose event holds in `w`.
///
/// For the scoring use-case the cases are mutually exclusive and exhaustive,
/// making the factor a true "piecewise constant"; the expectation machinery
/// does not depend on that (it is linear in the cases).
#[derive(Debug, Clone)]
pub struct Factor {
    cases: Vec<(EventExpr, f64)>,
    /// Union of the case-event supports, sorted and deduplicated
    /// (precomputed from the per-node support caches).
    support: Box<[VarId]>,
}

impl Factor {
    /// Builds a factor from `(event, weight)` cases.
    pub fn new(cases: impl IntoIterator<Item = (EventExpr, f64)>) -> Self {
        let cases: Vec<(EventExpr, f64)> = cases
            .into_iter()
            .filter(|(e, w)| !(e.is_false() || *w == 0.0))
            .collect();
        let mut support: Vec<VarId> = cases
            .iter()
            .flat_map(|(e, _)| e.support_slice().iter().copied())
            .collect();
        support.sort_unstable();
        support.dedup();
        Self {
            cases,
            support: support.into_boxed_slice(),
        }
    }

    /// A factor that is `c` in every world.
    pub fn constant(c: f64) -> Self {
        Self::new([(EventExpr::True, c)])
    }

    /// The indicator of an event: 1 when it holds, 0 otherwise.
    /// `expectation` of a single indicator is the event's probability.
    pub fn indicator(e: EventExpr) -> Self {
        Self::new([(e, 1.0)])
    }

    /// The cases of this factor.
    pub fn cases(&self) -> &[(EventExpr, f64)] {
        &self.cases
    }

    /// The sorted variable support of this factor (cached).
    pub fn support(&self) -> &[VarId] {
        &self.support
    }

    /// If every case event is constant, the factor's world-independent value.
    fn resolved(&self) -> Option<f64> {
        if self.cases.iter().all(|(e, _)| e.is_const()) {
            Some(
                self.cases
                    .iter()
                    .filter(|(e, _)| e.is_true())
                    .map(|(_, w)| w)
                    .sum(),
            )
        } else {
            None
        }
    }

    fn restrict(&self, var: VarId, outcome: usize) -> Factor {
        Factor::new(
            self.cases
                .iter()
                .map(|(e, w)| (e.restrict(var, outcome), *w)),
        )
    }

    /// Value of the factor in a fully specified world.
    pub fn value_in(&self, world: &crate::worlds::World) -> Option<f64> {
        let mut v = 0.0;
        for (e, w) in &self.cases {
            if world.eval(e)? {
                v += w;
            }
        }
        Some(v)
    }

    /// Canonical hashable key: case events plus bitwise weights. The events
    /// are hash-consed, so hashing and comparing a key costs O(#cases) —
    /// expression size does not matter — and holding the key in the memo
    /// pins the interned nodes, keeping identities stable across documents.
    fn key(&self) -> FactorKey {
        let mut k: Vec<(EventExpr, u64)> = self
            .cases
            .iter()
            .map(|(e, w)| (e.clone(), w.to_bits()))
            .collect();
        k.sort_unstable();
        k
    }
}

type FactorKey = Vec<(EventExpr, u64)>;

/// A memoised factor group in export form: one `(case event, value-hash)`
/// key per factor, one inner vec per factor in the group. Produced by
/// [`FrozenExpectCache::export_groups`], consumed (after re-interning the
/// expressions) by [`ExpectCache::insert_group`].
pub type ExportedGroup = Vec<FactorKey>;

/// Reusable exact-expectation computer (see module docs).
///
/// Holds a memo table keyed by canonicalised factor groups; reuse one
/// instance when scoring many documents against the same rule set so that
/// shared context sub-problems are solved once — or detach the memo state as
/// an [`ExpectCache`] to persist it across instances (e.g. between the
/// repeated `score_all` calls of a scoring session).
pub struct Expectation<'u> {
    universe: &'u Universe,
    /// Shared read-only tier of the factor-group memo (see [`ExpectCache`]).
    snapshot: Option<Arc<FrozenExpectCache>>,
    memo: FastMap<Vec<FactorKey>, f64>,
    /// Shared probability evaluator for single-factor groups (linearity of
    /// expectation); its memo — and the interned nodes it pins — persist
    /// across documents.
    evaluator: crate::Evaluator<'u>,
    expansions: u64,
    memo_hits: u64,
}

/// The detachable memo state of an [`Expectation`]: the factor-group memo
/// plus the embedded probability evaluator's [`EvalCache`], each split into
/// an optional frozen shared snapshot tier ([`FrozenExpectCache`]) and a
/// private overlay — the same two-tier scheme as [`EvalCache`].
///
/// The same validity rule as [`EvalCache`] applies: entries stay correct
/// under further variable declarations on the same universe, but the cache
/// (snapshot included) must be discarded when switching to a different
/// universe.
///
/// [`EvalCache`]: crate::EvalCache
#[derive(Default)]
pub struct ExpectCache {
    snapshot: Option<Arc<FrozenExpectCache>>,
    memo: FastMap<Vec<FactorKey>, f64>,
    eval: EvalCache,
}

impl ExpectCache {
    /// An empty overlay backed by a shared read-only snapshot; the embedded
    /// probability cache is layered over the snapshot's eval tier likewise.
    pub fn with_snapshot(snapshot: Arc<FrozenExpectCache>) -> Self {
        Self {
            eval: EvalCache::with_snapshot(Arc::clone(snapshot.eval())),
            snapshot: Some(snapshot),
            memo: FastMap::default(),
        }
    }

    /// Number of *privately* memoised factor groups (excluding the
    /// probability memo and the shared snapshot).
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True if this holder memoised nothing privately yet (a backing
    /// snapshot may still answer lookups).
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty() && self.eval.is_empty()
    }

    /// Folds the private overlays (group memo and embedded probability
    /// memo) into the backing snapshot chain, tagging the new tier with
    /// the current binding `epoch` and evicting stale tiers per `policy` —
    /// the expectation-side counterpart of [`EvalCache::rotate`], with the
    /// same behaviour-preservation argument.
    pub fn rotate(&mut self, epoch: u64, policy: EvictionPolicy) {
        if self.is_empty() && self.snapshot.is_none() {
            return;
        }
        let base = self.snapshot.take();
        let overlay = std::mem::take(self);
        *self = ExpectCache::with_snapshot(FrozenExpectCache::merged_with(
            base.as_ref(),
            [overlay],
            epoch,
            policy,
        ));
    }

    /// Mutable access to the embedded probability cache — the import path
    /// of the persistence layer, which fills both the group memo (via
    /// [`ExpectCache::insert_group`]) and the embedded evaluator's memo
    /// (via [`crate::EvalCache::insert_prob`] / `insert_pivot`) from a
    /// decoded snapshot before the cache is republished as a frozen tier.
    pub fn eval_mut(&mut self) -> &mut EvalCache {
        &mut self.eval
    }

    /// Inserts a factor-group expectation into the private overlay. The
    /// key rows are re-canonicalised here: factor keys are ordered by
    /// [`EventExpr`]'s `Ord`, which compares process-local interner node
    /// ids, so a key decoded from another process's snapshot must be
    /// re-sorted after re-interning to match the order lookups use.
    pub fn insert_group(&mut self, key: Vec<Vec<(EventExpr, u64)>>, value: f64) {
        let mut key: Vec<FactorKey> = key;
        for row in &mut key {
            row.sort_unstable();
        }
        key.sort_unstable();
        self.memo.insert(key, value);
    }

    /// Entries and pinned estimate of the private group-memo overlay only
    /// (excluding the embedded probability cache).
    fn group_overlay_footprint(&self) -> CacheFootprint {
        let pinned: usize = self
            .memo
            .keys()
            .map(|key| key.iter().map(Vec::len).sum::<usize>())
            .sum();
        CacheFootprint {
            tiers: 0,
            entries: self.memo.len(),
            pinned_nodes: pinned,
        }
    }

    /// Entries and pinned-node estimate of the private overlays alone
    /// (group memo + embedded probability overlay), ignoring any backing
    /// snapshot — the expectation-side counterpart of
    /// [`EvalCache::overlay_footprint`].
    pub fn overlay_footprint(&self) -> CacheFootprint {
        self.eval.overlay_footprint() + self.group_overlay_footprint()
    }

    /// Occupied tiers, entries and pinned-node estimate of this cache: the
    /// private overlays (group memo + embedded probability memo) plus the
    /// backing snapshot chain, if any. When a snapshot backs this cache,
    /// the embedded probability overlay's own backing chain *is* the
    /// snapshot's eval chain, so only the overlay part is added for it.
    pub fn footprint(&self) -> CacheFootprint {
        match &self.snapshot {
            Some(snapshot) => snapshot.footprint() + self.overlay_footprint(),
            None => self.eval.footprint() + self.group_overlay_footprint(),
        }
    }
}

/// One tier's worth of [`FrozenExpectCache`] entries: the factor-group memo
/// published by one republish, plus the cumulative eval-chain handle of the
/// tier's generation. Only the *newest* tier's eval handle is ever read —
/// the eval chain already subsumes the eval state of older expect tiers —
/// which is why [`TierPayload::absorb`] lets the newer handle win.
#[derive(Default, Clone)]
pub struct ExpectTier {
    memo: FastMap<Vec<FactorKey>, f64>,
    /// Cumulative eval tier of this expect tier's generation.
    eval: Arc<FrozenEvalCache>,
}

impl TierPayload for ExpectTier {
    fn len(&self) -> usize {
        self.memo.len()
    }

    fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    fn absorb(&mut self, newer: Self) {
        self.memo.extend(newer.memo);
        self.eval = newer.eval;
    }
}

/// A frozen, read-only [`ExpectCache`] snapshot shared across threads: the
/// factor-group memo plus a [`FrozenEvalCache`] for the embedded probability
/// evaluator. Same merge/validity contract as [`FrozenEvalCache`] — values
/// are pure functions of their (hash-consed) keys, so merging worker
/// overlays is order-independent and bit-deterministic — and the same
/// bounded [`TierChain`] representation, so routine republishes copy only
/// the young tiers, the root is recopied once per size doubling, and an
/// [`EvictionPolicy`] can age out tiers of superseded entries.
pub type FrozenExpectCache = TierChain<ExpectTier>;

impl FrozenExpectCache {
    /// Number of memoised factor groups across all tiers (keys shadowed in
    /// several tiers count once per tier — an upper bound on distinct
    /// entries, as in [`FrozenEvalCache::len`]).
    pub fn len(&self) -> usize {
        self.entry_count()
    }

    /// True if the snapshot holds no group entries and no probability
    /// entries.
    pub fn is_empty(&self) -> bool {
        self.payloads_empty() && self.eval().is_empty()
    }

    /// The snapshot tier backing the embedded probability evaluator.
    pub fn eval(&self) -> &Arc<FrozenEvalCache> {
        &self.payload.eval
    }

    fn get(&self, key: &Vec<FactorKey>) -> Option<f64> {
        self.tiers().find_map(|t| t.payload.memo.get(key).copied())
    }

    /// All memoised factor groups across the chain, deduplicated with the
    /// lookup precedence (newest tier wins — values are identical by
    /// construction). Export path of the persistence layer; the matching
    /// import is [`ExpectCache::insert_group`] after re-interning. The
    /// embedded probability chain is exported separately through
    /// [`FrozenExpectCache::eval`].
    pub fn export_groups(&self) -> Vec<(ExportedGroup, f64)> {
        let mut seen: FastMap<Vec<FactorKey>, ()> = FastMap::default();
        let mut out = Vec::new();
        for t in self.tiers() {
            for (k, v) in t.payload.memo.iter() {
                if seen.insert(k.clone(), ()).is_none() {
                    out.push((k.clone(), *v));
                }
            }
        }
        out
    }

    /// Occupied tiers, entries and pinned-node estimate of this chain,
    /// including the embedded probability chain. A factor-group key pins
    /// one interned expression per case event it holds, so the estimate
    /// walks the keys (O(entries) — footprints are inspection-path only).
    pub fn footprint(&self) -> CacheFootprint {
        let mut own = CacheFootprint {
            tiers: self.occupied_tiers(),
            entries: 0,
            pinned_nodes: 0,
        };
        for t in self.tiers() {
            own.entries += t.payload.memo.len();
            own.pinned_nodes += t
                .payload
                .memo
                .keys()
                .map(|key| key.iter().map(Vec::len).sum::<usize>())
                .sum::<usize>();
        }
        own + self.eval().footprint()
    }

    /// [`FrozenExpectCache::merged_with`] without epoch tracking: tiers
    /// are tagged epoch 0 and nothing is ever evicted (see
    /// [`FrozenEvalCache::merged`]).
    pub fn merged(
        base: Option<&Arc<FrozenExpectCache>>,
        overlays: impl IntoIterator<Item = ExpectCache>,
    ) -> Arc<FrozenExpectCache> {
        Self::merged_with(base, overlays, 0, EvictionPolicy::Never)
    }

    /// Merges worker overlays on top of `base` into a new snapshot — the
    /// republish step, with the determinism contract, epoch tagging and
    /// eviction semantics of [`FrozenEvalCache::merged_with`]; the embedded
    /// probability chain is republished under the same epoch and policy.
    pub fn merged_with(
        base: Option<&Arc<FrozenExpectCache>>,
        overlays: impl IntoIterator<Item = ExpectCache>,
        epoch: u64,
        policy: EvictionPolicy,
    ) -> Arc<FrozenExpectCache> {
        let mut memo = FastMap::default();
        let mut eval_overlays = Vec::new();
        for overlay in overlays {
            memo.extend(overlay.memo);
            eval_overlays.push(overlay.eval);
        }
        let eval =
            FrozenEvalCache::merged_with(base.map(|b| b.eval()), eval_overlays, epoch, policy);
        if memo.is_empty() {
            // No new group entries: reuse the base chain unless the
            // embedded eval tier advanced (then a fresh top tier carries
            // the new eval handle without stacking group entries).
            if let Some(b) = base {
                if Arc::ptr_eq(&eval, b.eval()) {
                    return Arc::clone(b);
                }
            }
        }
        TierChain::publish(base, ExpectTier { memo, eval }, epoch, policy)
    }
}

impl<'u> Expectation<'u> {
    /// Creates an expectation computer over `universe`.
    pub fn new(universe: &'u Universe) -> Self {
        Self::with_cache(universe, ExpectCache::default())
    }

    /// Creates an expectation computer seeded with a previously detached
    /// cache (see [`Expectation::into_cache`]). The cache must have been
    /// built over the same universe value.
    pub fn with_cache(universe: &'u Universe, cache: ExpectCache) -> Self {
        Self {
            universe,
            snapshot: cache.snapshot,
            memo: cache.memo,
            evaluator: crate::Evaluator::with_cache(universe, cache.eval),
            expansions: 0,
            memo_hits: 0,
        }
    }

    /// Detaches the memo state for reuse by a later instance over the same
    /// universe.
    pub fn into_cache(self) -> ExpectCache {
        ExpectCache {
            snapshot: self.snapshot,
            memo: self.memo,
            eval: self.evaluator.into_cache(),
        }
    }

    /// Number of Shannon expansions performed so far.
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Number of memo hits recorded so far (group-level hits plus the
    /// shared evaluator's probability-memo hits on the linearity path).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits + self.evaluator.stats().memo_hits
    }

    /// Computes `E[ Π factors ]` exactly.
    pub fn compute(&mut self, factors: &[Factor]) -> f64 {
        let mut acc = 1.0;
        let mut pending: Vec<&Factor> = Vec::new();
        for f in factors {
            match f.resolved() {
                Some(c) => acc *= c,
                None => pending.push(f),
            }
        }
        if pending.is_empty() || acc == 0.0 {
            return acc;
        }
        // Partition factors into groups that share no variables: expectation
        // of a product of independent groups is the product of expectations.
        let groups = group_indices(pending.iter().map(|f| f.support()));
        if groups.len() > 1 {
            for idxs in groups {
                let members: Vec<&Factor> = idxs.into_iter().map(|i| pending[i]).collect();
                acc *= self.expect_group(&members);
            }
            acc
        } else {
            acc * self.expect_group(&pending)
        }
    }

    fn expect_group(&mut self, group: &[&Factor]) -> f64 {
        if let [single] = group {
            // Linearity of expectation: E[Σᵢ wᵢ·1_{eᵢ}] = Σᵢ wᵢ·P(eᵢ) —
            // exact for a lone factor regardless of correlations *between*
            // its cases, so no Shannon expansion is needed. The shared
            // evaluator memoises the case probabilities across documents.
            return single
                .cases
                .iter()
                .map(|(e, w)| w * self.evaluator.prob(e))
                .sum();
        }
        let mut key: Vec<FactorKey> = group.iter().map(|f| f.key()).collect();
        key.sort_unstable();
        // Two-tier lookup: the shared frozen snapshot first, then the
        // private overlay (an overlay insert below therefore never shadows
        // a snapshot entry).
        if let Some(v) = self
            .snapshot
            .as_ref()
            .and_then(|s| s.get(&key))
            .or_else(|| self.memo.get(&key).copied())
        {
            self.memo_hits += 1;
            return v;
        }
        // Pivot: the variable occurring in the most case events.
        let mut counts: HashMap<VarId, usize> = HashMap::new();
        for f in group {
            for (e, _) in &f.cases {
                for &v in e.support_slice() {
                    *counts.entry(v).or_default() += 1;
                }
            }
        }
        let pivot = counts
            .into_iter()
            .max_by_key(|&(var, count)| (count, std::cmp::Reverse(var)))
            .map(|(var, _)| var)
            .expect("unresolved group has support");
        self.expansions += 1;
        let n = self
            .universe
            .num_outcomes(pivot)
            .expect("factor references a variable outside its universe");
        let mut total = 0.0;
        for o in 0..n {
            let p_o = self
                .universe
                .outcome_prob(pivot, o)
                .expect("outcome index in range");
            if p_o == 0.0 {
                continue;
            }
            let restricted: Vec<Factor> = group.iter().map(|f| f.restrict(pivot, o)).collect();
            total += p_o * self.compute(&restricted);
        }
        self.memo.insert(key, total);
        total
    }
}

/// One-shot convenience wrapper around [`Expectation`].
pub fn expectation(universe: &Universe, factors: &[Factor]) -> f64 {
    Expectation::new(universe).compute(factors)
}

/// Expectation by brute-force world enumeration (testing oracle; exponential).
pub fn brute_force_expectation(universe: &Universe, factors: &[Factor]) -> f64 {
    let mut support = std::collections::BTreeSet::new();
    for f in factors {
        for (e, _) in &f.cases {
            e.collect_support(&mut support);
        }
    }
    crate::worlds::Worlds::over(universe, support)
        .map(|(world, p)| {
            let v: f64 = factors
                .iter()
                .map(|f| f.value_in(&world).expect("support covers factors"))
                .product();
            p * v
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_factors_multiply() {
        let u = Universe::new();
        let fs = [Factor::constant(0.5), Factor::constant(0.4)];
        assert!((expectation(&u, &fs) - 0.2).abs() < 1e-12);
        assert_eq!(expectation(&u, &[]), 1.0);
    }

    #[test]
    fn indicator_expectation_is_probability() {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let ea = u.bool_event(a).unwrap();
        let f = Factor::indicator(ea);
        assert!((expectation(&u, &[f]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn independent_factors_factorize() {
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let b = u.add_bool("b", 0.6).unwrap();
        let fa = Factor::indicator(u.bool_event(a).unwrap());
        let fb = Factor::indicator(u.bool_event(b).unwrap());
        assert!((expectation(&u, &[fa, fb]) - 0.18).abs() < 1e-12);
    }

    #[test]
    fn correlated_factors_are_exact() {
        // Both factors indicate the same event: E[1_a · 1_a] = P(a), not P(a)².
        let mut u = Universe::new();
        let a = u.add_bool("a", 0.3).unwrap();
        let ea = u.bool_event(a).unwrap();
        let f1 = Factor::indicator(ea.clone());
        let f2 = Factor::indicator(ea);
        assert!((expectation(&u, &[f1, f2]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rule_term_shape() {
        // A paper-style rule term: context certain, feature prob 0.95, σ=0.8
        // → E = 0.95·0.8 + 0.05·0.2 = 0.77 (rule R1 on Channel 5 news).
        let mut u = Universe::new();
        let f = u.add_bool("human-interest", 0.95).unwrap();
        let ef = u.bool_event(f).unwrap();
        let term = Factor::new([(ef.clone(), 0.8), (EventExpr::not(ef), 0.2)]);
        assert!((expectation(&u, &[term]) - 0.77).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_with_shared_variables() {
        let mut u = Universe::new();
        let shared = u.add_choice("g", &[0.4, 0.35]).unwrap();
        let other = u.add_bool("h", 0.7).unwrap();
        let g0 = u.atom(shared, 0).unwrap();
        let g1 = u.atom(shared, 1).unwrap();
        let h = u.bool_event(other).unwrap();
        let f1 = Factor::new([(g0.clone(), 0.9), (EventExpr::not(g0.clone()), 0.1)]);
        let f2 = Factor::new([
            (EventExpr::and([g1.clone(), h.clone()]), 0.8),
            (EventExpr::not(EventExpr::and([g1, h])), 0.25),
        ]);
        let exact = expectation(&u, &[f1.clone(), f2.clone()]);
        let brute = brute_force_expectation(&u, &[f1, f2]);
        assert!((exact - brute).abs() < 1e-12, "{exact} vs {brute}");
    }

    #[test]
    fn memoisation_reused_across_documents() {
        let mut u = Universe::new();
        let c1 = u.add_bool("ctx1", 0.5).unwrap();
        let c2 = u.add_bool("ctx2", 0.8).unwrap();
        // A composite context event (conjunction of two sensors).
        let ectx = EventExpr::and([u.bool_event(c1).unwrap(), u.bool_event(c2).unwrap()]);
        let p_ctx = 0.5 * 0.8;
        let mut exp = Expectation::new(&u);
        // Two "documents" whose factors share the context sub-problem.
        for _ in 0..2 {
            let f = Factor::new([(ectx.clone(), 0.9), (EventExpr::not(ectx.clone()), 1.0)]);
            let v = exp.compute(&[f]);
            assert!((v - (p_ctx * 0.9 + (1.0 - p_ctx))).abs() < 1e-12);
        }
        assert!(
            exp.memo_hits() > 0,
            "second document must reuse the memoised context sub-problem"
        );
    }

    #[test]
    fn detached_cache_carries_memo_across_instances() {
        let mut u = Universe::new();
        let shared = u.add_choice("g", &[0.4, 0.35]).unwrap();
        let other = u.add_bool("h", 0.7).unwrap();
        let g0 = u.atom(shared, 0).unwrap();
        let g1 = u.atom(shared, 1).unwrap();
        let h = u.bool_event(other).unwrap();
        let factors = [
            Factor::new([(g0.clone(), 0.9), (EventExpr::not(g0.clone()), 0.1)]),
            Factor::new([
                (EventExpr::and([g1.clone(), h.clone()]), 0.8),
                (EventExpr::not(EventExpr::and([g1, h])), 0.25),
            ]),
        ];
        let mut first = Expectation::new(&u);
        let v1 = first.compute(&factors);
        let cache = first.into_cache();
        assert!(!cache.is_empty());
        let mut second = Expectation::with_cache(&u, cache);
        let v2 = second.compute(&factors);
        assert_eq!(v1.to_bits(), v2.to_bits(), "cached value is bit-identical");
        assert_eq!(
            second.expansions(),
            0,
            "second instance must answer from the carried cache"
        );
    }

    #[test]
    fn frozen_snapshot_carries_group_memo_across_threads() {
        let mut u = Universe::new();
        let shared = u.add_choice("g", &[0.4, 0.35]).unwrap();
        let other = u.add_bool("h", 0.7).unwrap();
        let g0 = u.atom(shared, 0).unwrap();
        let g1 = u.atom(shared, 1).unwrap();
        let h = u.bool_event(other).unwrap();
        // Correlated factors (shared variable `g`) force the group memo.
        let factors = [
            Factor::new([(g0.clone(), 0.9), (EventExpr::not(g0.clone()), 0.1)]),
            Factor::new([
                (EventExpr::and([g1.clone(), h.clone()]), 0.8),
                (EventExpr::not(EventExpr::and([g1, h])), 0.25),
            ]),
        ];
        let mut first = Expectation::new(&u);
        let v1 = first.compute(&factors);
        let snapshot = FrozenExpectCache::merged(None, [first.into_cache()]);
        assert!(!snapshot.is_empty());
        // The snapshot is Sync: fresh overlays on other threads must answer
        // from the shared tier, bit-identically and without expansion.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let snapshot = Arc::clone(&snapshot);
                let factors = &factors;
                let u = &u;
                scope.spawn(move || {
                    let mut exp = Expectation::with_cache(u, ExpectCache::with_snapshot(snapshot));
                    let v2 = exp.compute(factors);
                    assert_eq!(v1.to_bits(), v2.to_bits());
                    assert_eq!(exp.expansions(), 0);
                    assert!(exp.into_cache().is_empty(), "no private copies on hits");
                });
            }
        });
    }

    #[test]
    fn zero_weight_cases_are_dropped() {
        let f = Factor::new([(EventExpr::True, 0.0), (EventExpr::False, 5.0)]);
        assert!(f.cases().is_empty());
        assert_eq!(f.resolved(), Some(0.0));
        assert!(f.support().is_empty());
    }
}
