//! Offline stand-in for the `proptest` crate (no network in this build
//! environment). Implements the API subset CAPRA's property tests use:
//! [`proptest!`], [`prop_compose!`], [`prop_assert!`], [`prop_assert_eq!`],
//! [`ProptestConfig::with_cases`], `any::<T>()`, range and tuple strategies,
//! and `prop::collection::vec`.
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded from
//! the test name, so failures reproduce across runs). There is **no
//! shrinking** — a failing case reports its inputs via the assertion
//! message instead.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property-test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic test RNG: a thin wrapper over the `rand` shim's `StdRng`
/// (one PRNG implementation for both shims), seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(rand::StdRng);

impl TestRng {
    /// A generator derived from the test name and case index, so every
    /// run of the suite exercises the same cases.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self(<rand::StdRng as rand::SeedableRng>::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::Rng::next_u64(&mut self.0)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        rand::Rng::next_f64(&mut self.0)
    }

    /// A uniform integer below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of random values (the real crate's `Strategy`, minus
/// shrinking: `sample` replaces `new_tree`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one random value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy combinators and adapters.
pub mod strategy {
    use super::{Strategy, TestRng};

    pub use super::Strategy as StrategyTrait;

    /// A strategy backed by a closure — the expansion target of
    /// [`crate::prop_compose!`].
    pub struct SFn<F>(F);

    impl<F> SFn<F> {
        /// Wraps a sampling closure.
        pub fn new(f: F) -> Self {
            Self(f)
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for SFn<F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
    for (A, B, C, D, E, F)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
            self.4.sample(rng),
            self.5.sample(rng),
        )
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `element`-generated values with `size`-range length.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.start < self.size.end, "empty vec-size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs a block of property tests (the real crate's `proptest!` macro,
/// minus shrinking: failures report the case index, and the deterministic
/// seeding reproduces them).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr;
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::deterministic(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Defines a named composite strategy function (the real crate's
/// `prop_compose!`).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()
     ($($pat:pat in $strat:expr),+ $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])* $vis fn $name() -> impl $crate::Strategy<Value = $out> {
            $crate::strategy::SFn::new(move |__rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Asserts inside a property test, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// The common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_compose, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };

    /// Namespaced strategy modules (mirrors the real prelude's `prop`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in 0usize..10, b in 0.0f64..=1.0) -> (usize, f64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u8..9, y in 0i64..4, v in prop::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0..4).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn composed_strategies_work((a, b) in pair(), (p, q) in (0usize..3, 0usize..3)) {
            prop_assert!(a < 10);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert_eq!((p < 3, q < 3), (true, true));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest!(@impl ProptestConfig::with_cases(4);
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        );
        inner();
    }
}
