//! Offline stand-in for the `criterion` crate (no network in this build
//! environment). Provides the API subset CAPRA's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, throughput annotation,
//! [`criterion_group!`] / [`criterion_main!`] — over a simple wall-clock
//! harness: calibrate a batch size, run timed batches, report the median.
//!
//! Environment knobs:
//! * `CAPRA_BENCH_BUDGET_MS` — per-benchmark measurement budget
//!   (default 300 ms; CI smoke runs set it low);
//! * `CAPRA_BENCH_JSON` — if set, append one JSON line per benchmark to the
//!   given file (`{"name":…,"ns_per_iter":…}`), consumed by the perf
//!   snapshot tooling.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

/// Throughput annotation (affects the printed rate only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into a benchmark id (accepts `&str` and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn budget() -> Duration {
    let ms = std::env::var("CAPRA_BENCH_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Runs one benchmark: calibrate, measure, report. Returns ns/iter.
fn run_bench(name: &str, throughput: Option<Throughput>, mut run: impl FnMut(&mut Bencher)) -> f64 {
    let budget = budget();
    // Calibrate: grow the batch until one batch costs ≥ 1/20 of the budget.
    let mut iters: u64 = 1;
    let per_iter_estimate = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        run(&mut b);
        if b.elapsed * 20 >= budget || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    // Measure: as many batches as fit in the budget (at least 3), median.
    let batches = ((budget.as_secs_f64() / (per_iter_estimate * iters as f64).max(1e-9)) as usize)
        .clamp(3, 25);
    let mut samples: Vec<f64> = (0..batches)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            run(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let ns = median * 1e9;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / median),
        None => String::new(),
    };
    println!("bench: {name:<48} {ns:>14.1} ns/iter  ({iters} iters × {batches} batches){rate}");
    if let Ok(path) = std::env::var("CAPRA_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"name\":\"{name}\",\"ns_per_iter\":{ns:.1}}}");
        }
    }
    ns
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_bench(&name, self.throughput, f);
        self
    }

    /// Shim extension (not part of the real criterion API): benchmarks
    /// `f` under `id` exactly like
    /// [`BenchmarkGroup::bench_function`], and additionally returns the
    /// measured median ns/iter — so a bench can derive secondary metrics
    /// (e.g. a ratio of two medians emitted as a gauge) from the same
    /// measurement the JSON snapshot records.
    pub fn bench_function_measured<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> f64 {
        let name = format!("{}/{}", self.name, id.into_id());
        run_bench(&name, self.throughput, f)
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_bench(&name, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.into_id(), None, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        std::env::set_var("CAPRA_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
    }
}
