//! Offline stand-in for the `parking_lot` crate (this build environment has
//! no network access, so crates.io dependencies are vendored as minimal
//! API-compatible shims). Backed by `std::sync`; poisoning is swallowed —
//! like real parking_lot, a panicking writer does not poison the lock.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader–writer lock with the `parking_lot` API subset CAPRA uses:
/// `read()` / `write()` return guards directly (no `Result`).
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with the `parking_lot` API subset: `lock()` returns the guard.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.lock().len(), 2);
    }
}
