//! Offline stand-in for the `rand` crate (no network in this build
//! environment). Implements the API subset CAPRA uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] and [`Rng::gen_range`]
//! — on top of SplitMix64 seeding + xoshiro256** output. Deterministic per
//! seed, which is all the workload generators require; the stream does NOT
//! match upstream `rand`'s `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a range can sample (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Random-value interface (API-compatible subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform draw from a range; panics on empty ranges like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// The standard seeded generator (xoshiro256** core).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Generator types (mirrors `rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let z: usize = rng.gen_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
