//! # capra-commerce — the commerce-search domain pack
//!
//! A second scenario domain beside TVTouch, after Ieong et al.
//! (*Predicting Preference Flips in Commerce Search*): in commerce
//! search the query context **inverts** preferences — a shopper hunting
//! a gift values premium products and trusted brands, the same shopper
//! hunting a bargain values discounts, and price/brand trade-offs flip
//! accordingly. That exercises a shape of context dependence tvtouch
//! never does: the *same* candidate set, the *same* rule repository, and
//! a top-1 result that inverts purely because the session context
//! changed.
//!
//! * [`scenario`] — a fixed, hand-derivable fixture (four products, three
//!   rules, two session contexts) with the expected scores as constants,
//!   paper-oracle style;
//! * [`sensors`] — a query-intent classifier producing *correlated*
//!   uncertain context (one choice variable over shopping intents);
//! * [`generate`] — a seeded synthetic catalog + shopper population with
//!   independent uncertain features (accepted by all four engines);
//! * [`workload`] — a deterministic workload builder: interleaved intent
//!   switches and rank requests serialized via
//!   [`capra_core::persist::Workload`] for the `xtask` replay CLI.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod scenario;
pub mod sensors;
pub mod workload;
