//! The fixed commerce fixture: four products, three rules, and two
//! session contexts whose top-1 results invert — with every expected
//! score hand-derivable, paper-oracle style.
//!
//! ## The catalog
//!
//! | Product | Premium | Discounted | fromBrand Luxe |
//! |---------|---------|------------|----------------|
//! | Silk scarf | 0.9 | — | 1.0 (certain) |
//! | Discount blender | — | 0.95 | — |
//! | Mid-range headphones | 0.5 | 0.6 | — |
//! | Plain socks | — | — | — |
//!
//! ## The rules
//!
//! * `R-gift-premium`: `GiftShopping → Product AND Premium`, σ = 0.9
//! * `R-gift-brand`: `GiftShopping → Product AND ∃fromBrand.{Luxe}`, σ = 0.8
//! * `R-bargain`: `BargainHunting → Product AND Discounted`, σ = 0.95
//!
//! ## The hand derivation
//!
//! Each applicable rule contributes the factor
//! `P(feature)·σ + (1 − P(feature))·(1 − σ)`; a rule whose context does
//! not hold contributes 1. Under a certain **gift** context the scarf
//! scores `(0.9·0.9 + 0.1·0.1) · (1.0·0.8) = 0.82 · 0.8 = 0.656` and
//! tops the ranking; under a certain **bargain** context it scores only
//! `1 − 0.95 = 0.05` while the blender's
//! `0.95·0.95 + 0.05·0.05 = 0.905` wins — the preference flip.

use capra_core::{Kb, PreferenceRule, RuleRepository, Score, ScoringEnv};
use capra_dl::IndividualId;

/// Which session context the shopper is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// Gift shopping: premium products and the trusted brand win.
    Gift,
    /// Bargain hunting: discounted products win.
    Bargain,
}

/// The fixed fixture: KB, rules, the shopper, and the four products in
/// [`PRODUCT_NAMES`] order.
pub struct CommerceScenario {
    /// Knowledge base with the shopper's session context and the
    /// products' uncertain features.
    pub kb: Kb,
    /// The three preference rules (shared across both contexts — only
    /// the asserted context differs).
    pub rules: RuleRepository,
    /// The situated shopper.
    pub shopper: IndividualId,
    /// The four products, in [`PRODUCT_NAMES`] order.
    pub products: Vec<IndividualId>,
}

impl CommerceScenario {
    /// A scoring environment over this scenario.
    pub fn env(&self) -> ScoringEnv<'_> {
        ScoringEnv {
            kb: &self.kb,
            rules: &self.rules,
            user: self.shopper,
        }
    }
}

/// The products, in score-table order.
pub const PRODUCT_NAMES: [&str; 4] = [
    "Silk scarf",
    "Discount blender",
    "Mid-range headphones",
    "Plain socks",
];

/// Hand-computed expected scores under a certain *gift* context, in
/// [`PRODUCT_NAMES`] order:
///
/// * scarf: `(0.9·0.9 + 0.1·0.1) · 0.8 = 0.82 · 0.8 = 0.656`
/// * blender: `0.1 · 0.2 = 0.02`
/// * headphones: `(0.5·0.9 + 0.5·0.1) · 0.2 = 0.5 · 0.2 = 0.1`
/// * socks: `0.1 · 0.2 = 0.02`
pub const GIFT_EXPECTED_SCORES: [(&str, f64); 4] = [
    ("Silk scarf", 0.656),
    ("Discount blender", 0.02),
    ("Mid-range headphones", 0.1),
    ("Plain socks", 0.02),
];

/// Hand-computed expected scores under a certain *bargain* context, in
/// [`PRODUCT_NAMES`] order:
///
/// * scarf: `1 − 0.95 = 0.05`
/// * blender: `0.95·0.95 + 0.05·0.05 = 0.905`
/// * headphones: `0.6·0.95 + 0.4·0.05 = 0.59`
/// * socks: `0.05`
pub const BARGAIN_EXPECTED_SCORES: [(&str, f64); 4] = [
    ("Silk scarf", 0.05),
    ("Discount blender", 0.905),
    ("Mid-range headphones", 0.59),
    ("Plain socks", 0.05),
];

/// The top product under each context — the flip the oracle tests pin.
pub const GIFT_TOP: &str = "Silk scarf";
/// See [`GIFT_TOP`].
pub const BARGAIN_TOP: &str = "Discount blender";

/// Builds the catalog and rules *without* any session context asserted
/// — the state a serving flow starts from before the first intent event
/// arrives (every product then scores 1: no applicable rule).
pub fn catalog_scenario() -> CommerceScenario {
    let mut kb = Kb::new();
    let shopper = kb.individual("Dana");

    let scarf = kb.individual("Silk scarf");
    let blender = kb.individual("Discount blender");
    let headphones = kb.individual("Mid-range headphones");
    let socks = kb.individual("Plain socks");
    let luxe = kb.individual("Luxe");
    for product in [scarf, blender, headphones, socks] {
        kb.assert_concept(product, "Product");
    }
    kb.assert_concept_prob(scarf, "Premium", 0.9)
        .expect("valid probability");
    kb.assert_role(scarf, "fromBrand", luxe); // probability 1.0
    kb.assert_concept_prob(blender, "Discounted", 0.95)
        .expect("valid probability");
    kb.assert_concept_prob(headphones, "Premium", 0.5)
        .expect("valid probability");
    kb.assert_concept_prob(headphones, "Discounted", 0.6)
        .expect("valid probability");

    let mut rules = RuleRepository::new();
    rules
        .add(PreferenceRule::new(
            "R-gift-premium",
            kb.parse("GiftShopping").expect("valid concept"),
            kb.parse("Product AND Premium").expect("valid concept"),
            Score::new(0.9).expect("valid score"),
        ))
        .expect("unique name");
    rules
        .add(PreferenceRule::new(
            "R-gift-brand",
            kb.parse("GiftShopping").expect("valid concept"),
            kb.parse("Product AND EXISTS fromBrand.{Luxe}")
                .expect("valid concept"),
            Score::new(0.8).expect("valid score"),
        ))
        .expect("unique name");
    rules
        .add(PreferenceRule::new(
            "R-bargain",
            kb.parse("BargainHunting").expect("valid concept"),
            kb.parse("Product AND Discounted").expect("valid concept"),
            Score::new(0.95).expect("valid score"),
        ))
        .expect("unique name");

    CommerceScenario {
        kb,
        rules,
        shopper,
        products: vec![scarf, blender, headphones, socks],
    }
}

/// Builds the fixture with a *certain* session context asserted (the
/// two-column score table in the module docs).
pub fn scenario(intent: Intent) -> CommerceScenario {
    let mut s = catalog_scenario();
    let concept = match intent {
        Intent::Gift => "GiftShopping",
        Intent::Bargain => "BargainHunting",
    };
    s.kb.assert_concept(s.shopper, concept);
    s
}

/// The expected score table for `intent`, in [`PRODUCT_NAMES`] order.
pub fn expected_scores(intent: Intent) -> [(&'static str, f64); 4] {
    match intent {
        Intent::Gift => GIFT_EXPECTED_SCORES,
        Intent::Bargain => BARGAIN_EXPECTED_SCORES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_core::{
        rank, FactorizedEngine, LineageEngine, NaiveEnumEngine, NaiveViewEngine, ScoringEngine,
    };

    fn engines() -> Vec<Box<dyn ScoringEngine>> {
        vec![
            Box::new(NaiveViewEngine::new()),
            Box::new(NaiveEnumEngine::new()),
            Box::new(FactorizedEngine::new()),
            Box::new(LineageEngine::new()),
        ]
    }

    #[test]
    fn hand_derived_scores_on_every_engine_both_contexts() {
        for intent in [Intent::Gift, Intent::Bargain] {
            let s = scenario(intent);
            let env = s.env();
            for engine in engines() {
                let scores = engine.score_all(&env, &s.products).unwrap();
                for (score, (name, expected)) in scores.iter().zip(expected_scores(intent)) {
                    assert!(
                        (score.score - expected).abs() < 1e-12,
                        "{} under {intent:?}: {name} = {} (expected {expected})",
                        engine.name(),
                        score.score
                    );
                }
            }
        }
    }

    #[test]
    fn top_1_flips_between_contexts() {
        for (intent, expected_top) in [(Intent::Gift, GIFT_TOP), (Intent::Bargain, BARGAIN_TOP)] {
            let s = scenario(intent);
            let ranked = rank(
                FactorizedEngine::new()
                    .score_all(&s.env(), &s.products)
                    .unwrap(),
            );
            assert_eq!(s.kb.voc.individual_name(ranked[0].doc), expected_top);
        }
    }

    #[test]
    fn empty_context_scores_one_everywhere() {
        let s = catalog_scenario();
        let scores = LineageEngine::new()
            .score_all(&s.env(), &s.products)
            .unwrap();
        for score in scores {
            assert!((score.score - 1.0).abs() < 1e-12);
        }
    }
}
