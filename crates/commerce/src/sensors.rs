//! The query-intent classifier: correlated uncertain session context.
//!
//! A real commerce front-end infers the shopper's intent from the query
//! stream ("gift wrap" vs. "cheapest" vs. a brand name) — a *classifier
//! posterior* over mutually exclusive intents, exactly the correlated
//! shape tvtouch's location sensor has: one choice variable, one
//! alternative per intent. The produced context is deliberately
//! correlated, making it a lineage-engine workload (the strict
//! factorized engine rejects it); the [`crate::generate`] population
//! uses independent intent booleans instead so every engine accepts it.

use capra_core::Kb;
use capra_dl::IndividualId;
use capra_events::Result as EventResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The intent labels, in the classifier's output order.
pub const INTENTS: [&str; 3] = ["GiftShopping", "BargainHunting", "BrandLoyal"];

/// A classifier posterior over the [`INTENTS`].
#[derive(Debug, Clone)]
pub struct IntentReading {
    /// `P(intent_i)`, in [`INTENTS`] order; sums to ≤ 1 (remainder =
    /// "undecided").
    pub distribution: Vec<f64>,
}

impl IntentReading {
    /// Draws a plausible posterior from a seeded RNG: confident about
    /// one intent, remainder spread over the others.
    pub fn simulate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let favourite = rng.gen_range(0..INTENTS.len());
        let confidence = rng.gen_range(0.6..0.95);
        let rest = (1.0 - confidence) / (INTENTS.len() as f64);
        Self {
            distribution: (0..INTENTS.len())
                .map(|i| if i == favourite { confidence } else { rest })
                .collect(),
        }
    }
}

/// Asserts an intent posterior into the KB as *correlated* uncertain
/// context for `shopper`: one choice variable, one concept assertion per
/// intent backed by that variable's atoms — the intents are mutually
/// exclusive by construction.
///
/// `label` disambiguates the classifier variables when several readings
/// are applied over a session (each query refines the posterior).
pub fn apply_intent(
    kb: &mut Kb,
    shopper: IndividualId,
    reading: &IntentReading,
    label: &str,
) -> EventResult<()> {
    assert_eq!(reading.distribution.len(), INTENTS.len());
    let var = kb
        .universe
        .add_choice(&format!("intent:{label}"), &reading.distribution)?;
    for (i, intent) in INTENTS.iter().enumerate() {
        let event = kb.universe.atom(var, i as u16)?;
        kb.assert_concept_event(shopper, intent, event);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_events::Evaluator;

    #[test]
    fn reading_simulation_is_deterministic_and_normalised() {
        let a = IntentReading::simulate(7);
        let b = IntentReading::simulate(7);
        assert_eq!(a.distribution, b.distribution);
        let sum: f64 = a.distribution.iter().sum();
        assert!(sum <= 1.0 + 1e-9);
        assert!(a.distribution.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn intents_are_mutually_exclusive() {
        let mut kb = Kb::new();
        let shopper = kb.individual("dana");
        let reading = IntentReading {
            distribution: vec![0.7, 0.2, 0.1],
        };
        apply_intent(&mut kb, shopper, &reading, "q0").unwrap();
        let both = kb.parse("GiftShopping AND BargainHunting").unwrap();
        let any = kb
            .parse("GiftShopping OR BargainHunting OR BrandLoyal")
            .unwrap();
        let mut ev = Evaluator::new(&kb.universe);
        let e = kb.reasoner().membership(shopper, &both);
        assert_eq!(ev.prob(&e), 0.0, "one query, one intent");
        let e = kb.reasoner().membership(shopper, &any);
        assert!((ev.prob(&e) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_readings_need_distinct_labels() {
        let mut kb = Kb::new();
        let shopper = kb.individual("dana");
        let reading = IntentReading::simulate(1);
        apply_intent(&mut kb, shopper, &reading, "q0").unwrap();
        assert!(apply_intent(&mut kb, shopper, &reading, "q0").is_err());
        apply_intent(&mut kb, shopper, &reading, "q1").unwrap();
    }
}
