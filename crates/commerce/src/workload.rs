//! Deterministic commerce workload builder for the `xtask` replay CLI.
//!
//! Builds a [`Workload`]: the generated catalog as the initial KB, the
//! flip rule set, and an interleaved request stream in which shoppers'
//! intents churn (re-asserted `ConceptProb` context events) between
//! rank requests. Same config ⇒ byte-identical file, which is the
//! property the replay-determinism CI check rests on.

use crate::generate::{flip_rules, generate, ShopConfig};
use capra_core::persist::{Workload, WorkloadFact, WorkloadMeta, WorkloadRecord};
use capra_core::Kb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the request stream layered over a [`ShopConfig`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// The catalog/population to generate first.
    pub shop: ShopConfig,
    /// Number of rank requests.
    pub requests: usize,
    /// Candidate documents per rank request.
    pub docs_per_request: usize,
    /// Top-k per request.
    pub k: u32,
    /// Probability a request is preceded by an intent-churn context
    /// event (the shopper's classifier posterior shifted).
    pub churn: f64,
    /// Seed for the request stream (independent of the catalog seed).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            shop: ShopConfig::default(),
            requests: 200,
            docs_per_request: 32,
            k: 10,
            churn: 0.3,
            seed: 0xBA5E,
        }
    }
}

impl WorkloadConfig {
    /// A scaled-down configuration for fast unit tests and CI.
    pub fn tiny() -> Self {
        Self {
            shop: ShopConfig::tiny(),
            requests: 24,
            docs_per_request: 6,
            k: 3,
            churn: 0.4,
            seed: 5,
        }
    }
}

/// Builds the deterministic workload. Identities are carried by name
/// (the replay side re-interns them), so the file is portable across
/// processes.
pub fn build_workload(config: WorkloadConfig) -> Workload {
    let db = generate(config.shop.clone());
    let rules = flip_rules(&db);
    let name = |kb: &Kb, id| kb.voc.individual_name(id).to_string();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut records = Vec::with_capacity(config.requests * 2);
    for _ in 0..config.requests {
        let shopper = db.shoppers[rng.gen_range(0..db.shoppers.len())];
        if rng.gen_bool(config.churn) {
            let concept = if rng.gen_bool(0.5) {
                "GiftShopping"
            } else {
                "BargainHunting"
            };
            records.push(WorkloadRecord::Assert {
                subject: name(&db.kb, shopper),
                fact: WorkloadFact::ConceptProb(concept.into(), rng.gen_range(0.05..=0.95)),
            });
        }
        let docs: Vec<String> = (0..config.docs_per_request)
            .map(|_| name(&db.kb, db.products[rng.gen_range(0..db.products.len())]))
            .collect();
        records.push(WorkloadRecord::Rank {
            user: name(&db.kb, shopper),
            docs,
            k: config.k,
        });
    }

    Workload {
        meta: WorkloadMeta {
            domain: "commerce".into(),
            seed: config.seed,
            comment: format!(
                "shoppers={} products={} requests={} churn={}",
                config.shop.shoppers, config.shop.products, config.requests, config.churn
            ),
        },
        kb: db.kb,
        rules,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_core::serve::{replay_workload, workload_service, ServiceConfig};
    use capra_core::FactorizedEngine;

    #[test]
    fn same_config_same_bytes() {
        let a = build_workload(WorkloadConfig::tiny());
        let b = build_workload(WorkloadConfig::tiny());
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.file_digest(), b.file_digest());
    }

    #[test]
    fn different_stream_seed_different_bytes() {
        let a = build_workload(WorkloadConfig::tiny());
        let b = build_workload(WorkloadConfig {
            seed: 6,
            ..WorkloadConfig::tiny()
        });
        assert_ne!(a.file_digest(), b.file_digest());
    }

    #[test]
    fn replays_deterministically() {
        let w = build_workload(WorkloadConfig::tiny());
        let run = |w: &Workload| {
            let svc = workload_service(FactorizedEngine::new(), ServiceConfig::default(), w);
            replay_workload(&svc, w).unwrap()
        };
        let a = run(&w);
        let b = run(&w);
        assert_eq!(a.transcript_hash, b.transcript_hash);
        assert_eq!(a.errors, 0, "commerce workloads are engine-clean");
        assert_eq!(a.ranks as usize, w.rank_records());
    }
}
