//! The seeded synthetic commerce catalog and shopper population.
//!
//! Mirrors `capra_tvtouch::generate`: configurable cardinalities, one
//! explicit seed, and *independent* uncertain features throughout — so
//! every engine (including the strict factorized one) accepts the
//! workload and measured differences stay purely algorithmic.
//!
//! The context dependence has the Ieong-et-al. flip shape: every
//! shopper carries independent `GiftShopping` / `BargainHunting`
//! leanings plus a brand loyalty, and the rule set pairs each with the
//! features it *inverts* on (premium ↔ discounted, brand match).

use capra_core::{Kb, PreferenceRule, RuleRepository, Score};
use capra_dl::IndividualId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic commerce database.
#[derive(Debug, Clone)]
pub struct ShopConfig {
    /// Number of shoppers.
    pub shoppers: usize,
    /// Number of products in the catalog.
    pub products: usize,
    /// Number of brands.
    pub brands: usize,
    /// Number of product categories.
    pub categories: usize,
    /// Probability a product carries the `Premium` tag (uncertain).
    pub premium_rate: f64,
    /// Probability a product carries the `Discounted` tag (uncertain).
    pub discount_rate: f64,
    /// RNG seed; same seed ⇒ identical database.
    pub seed: u64,
}

impl Default for ShopConfig {
    fn default() -> Self {
        Self {
            shoppers: 1000,
            products: 400,
            brands: 20,
            categories: 12,
            premium_rate: 0.3,
            discount_rate: 0.35,
            seed: 0xC0FF_EE00,
        }
    }
}

impl ShopConfig {
    /// A scaled-down configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            shoppers: 16,
            products: 12,
            brands: 3,
            categories: 2,
            premium_rate: 0.5,
            discount_rate: 0.5,
            seed: 11,
        }
    }
}

/// The generated database and its entity handles.
pub struct CommerceDb {
    /// The knowledge base.
    pub kb: Kb,
    /// All shoppers (potential tenants).
    pub shoppers: Vec<IndividualId>,
    /// All products (the scoring candidates).
    pub products: Vec<IndividualId>,
    /// Brand individuals.
    pub brands: Vec<IndividualId>,
    /// Category individuals.
    pub categories: Vec<IndividualId>,
    /// The configuration used.
    pub config: ShopConfig,
}

impl CommerceDb {
    /// Number of ABox tuples (concept + role assertions).
    pub fn num_tuples(&self) -> usize {
        self.kb.abox.num_tuples()
    }
}

/// Generates the database. Shopper `i`'s intent leanings are seeded
/// independent booleans: `GiftShopping` with probability drawn from the
/// RNG, `BargainHunting` likewise, plus `LoyalTo_<b>` for one favourite
/// brand — all independent, so the strict factorized engine accepts any
/// shopper's workload.
pub fn generate(config: ShopConfig) -> CommerceDb {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut kb = Kb::new();

    let brands: Vec<IndividualId> = (0..config.brands)
        .map(|i| {
            let b = kb.individual(&format!("Brand_{i}"));
            kb.assert_concept(b, "Brand");
            b
        })
        .collect();
    let categories: Vec<IndividualId> = (0..config.categories)
        .map(|i| {
            let c = kb.individual(&format!("Category_{i}"));
            kb.assert_concept(c, "Category");
            c
        })
        .collect();

    let products: Vec<IndividualId> = (0..config.products)
        .map(|i| {
            let p = kb.individual(&format!("Product_{i}"));
            kb.assert_concept(p, "Product");
            p
        })
        .collect();
    for &p in &products {
        // Catalog metadata: one brand, one category (certain facts).
        let brand = brands[rng.gen_range(0..brands.len())];
        kb.assert_role(p, "fromBrand", brand);
        let category = categories[rng.gen_range(0..categories.len())];
        kb.assert_role(p, "inCategory", category);
        // Pricing tags are *inferred* (scraped listings, fluctuating
        // sales), hence uncertain.
        if rng.gen_bool(config.premium_rate) {
            let certainty = rng.gen_range(0.6..=1.0);
            kb.assert_concept_prob(p, "Premium", certainty)
                .expect("valid probability");
        }
        if rng.gen_bool(config.discount_rate) {
            let certainty = rng.gen_range(0.5..=1.0);
            kb.assert_concept_prob(p, "Discounted", certainty)
                .expect("valid probability");
        }
    }

    let shoppers: Vec<IndividualId> = (0..config.shoppers)
        .map(|i| {
            let s = kb.individual(&format!("Shopper_{i}"));
            kb.assert_concept(s, "Shopper");
            s
        })
        .collect();
    for &shopper in &shoppers {
        kb.assert_concept_prob(shopper, "GiftShopping", rng.gen_range(0.05..=0.95))
            .expect("valid probability");
        kb.assert_concept_prob(shopper, "BargainHunting", rng.gen_range(0.05..=0.95))
            .expect("valid probability");
        let favourite = rng.gen_range(0..brands.len());
        kb.assert_concept_prob(
            shopper,
            &format!("LoyalTo_{favourite}"),
            rng.gen_range(0.3..=0.9),
        )
        .expect("valid probability");
    }

    CommerceDb {
        kb,
        shoppers,
        products,
        brands,
        categories,
        config,
    }
}

/// The flip-shaped rule set over a generated database:
///
/// * `F-gift`: `GiftShopping → Product AND Premium`, σ = 0.9 — gift
///   sessions pay up;
/// * `F-bargain`: `BargainHunting → Product AND Discounted`, σ = 0.95
///   — bargain sessions chase markdowns, so which tag a product carries
///   flips its standing with the session;
/// * `F-loyal-<b>`: `LoyalTo_<b> → Product AND ∃fromBrand.{Brand_<b>}`,
///   σ = 0.85, one per brand.
///
/// Exactly one rule per context concept: the contexts here are
/// *uncertain* (classifier leanings, unlike the fixed scenario's
/// certain session context), and the strict factorized engine rejects
/// an uncertain context variable shared by two rules as correlated —
/// this shape keeps the generated workload acceptable to all four
/// engines.
pub fn flip_rules(db: &CommerceDb) -> RuleRepository {
    let mut kb = db.kb.clone();
    let mut rules = RuleRepository::new();
    let mut add = |rules: &mut RuleRepository, name: String, ctx: &str, pref: &str, sigma: f64| {
        rules
            .add(PreferenceRule::new(
                name,
                kb.parse(ctx).expect("valid concept"),
                kb.parse(pref).expect("valid concept"),
                Score::new(sigma).expect("valid score"),
            ))
            .expect("unique name");
    };
    add(
        &mut rules,
        "F-gift".into(),
        "GiftShopping",
        "Product AND Premium",
        0.9,
    );
    add(
        &mut rules,
        "F-bargain".into(),
        "BargainHunting",
        "Product AND Discounted",
        0.95,
    );
    for b in 0..db.config.brands {
        add(
            &mut rules,
            format!("F-loyal-{b}"),
            &format!("LoyalTo_{b}"),
            &format!("Product AND EXISTS fromBrand.{{Brand_{b}}}"),
            0.85,
        );
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_core::{FactorizedEngine, LineageEngine, NaiveEnumEngine, ScoringEngine, ScoringEnv};

    #[test]
    fn generation_is_deterministic() {
        let a = generate(ShopConfig::tiny());
        let b = generate(ShopConfig::tiny());
        assert_eq!(a.num_tuples(), b.num_tuples());
        let rules_a = flip_rules(&a);
        let rules_b = flip_rules(&b);
        let env_a = ScoringEnv {
            kb: &a.kb,
            rules: &rules_a,
            user: a.shoppers[0],
        };
        let env_b = ScoringEnv {
            kb: &b.kb,
            rules: &rules_b,
            user: b.shoppers[0],
        };
        let sa = FactorizedEngine::new()
            .score_all(&env_a, &a.products)
            .unwrap();
        let sb = FactorizedEngine::new()
            .score_all(&env_b, &b.products)
            .unwrap();
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(ShopConfig::tiny());
        let b = generate(ShopConfig {
            seed: 12,
            ..ShopConfig::tiny()
        });
        assert_ne!(a.num_tuples(), b.num_tuples());
    }

    #[test]
    fn flip_rules_are_engine_compatible_and_discriminate() {
        let db = generate(ShopConfig::tiny());
        let rules = flip_rules(&db);
        let env = ScoringEnv {
            kb: &db.kb,
            rules: &rules,
            user: db.shoppers[0],
        };
        let docs = &db.products[..8.min(db.products.len())];
        let fact = FactorizedEngine::new().score_all(&env, docs).unwrap();
        let naive = NaiveEnumEngine::new().score_all(&env, docs).unwrap();
        let lineage = LineageEngine::new().score_all(&env, docs).unwrap();
        for i in 0..docs.len() {
            assert!((fact[i].score - naive[i].score).abs() < 1e-9);
            assert!((fact[i].score - lineage[i].score).abs() < 1e-9);
            assert!(fact[i].score > 0.0 && fact[i].score <= 1.0);
        }
        let distinct: std::collections::BTreeSet<u64> =
            fact.iter().map(|s| s.score.to_bits()).collect();
        assert!(distinct.len() > 1, "tags must actually discriminate");
    }
}
