use std::fmt;

use capra_dl::DlError;
use capra_events::EventError;
use capra_reldb::DbError;

use crate::persist::PersistError;

/// Errors raised by the ranking layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A sigma score was outside `[0, 1]`.
    BadScore(f64),
    /// Two rules share a name in one repository.
    DuplicateRule(String),
    /// A rule name was not found.
    UnknownRule(String),
    /// The naive engines refuse rule counts whose `4ⁿ` behaviour would not
    /// terminate in reasonable time.
    TooManyRules {
        /// Number of applicable rules.
        n: usize,
        /// The engine's limit.
        max: usize,
    },
    /// The factorized engine detected correlated features (a shared random
    /// variable across rule events) in strict mode.
    CorrelatedFeatures {
        /// Name of the shared variable.
        variable: String,
    },
    /// Syntax error in the rule text format.
    RuleFormat {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// Error from the DL layer.
    Dl(DlError),
    /// Error from the relational engine.
    Db(DbError),
    /// Error from the event layer.
    Event(EventError),
    /// Error from the persistence layer (snapshots and the WAL).
    Persist(PersistError),
    /// The ranked query integration was misused.
    Ranking(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadScore(s) => write!(f, "sigma score {s} is outside [0, 1]"),
            CoreError::DuplicateRule(name) => write!(f, "rule `{name}` already exists"),
            CoreError::UnknownRule(name) => write!(f, "no rule named `{name}`"),
            CoreError::TooManyRules { n, max } => write!(
                f,
                "naive engine limited to {max} applicable rules, got {n} \
                 (cost grows as 4^n; use the factorized or lineage engine)"
            ),
            CoreError::CorrelatedFeatures { variable } => write!(
                f,
                "factorized engine requires independent features, but variable \
                 `{variable}` is shared across rule events (use the lineage engine)"
            ),
            CoreError::RuleFormat { line, message } => {
                write!(f, "rule file line {line}: {message}")
            }
            CoreError::Dl(e) => write!(f, "{e}"),
            CoreError::Db(e) => write!(f, "{e}"),
            CoreError::Event(e) => write!(f, "{e}"),
            CoreError::Persist(e) => write!(f, "{e}"),
            CoreError::Ranking(msg) => write!(f, "ranked query: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DlError> for CoreError {
    fn from(e: DlError) -> Self {
        CoreError::Dl(e)
    }
}

impl From<DbError> for CoreError {
    fn from(e: DbError) -> Self {
        CoreError::Db(e)
    }
}

impl From<EventError> for CoreError {
    fn from(e: EventError) -> Self {
        CoreError::Event(e)
    }
}

impl From<PersistError> for CoreError {
    fn from(e: PersistError) -> Self {
        CoreError::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_actionable() {
        let e = CoreError::TooManyRules { n: 12, max: 10 };
        assert!(e.to_string().contains("4^n"));
        let e = CoreError::CorrelatedFeatures {
            variable: "room".into(),
        };
        assert!(e.to_string().contains("room"));
        assert!(e.to_string().contains("lineage"));
    }

    #[test]
    fn conversions() {
        let e: CoreError = DlError::CyclicDefinition("X".into()).into();
        assert!(matches!(e, CoreError::Dl(_)));
        let e: CoreError = DbError::UnknownTable("t".into()).into();
        assert!(matches!(e, CoreError::Db(_)));
        let e: CoreError = EventError::DuplicateVariable("v".into()).into();
        assert!(matches!(e, CoreError::Event(_)));
    }
}
