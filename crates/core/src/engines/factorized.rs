use std::collections::HashMap;
use std::sync::Arc;

use capra_dl::IndividualId;
use capra_events::{BatchEvaluator, EventExpr, VarId};

use crate::bind::RuleBinding;
use crate::engines::{DocScore, EvalScratch, ScoringEngine};
use crate::{CoreError, Result, ScoringEnv};

/// What to do when rule events share random variables (i.e. features are
/// *not* independent and the factorized closed form is only approximate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorrelationPolicy {
    /// Refuse to score and point the caller at [`crate::LineageEngine`].
    #[default]
    Error,
    /// Compute anyway, treating the marginals as independent (the paper's
    /// own simplifying assumption in its worked example: "we assume that
    /// features of documents are independent").
    AssumeIndependent,
}

/// The linear-time engine: exploits the independence factorisation of the
/// Section 3.3 formula.
///
/// When the context events `G_r` and the per-document feature events `F_rd`
/// are mutually independent, the expectation of the product factorises into
/// per-rule closed forms:
///
/// ```text
/// score(d) = Π_r [ (1 − P(G_r)) + P(G_r) · (P(F_rd)·σ_r + (1 − P(F_rd))·(1 − σ_r)) ]
/// ```
///
/// This is exactly the improvement the paper's Discussion section asks for
/// ("prune the amount of applicable rules and candidate documents in early
/// stages"): cost is `O(#rules · #docs)` instead of `O(4^#rules · #docs)`,
/// and rules with `P(G_r) = 0` drop out entirely.
///
/// Correctness requires independence; the engine *verifies* it by checking
/// that no random variable is shared between any two of the involved events
/// (see [`CorrelationPolicy`]).
#[derive(Debug, Clone, Default)]
pub struct FactorizedEngine {
    /// Behaviour when shared variables are detected.
    pub on_correlation: CorrelationPolicy,
}

impl FactorizedEngine {
    /// Creates the engine with the strict (erroring) correlation policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the engine that assumes independence without checking.
    pub fn assuming_independence() -> Self {
        Self {
            on_correlation: CorrelationPolicy::AssumeIndependent,
        }
    }

    fn correlated(kb: &crate::Kb, var: VarId) -> CoreError {
        CoreError::CorrelatedFeatures {
            variable: kb.universe.name(var).unwrap_or("<unknown>").to_string(),
        }
    }

    /// Maps every variable backing a *context* event to its rule slot,
    /// erroring if two rules' contexts share a variable. Context events do
    /// not depend on the document, so this runs **once per `score_all`**;
    /// the per-document check below only walks the preference supports.
    fn context_owners(
        bindings: &[Arc<RuleBinding>],
        kb: &crate::Kb,
    ) -> Result<HashMap<VarId, usize>> {
        let mut owner: HashMap<VarId, usize> = HashMap::new();
        for (slot, binding) in bindings.iter().enumerate() {
            for &var in binding.context_event.support_slice() {
                match owner.get(&var) {
                    Some(&prev) if prev != slot => return Err(Self::correlated(kb, var)),
                    _ => {
                        owner.insert(var, slot);
                    }
                }
            }
        }
        Ok(owner)
    }

    /// Verifies that no variable backs two different rule events for `doc`.
    /// Context–context conflicts were ruled out by [`Self::context_owners`];
    /// here a preference variable conflicts if it appears in *any* context
    /// event (context and preference of one rule are distinct events whose
    /// independence also matters) or in another rule's preference event.
    /// Supports come from the per-node caches — no tree walks.
    fn check_doc_independence(
        bindings: &[Arc<RuleBinding>],
        doc: IndividualId,
        ctx_owner: &HashMap<VarId, usize>,
        scratch: &mut HashMap<VarId, usize>,
        kb: &crate::Kb,
    ) -> Result<()> {
        scratch.clear();
        for (slot, binding) in bindings.iter().enumerate() {
            let Some(event) = binding.preference_events.get(&doc) else {
                continue; // absent ⇒ event False ⇒ empty support
            };
            for &var in event.support_slice() {
                if ctx_owner.contains_key(&var) {
                    return Err(Self::correlated(kb, var));
                }
                match scratch.get(&var) {
                    Some(&prev) if prev != slot => return Err(Self::correlated(kb, var)),
                    _ => {
                        scratch.insert(var, slot);
                    }
                }
            }
        }
        Ok(())
    }

    /// Doc-invariant screen over the preference supports: one pass over
    /// each rule's bound view instead of per-document lookups. `false`
    /// proves no preference variable (for *any* document) collides with a
    /// context variable or another rule's preference variable — then no
    /// per-document conflict is possible and the exact check can be
    /// skipped. `true` may be a false alarm (the collision can involve
    /// unrequested documents, or two *different* documents, which is
    /// legal) and only means [`Self::check_doc_independence`] must run.
    fn preference_screen_suspicious(
        bindings: &[Arc<RuleBinding>],
        ctx_owner: &HashMap<VarId, usize>,
    ) -> bool {
        let mut pref_owner: HashMap<VarId, usize> = HashMap::new();
        for (slot, binding) in bindings.iter().enumerate() {
            for event in binding.preference_events.values() {
                for &var in event.support_slice() {
                    if ctx_owner.contains_key(&var) {
                        return true;
                    }
                    match pref_owner.get(&var) {
                        Some(&prev) if prev != slot => return true,
                        _ => {
                            pref_owner.insert(var, slot);
                        }
                    }
                }
            }
        }
        false
    }

    /// The columnar evaluation order: one sweep per applicable rule over
    /// the whole document batch, with each distinct preference event
    /// evaluated once per sweep (see [`BatchEvaluator`]). Per lane, the
    /// multiplication sequence is identical to the scalar loop's (rule
    /// order), and every memoised probability is a pure function of the
    /// hash-consed expression — so the scores are bit-identical to the
    /// scalar path. Independence is screened doc-invariantly first when
    /// the bound views are batch-sized; a suspicious screen — or views
    /// that dwarf the batch — runs the exact checks, per document in
    /// document order, preserving the scalar path's first error.
    fn score_all_columnar(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>> {
        let applicable: Vec<&RuleBinding> = bindings
            .iter()
            .map(Arc::as_ref)
            .filter(|b| !b.is_inapplicable())
            .collect();
        let (result, stats) = scratch.with_evaluator(&env.kb.universe, |ev| {
            let mut batch = BatchEvaluator::new(ev);
            let result = (|| -> Result<Vec<DocScore>> {
                let context_probs: Vec<f64> = applicable
                    .iter()
                    .map(|b| batch.evaluator().prob(&b.context_event))
                    .collect();
                if let CorrelationPolicy::Error = self.on_correlation {
                    let ctx_owner = Self::context_owners(bindings, env.kb)?;
                    // The doc-invariant screen costs one pass over every
                    // bound view; worth it only when the views are batch-
                    // sized. When they dwarf the batch (e.g. the top-k scan
                    // feeding small chunks of a large candidate set), the
                    // scalar path's per-document checks are cheaper — and
                    // either route raises the same first error in the same
                    // document order.
                    let view_total: usize =
                        bindings.iter().map(|b| b.preference_events.len()).sum();
                    if view_total > docs.len().saturating_mul(4)
                        || Self::preference_screen_suspicious(bindings, &ctx_owner)
                    {
                        let mut owner_scratch: HashMap<VarId, usize> = HashMap::new();
                        for &doc in docs {
                            Self::check_doc_independence(
                                bindings,
                                doc,
                                &ctx_owner,
                                &mut owner_scratch,
                                env.kb,
                            )?;
                        }
                    }
                }
                let mut scores = vec![1.0f64; docs.len()];
                // Lane index built once per batch: each rule sweep walks its
                // bound view in order and drops every in-batch event into its
                // lane — absent documents keep the `False` their lane was
                // seeded with — instead of one B-tree descent per
                // (rule, document).
                let lane: HashMap<IndividualId, usize> =
                    docs.iter().enumerate().map(|(i, &d)| (d, i)).collect();
                let mut column: Vec<EventExpr> = Vec::with_capacity(docs.len());
                for (b, &pg) in applicable.iter().zip(&context_probs) {
                    column.clear();
                    column.resize(docs.len(), EventExpr::False);
                    if b.preference_events.len() <= docs.len().saturating_mul(4) {
                        for (doc, event) in b.preference_events.iter() {
                            if let Some(&slot) = lane.get(doc) {
                                column[slot] = event.clone();
                            }
                        }
                    } else {
                        // The bound view dwarfs the batch: per-document
                        // lookups are cheaper than sweeping the whole map.
                        for (slot, &doc) in docs.iter().enumerate() {
                            column[slot] = b.preference_event(doc);
                        }
                    }
                    let pfs = batch.probs(&column);
                    for (score, pf) in scores.iter_mut().zip(&pfs) {
                        let matched = pf * b.sigma + (1.0 - pf) * (1.0 - b.sigma);
                        *score *= (1.0 - pg) + pg * matched;
                    }
                }
                Ok(docs
                    .iter()
                    .zip(scores)
                    .map(|(&doc, score)| DocScore {
                        doc,
                        score: score.clamp(0.0, 1.0),
                    })
                    .collect())
            })();
            (result, batch.stats())
        });
        scratch.record_batch(stats);
        result
    }
}

impl ScoringEngine for FactorizedEngine {
    fn name(&self) -> &'static str {
        "factorized"
    }

    fn config_tag(&self) -> u64 {
        // The policy decides between an error and an approximate score on
        // correlated inputs, so the two configurations must not share
        // cached results.
        self.on_correlation as u64
    }

    fn validate_workload(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
    ) -> Result<()> {
        // The same independence checks `score_all_bound` performs, over the
        // *whole* candidate set — so the top-k path rejects a correlated
        // workload even when pruning would never evaluate the offending
        // document.
        if let CorrelationPolicy::Error = self.on_correlation {
            let ctx_owner = Self::context_owners(bindings, env.kb)?;
            if Self::preference_screen_suspicious(bindings, &ctx_owner) {
                let mut owner_scratch: HashMap<VarId, usize> = HashMap::new();
                for &doc in docs {
                    Self::check_doc_independence(
                        bindings,
                        doc,
                        &ctx_owner,
                        &mut owner_scratch,
                        env.kb,
                    )?;
                }
            }
        }
        Ok(())
    }

    fn score_all_bound(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        scratch.ensure_kb(env.kb);
        // Columnar sweeps only pay off when lanes can share evaluations;
        // single-document batches take the scalar loop unchanged.
        if scratch.scoring().columnar && docs.len() > 1 {
            return self.score_all_columnar(env, bindings, docs, scratch);
        }
        let applicable: Vec<&RuleBinding> = bindings
            .iter()
            .map(Arc::as_ref)
            .filter(|b| !b.is_inapplicable())
            .collect();
        scratch.with_evaluator(&env.kb.universe, |ev| {
            // Context probabilities do not depend on the document: hoist them.
            let context_probs: Vec<f64> = applicable
                .iter()
                .map(|b| ev.prob(&b.context_event))
                .collect();
            // Doc-invariant half of the independence check, hoisted likewise.
            let ctx_owner = match self.on_correlation {
                CorrelationPolicy::Error => Some(Self::context_owners(bindings, env.kb)?),
                CorrelationPolicy::AssumeIndependent => None,
            };
            let mut owner_scratch: HashMap<VarId, usize> = HashMap::new();
            let mut out = Vec::with_capacity(docs.len());
            for &doc in docs {
                if let Some(ctx_owner) = &ctx_owner {
                    Self::check_doc_independence(
                        bindings,
                        doc,
                        ctx_owner,
                        &mut owner_scratch,
                        env.kb,
                    )?;
                }
                let mut score = 1.0;
                for (b, &pg) in applicable.iter().zip(&context_probs) {
                    let pf = ev.prob(&b.preference_event(doc));
                    let matched = pf * b.sigma + (1.0 - pf) * (1.0 - b.sigma);
                    score *= (1.0 - pg) + pg * matched;
                }
                out.push(DocScore {
                    doc,
                    score: score.clamp(0.0, 1.0),
                });
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kb, PreferenceRule, RuleRepository, Score};

    /// The paper's Section 4.2 worked example, rule R1 only, on Channel 5
    /// news: term = 0.95·0.8 + 0.05·0.2 = 0.77.
    #[test]
    fn paper_single_rule_term() {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Weekend");
        let ch5 = kb.individual("Channel5");
        kb.assert_concept(ch5, "TvProgram");
        let hi = kb.individual("HUMAN-INTEREST");
        kb.assert_role_prob(ch5, "hasGenre", hi, 0.95).unwrap();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R1",
                kb.parse("Weekend").unwrap(),
                kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
                    .unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let s = FactorizedEngine::new().score(&env, ch5).unwrap();
        assert!((s.score - 0.77).abs() < 1e-12, "{}", s.score);
    }

    #[test]
    fn uncertain_context_blends_toward_one() {
        // P(G) = 0.5, P(F) = 1: score = 0.5 + 0.5·σ.
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept_prob(user, "Breakfast", 0.5).unwrap();
        let doc = kb.individual("doc");
        kb.assert_concept(doc, "News");
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R",
                kb.parse("Breakfast").unwrap(),
                kb.parse("News").unwrap(),
                Score::new(0.9).unwrap(),
            ))
            .unwrap();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let s = FactorizedEngine::new().score(&env, doc).unwrap();
        assert!((s.score - 0.95).abs() < 1e-12);
    }

    #[test]
    fn detects_correlation_and_policy_overrides() {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Morning");
        let doc = kb.individual("doc");
        let a = kb.individual("A");
        let b = kb.individual("B");
        let kind = kb.universe.add_choice("kind", &[0.5, 0.5]).unwrap();
        let e0 = kb.universe.atom(kind, 0).unwrap();
        let e1 = kb.universe.atom(kind, 1).unwrap();
        kb.assert_role_event(doc, "hasGenre", a, e0);
        kb.assert_role_event(doc, "hasGenre", b, e1);
        let mut rules = RuleRepository::new();
        let ctx = kb.parse("Morning").unwrap();
        rules
            .add(PreferenceRule::new(
                "A",
                ctx.clone(),
                kb.parse("EXISTS hasGenre.{A}").unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "B",
                ctx,
                kb.parse("EXISTS hasGenre.{B}").unwrap(),
                Score::new(0.6).unwrap(),
            ))
            .unwrap();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let err = FactorizedEngine::new().score(&env, doc);
        assert!(
            matches!(err, Err(CoreError::CorrelatedFeatures { .. })),
            "{err:?}"
        );
        // Permissive policy computes the independence approximation.
        let s = FactorizedEngine::assuming_independence()
            .score(&env, doc)
            .unwrap();
        let approx = (0.5 * 0.8 + 0.5 * 0.2) * (0.5 * 0.6 + 0.5 * 0.4);
        assert!((s.score - approx).abs() < 1e-12);
    }

    #[test]
    fn inapplicable_rules_are_free() {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        let doc = kb.individual("doc");
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "Never",
                kb.parse("Holiday").unwrap(),
                kb.parse("TvProgram").unwrap(),
                Score::new(0.1).unwrap(),
            ))
            .unwrap();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let s = FactorizedEngine::new().score(&env, doc).unwrap();
        assert_eq!(s.score, 1.0);
    }
}
