//! Scoring engines: four evaluators of the paper's Section 3.3 formula.
//!
//! All engines compute (or approximate under documented assumptions) the
//! probability that each document is the *ideal document* for the situated
//! user:
//!
//! ```text
//! P(D=d | U=usit) = E[ Π_r  term_r ]
//! term_r = 1        if the rule's context does not apply
//!        = σ_r      if the context applies and d matches the preference
//!        = 1 − σ_r  if the context applies and d does not match
//! ```
//!
//! | engine | exactness | cost model (n rules, d docs) | corresponds to |
//! |--------|-----------|------------------------------|----------------|
//! | [`NaiveViewEngine`] | exact under feature independence | `O(4ⁿ · d)` relational queries | the paper's Section 5 PostgreSQL implementation |
//! | [`NaiveEnumEngine`] | exact under feature independence | `O(4ⁿ · d)` in-memory | the same maths without the view machinery (ablation) |
//! | [`FactorizedEngine`] | exact under feature independence | `O(n · d)` probability lookups; independence check walks cached per-node supports, context half hoisted out of the doc loop | the early-pruning improvement the Discussion calls for |
//! | [`LineageEngine`] | **always exact** (correlations included) | Shannon expansion over shared variables, sub-problems deduplicated by hash-consed expression identity | Section 3.3 with the event-expression model of ref \[17\] |
//!
//! All engines share the binding step ([`crate::bind_rules`]), which runs
//! **one** reasoner across the whole rule set so structurally shared
//! context/preference concepts are derived once, and all probability work
//! sits on hash-consed event expressions: memo tables key by interned node
//! identity (O(1) hash + pointer compare), pivot choices are cached per
//! node, and `restrict` skips subtrees whose cached support excludes the
//! pivot variable. See `capra_events` for the interner.

mod factorized;
mod lineage;
mod naive_enum;
mod naive_view;

pub use factorized::{CorrelationPolicy, FactorizedEngine};
pub use lineage::LineageEngine;
pub use naive_enum::NaiveEnumEngine;
pub use naive_view::NaiveViewEngine;

use capra_dl::IndividualId;

use crate::{Result, ScoringEnv};

/// A scored document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocScore {
    /// The document.
    pub doc: IndividualId,
    /// `P(D=doc | U=usit)` — the context-aware relevance.
    pub score: f64,
}

/// Common interface of the four engines.
pub trait ScoringEngine {
    /// Engine name (used in benchmark output and explanations).
    fn name(&self) -> &'static str;

    /// Scores every document in `docs`, in order.
    fn score_all(&self, env: &ScoringEnv<'_>, docs: &[IndividualId]) -> Result<Vec<DocScore>>;

    /// Scores a single document.
    fn score(&self, env: &ScoringEnv<'_>, doc: IndividualId) -> Result<DocScore> {
        Ok(self
            .score_all(env, &[doc])?
            .pop()
            .expect("score_all returns one score per doc"))
    }
}

/// Sorts scores descending (ties broken by document id for determinism) —
/// the `ORDER BY preferencescore DESC` of the paper's example query.
pub fn rank(mut scores: Vec<DocScore>) -> Vec<DocScore> {
    scores.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_sorts_descending_with_stable_ties() {
        let mut kb = crate::Kb::new();
        let a = kb.individual("a");
        let b = kb.individual("b");
        let c = kb.individual("c");
        let ranked = rank(vec![
            DocScore { doc: a, score: 0.1 },
            DocScore { doc: b, score: 0.9 },
            DocScore { doc: c, score: 0.1 },
        ]);
        assert_eq!(ranked[0].doc, b);
        assert_eq!(ranked[1].doc, a, "tie broken by id");
        assert_eq!(ranked[2].doc, c);
    }
}
