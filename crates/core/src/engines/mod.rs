//! Scoring engines: four evaluators of the paper's Section 3.3 formula.
//!
//! All engines compute (or approximate under documented assumptions) the
//! probability that each document is the *ideal document* for the situated
//! user:
//!
//! ```text
//! P(D=d | U=usit) = E[ Π_r  term_r ]
//! term_r = 1        if the rule's context does not apply
//!        = σ_r      if the context applies and d matches the preference
//!        = 1 − σ_r  if the context applies and d does not match
//! ```
//!
//! | engine | exactness | cost model (n rules, d docs) | corresponds to |
//! |--------|-----------|------------------------------|----------------|
//! | [`NaiveViewEngine`] | exact under feature independence | `O(4ⁿ · d)` relational queries | the paper's Section 5 PostgreSQL implementation |
//! | [`NaiveEnumEngine`] | exact under feature independence | `O(4ⁿ · d)` in-memory | the same maths without the view machinery (ablation) |
//! | [`FactorizedEngine`] | exact under feature independence | `O(n · d)` probability lookups; independence check walks cached per-node supports, context half hoisted out of the doc loop | the early-pruning improvement the Discussion calls for |
//! | [`LineageEngine`] | **always exact** (correlations included) | Shannon expansion over shared variables, sub-problems deduplicated by hash-consed expression identity | Section 3.3 with the event-expression model of ref \[17\] |
//! | any engine via [`crate::ScoringSession`] | unchanged (bit-identical to the engine) | warm calls skip binding entirely; repeat calls are cache lookups | the serving path: repeated queries under a changing context |
//!
//! All engines share the binding step ([`crate::bind_rules`]), which runs
//! **one** reasoner across the whole rule set so structurally shared
//! context/preference concepts are derived once, and all probability work
//! sits on hash-consed event expressions: memo tables key by interned node
//! identity (O(1) hash + pointer compare), pivot choices are cached per
//! node, and `restrict` skips subtrees whose cached support excludes the
//! pivot variable. See `capra_events` for the interner.
//!
//! ## Cold calls vs. sessions
//!
//! Every engine exposes two entry points:
//!
//! * [`ScoringEngine::score_all`] — the **cold** path: binds the rules
//!   against the KB and evaluates, paying the full reasoner cost per call;
//! * [`ScoringEngine::score_all_bound`] — the **prepared** path: takes
//!   already-bound rules plus an [`EvalScratch`] of reusable memo state.
//!   [`crate::ScoringSession`] drives it with cached bindings (invalidated
//!   by KB epoch, see [`crate::Kb::binding_epoch`]) so warm repeat calls
//!   skip the reasoner entirely and their probability sub-problems answer
//!   from the persisted memos. [`crate::rank_top_k`] uses the same entry
//!   point to stop scoring documents that cannot reach the top-k.
//!
//! `score_all` simply delegates through a throwaway binding + scratch, so
//! both paths compute bit-identical scores.

mod factorized;
mod lineage;
mod naive_enum;
mod naive_view;

pub use factorized::{CorrelationPolicy, FactorizedEngine};
pub use lineage::LineageEngine;
pub use naive_enum::NaiveEnumEngine;
pub use naive_view::NaiveViewEngine;

use std::sync::Arc;

use capra_dl::IndividualId;
use capra_events::{
    BatchStats, CacheFootprint, EvalCache, Evaluator, EvictionPolicy, ExpectCache, Expectation,
    FrozenEvalCache, FrozenExpectCache, Universe,
};

use crate::bind::bind_rules_shared;
use crate::{Kb, Result, RuleBinding, ScoringEnv};

/// A scored document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocScore {
    /// The document.
    pub doc: IndividualId,
    /// `P(D=doc | U=usit)` — the context-aware relevance.
    pub score: f64,
}

/// Evaluation-strategy configuration for the prepared scoring path,
/// carried on every [`EvalScratch`] (and stamped onto pool checkouts by
/// [`crate::parallel::ScratchPool`]).
///
/// The columnar toggle selects between two bit-identical evaluation
/// orders: the scalar per-document loop and the batch path that lays
/// per-document expressions out as columns, evaluating each distinct
/// expression once per sweep (see [`capra_events::BatchEvaluator`]).
/// Because both orders produce identical scores, the toggle *could* share
/// a cache tag — but it is deliberately mixed into the score-cache key
/// ([`ScoringConfig::tag`]) so cached results never cross paths: a cached
/// score can always be attributed to the path that computed it, which is
/// what lets the property suites compare the two paths through live
/// sessions without one serving the other from cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringConfig {
    /// Score document batches as column sweeps (default). Engines fall
    /// back to the scalar loop for single-document batches, and the naive
    /// engines always score scalar (they are the oracle).
    pub columnar: bool,
}

impl Default for ScoringConfig {
    fn default() -> Self {
        Self { columnar: true }
    }
}

impl ScoringConfig {
    /// The scalar per-document configuration (columnar off) — the
    /// reference path the property suites compare against.
    pub fn scalar() -> Self {
        Self { columnar: false }
    }

    /// Cache-key bits mixed into [`ScoringEngine::config_tag`] by the
    /// session layer, so results cached under one evaluation strategy are
    /// never served to the other. Kept in the high half so engine-owned
    /// tags (low bits) cannot collide.
    pub fn tag(&self) -> u64 {
        if self.columnar {
            1 << 32
        } else {
            0
        }
    }
}

/// Reusable evaluation state threaded through the prepared scoring path
/// ([`ScoringEngine::score_all_bound`]): the probability and expectation
/// memos engines would otherwise rebuild per call.
///
/// The scratch is tied to one KB identity; [`EvalScratch::ensure_kb`]
/// (called by every engine on entry) resets the memos when a different KB
/// shows up, so stale entries can never leak across knowledge bases. Within
/// one KB the memos stay valid indefinitely — event probabilities are
/// immutable and memo keys pin their hash-consed expressions (see
/// [`capra_events::EvalCache`]).
///
/// Validity is not liveness, though: in a serving loop that re-asserts
/// facts every call, entries keyed by superseded expressions are never
/// looked up again yet would accumulate for the life of the KB. Long-lived
/// holders therefore call [`EvalScratch::advance_epoch`] when the KB's
/// binding epoch moves, which folds the overlays into an epoch-tagged
/// snapshot chain and ages out tiers per the scratch's [`EvictionPolicy`]
/// — see [`capra_events::tier`] for the mechanics and why eviction cannot
/// change any score.
#[derive(Default)]
pub struct EvalScratch {
    /// `Kb::id` the memos were built over; 0 = not yet bound to a KB.
    kb_id: u64,
    /// Binding epoch at the last overlay rotation (see
    /// [`EvalScratch::advance_epoch`]).
    epoch: u64,
    /// Eviction policy applied when rotating.
    policy: EvictionPolicy,
    /// Evaluation strategy engines consult (columnar vs scalar).
    scoring: ScoringConfig,
    /// Batch-path counters accumulated by engines run on this scratch.
    batch: BatchStats,
    prob: EvalCache,
    expect: ExpectCache,
}

impl EvalScratch {
    /// An empty scratch (equivalent to a cold call) with the default
    /// [`EvictionPolicy`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scratch whose [`EvalScratch::advance_epoch`] rotations
    /// evict per `policy` ([`EvictionPolicy::Never`] reproduces the
    /// grow-only pre-eviction behaviour exactly).
    pub fn with_policy(policy: EvictionPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// An empty scratch with the given eviction policy *and* evaluation
    /// strategy — the constructor session holders use to thread a
    /// [`ScoringConfig`] down to the engines.
    pub fn with_config(policy: EvictionPolicy, scoring: ScoringConfig) -> Self {
        Self {
            policy,
            scoring,
            ..Self::default()
        }
    }

    /// The eviction policy applied by this scratch's rotations.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The evaluation strategy engines consult when driven through this
    /// scratch.
    pub fn scoring(&self) -> ScoringConfig {
        self.scoring
    }

    /// Overrides the evaluation strategy (used by pools stamping their
    /// configuration onto checkouts).
    pub fn set_scoring(&mut self, scoring: ScoringConfig) {
        self.scoring = scoring;
    }

    /// Batch-path counters accumulated by engines run on this scratch.
    pub fn batch_stats(&self) -> BatchStats {
        self.batch
    }

    /// Folds one engine run's batch counters into the scratch.
    pub(crate) fn record_batch(&mut self, stats: BatchStats) {
        self.batch += stats;
    }

    /// Drains the accumulated batch counters (the pool moves them into its
    /// own accumulator when a worker scratch is returned).
    pub(crate) fn take_batch_stats(&mut self) -> BatchStats {
        std::mem::take(&mut self.batch)
    }

    /// Notes that the KB's binding epoch is now `epoch`. When it moved
    /// since the last call, the private memo overlays are folded into the
    /// scratch's epoch-tagged snapshot chains, dropping tiers that went
    /// unrefreshed beyond the scratch's [`EvictionPolicy`] — the
    /// mutation-driven counterpart of the pool republish, keeping a
    /// sequential session's footprint bounded in mutate-heavy serving
    /// loops. A no-op on stable KBs (and under [`EvictionPolicy::Never`]),
    /// so warm paths keep their exact pre-eviction behaviour.
    pub fn advance_epoch(&mut self, epoch: u64) {
        if self.epoch == epoch {
            return;
        }
        self.epoch = epoch;
        if matches!(self.policy, EvictionPolicy::Never) {
            return;
        }
        self.prob.rotate(epoch, self.policy);
        self.expect.rotate(epoch, self.policy);
    }

    /// Snapshot-tier and memo-entry footprint of this scratch (both memo
    /// layers, overlays included).
    pub fn footprint(&self) -> CacheFootprint {
        self.prob.footprint() + self.expect.footprint()
    }

    /// Footprint of the private overlays alone — for the pool, whose
    /// parked worker scratches all share the pool's own snapshot chains
    /// (counting each scratch's full footprint would recount those chains
    /// once per scratch).
    pub(crate) fn overlay_footprint(&self) -> CacheFootprint {
        self.prob.overlay_footprint() + self.expect.overlay_footprint()
    }

    /// A scratch whose memos start as empty overlays over shared frozen
    /// snapshots, pre-bound to the KB the snapshots were computed over —
    /// the worker-side view of [`crate::parallel::ScratchPool`]. Lookups
    /// consult the snapshots lock-free; new entries land in the private
    /// overlay for a later merge-and-republish.
    pub(crate) fn with_snapshots(
        kb_id: u64,
        prob: Arc<FrozenEvalCache>,
        expect: Arc<FrozenExpectCache>,
    ) -> Self {
        Self {
            kb_id,
            prob: EvalCache::with_snapshot(prob),
            expect: ExpectCache::with_snapshot(expect),
            // Pool workers never rotate — the pool's republish owns the
            // epoch tagging and eviction for their overlays.
            ..Self::default()
        }
    }

    /// Decomposes the scratch into its KB identity and the two cache
    /// overlays, for merging into a shared snapshot.
    pub(crate) fn into_parts(self) -> (u64, EvalCache, ExpectCache) {
        (self.kb_id, self.prob, self.expect)
    }

    /// Replaces the two memo overlays wholesale — the import path of the
    /// persistence layer: a pool checkout is filled with entries decoded
    /// from a saved snapshot (already re-interned against this process's
    /// expression interner) and given back, so the next republish publishes
    /// them as the frozen tier. The KB binding, policy, scoring
    /// configuration and batch counters are untouched; any snapshot the
    /// checkout's overlays were layered over is dropped, which is safe
    /// because a freshly recovered pool's chains are empty.
    pub(crate) fn import_overlays(&mut self, prob: EvalCache, expect: ExpectCache) {
        self.prob = prob;
        self.expect = expect;
    }

    /// `Kb::id` the memos were built over (0 = not yet bound to a KB).
    pub(crate) fn kb_id(&self) -> u64 {
        self.kb_id
    }

    /// Binds the scratch to `kb`, discarding all memos (the eviction
    /// policy, scoring configuration and batch counters are kept) if it
    /// was previously used with a different KB.
    pub fn ensure_kb(&mut self, kb: &Kb) {
        if self.kb_id != kb.id() {
            *self = Self {
                kb_id: kb.id(),
                policy: self.policy,
                scoring: self.scoring,
                batch: self.batch,
                ..Self::default()
            };
        }
    }

    /// Loans the probability memo to an [`Evaluator`] for the duration of
    /// `f`, restoring it afterwards — including on the error path, so a
    /// failed call never drops a session's accumulated memo.
    pub(crate) fn with_evaluator<'u, T>(
        &mut self,
        universe: &'u Universe,
        f: impl FnOnce(&mut Evaluator<'u>) -> T,
    ) -> T {
        let mut ev = Evaluator::with_cache(universe, std::mem::take(&mut self.prob));
        let out = f(&mut ev);
        self.prob = ev.into_cache();
        out
    }

    /// Loans the expectation memo to an [`Expectation`] for the duration of
    /// `f`, restoring it afterwards (same contract as
    /// [`EvalScratch::with_evaluator`]).
    pub(crate) fn with_expectation<'u, T>(
        &mut self,
        universe: &'u Universe,
        f: impl FnOnce(&mut Expectation<'u>) -> T,
    ) -> T {
        let mut exp = Expectation::with_cache(universe, std::mem::take(&mut self.expect));
        let out = f(&mut exp);
        self.expect = exp.into_cache();
        out
    }
}

/// Common interface of the four engines.
pub trait ScoringEngine {
    /// Engine name (used in benchmark output and explanations).
    fn name(&self) -> &'static str;

    /// Distinguishes configurations of one engine type that may *behave*
    /// differently on the same input (e.g. the factorized engine's
    /// correlation policy decides between an error and a score). Used by
    /// [`crate::ScoringSession`] to key cached results; configurations that
    /// only change performance may share a tag.
    fn config_tag(&self) -> u64 {
        0
    }

    /// Checks whether the engine would accept scoring *every* document of
    /// `docs` under `bindings`, without computing any score. The bounded
    /// top-k path calls this before pruning: an engine that rejects inputs
    /// per document (e.g. the strict factorized engine on correlated
    /// features) must reject here too, so `rank_top_k` errors exactly when
    /// `rank(score_all(docs))` would — pruning never masks an error.
    fn validate_workload(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
    ) -> Result<()> {
        let _ = (env, bindings, docs);
        Ok(())
    }

    /// Scores every document in `docs`, in order, against already-bound
    /// rules — the prepared entry point driven by [`crate::ScoringSession`]
    /// and [`crate::rank_top_k`]. `bindings` must be one binding per rule
    /// (in repository order, as produced by [`crate::bind_rules_shared`] or
    /// the session's cache); `scratch` carries memo state that is reused
    /// across calls and reset automatically when the KB changes.
    fn score_all_bound(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>>;

    /// Scores every document in `docs`, in order. Cold path: binds the
    /// rules and delegates to [`ScoringEngine::score_all_bound`] with
    /// throwaway state.
    fn score_all(&self, env: &ScoringEnv<'_>, docs: &[IndividualId]) -> Result<Vec<DocScore>> {
        self.score_all_bound(env, &bind_rules_shared(env), docs, &mut EvalScratch::new())
    }

    /// Scores a single document.
    fn score(&self, env: &ScoringEnv<'_>, doc: IndividualId) -> Result<DocScore> {
        Ok(self
            .score_all(env, &[doc])?
            .pop()
            .expect("score_all returns one score per doc"))
    }
}

/// Boxed engines delegate wholesale, so trait objects slot into every
/// generic entry point (e.g. a [`crate::serve::RankingService`] whose
/// engine is chosen at runtime).
impl<T: ScoringEngine + ?Sized> ScoringEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn config_tag(&self) -> u64 {
        (**self).config_tag()
    }

    fn validate_workload(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
    ) -> Result<()> {
        (**self).validate_workload(env, bindings, docs)
    }

    fn score_all_bound(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>> {
        (**self).score_all_bound(env, bindings, docs, scratch)
    }

    fn score_all(&self, env: &ScoringEnv<'_>, docs: &[IndividualId]) -> Result<Vec<DocScore>> {
        (**self).score_all(env, docs)
    }

    fn score(&self, env: &ScoringEnv<'_>, doc: IndividualId) -> Result<DocScore> {
        (**self).score(env, doc)
    }
}

/// Sorts scores descending (ties broken by document id for determinism) —
/// the `ORDER BY preferencescore DESC` of the paper's example query.
pub fn rank(mut scores: Vec<DocScore>) -> Vec<DocScore> {
    scores.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_sorts_descending_with_stable_ties() {
        let mut kb = crate::Kb::new();
        let a = kb.individual("a");
        let b = kb.individual("b");
        let c = kb.individual("c");
        let ranked = rank(vec![
            DocScore { doc: a, score: 0.1 },
            DocScore { doc: b, score: 0.9 },
            DocScore { doc: c, score: 0.1 },
        ]);
        assert_eq!(ranked[0].doc, b);
        assert_eq!(ranked[1].doc, a, "tie broken by id");
        assert_eq!(ranked[2].doc, c);
    }
}
