use std::collections::HashMap;
use std::sync::Arc;

use capra_dl::IndividualId;
use capra_events::EventExpr;
use capra_reldb::{DataType, Datum, Executor, Plan, Row, Schema};

use crate::bind::RuleBinding;
use crate::compile::{individual_datum, install_kb, Compiler};
use crate::engines::{DocScore, EvalScratch, ScoringEngine};
use crate::{CoreError, Result, ScoringEnv};

/// The faithful re-creation of the paper's **naive implementation**
/// (Section 5): everything runs through the relational engine.
///
/// Per scoring run the engine:
///
/// 1. installs the KB into a fresh catalog in the paper's table layout
///    (concept/role tables with event expressions);
/// 2. compiles each rule's context and preference concepts into **views**
///    (via [`Compiler`], the Borgida–Brachman mapping) and materialises
///    per-rule membership tables — plus their complements, since the "big
///    preference view" needs both polarities of every feature;
/// 3. builds and executes one relational plan **per combination of context
///    features × document features** — `2ⁿ × 2ⁿ` plans, each a join chain
///    over `2n + 1` relations — accumulating `weight(combination) ×
///    P(lineage)` into each document's score.
///
/// This is where the paper measured *"for one till four rules, query times
/// are still acceptable … as we arrive at seven rules, our query did not
/// finish within half an hour"*; the per-rule quadrupling of combinations is
/// reproduced structurally, not simulated.
///
/// Unlike [`crate::NaiveEnumEngine`] (which multiplies independent
/// marginals, as the paper's worked example does), this engine conjoins the
/// actual event expressions per combination and evaluates them exactly, so
/// its scores remain correct under correlated features — at `O(4ⁿ)` cost.
#[derive(Debug, Clone)]
pub struct NaiveViewEngine {
    /// Hard cap on rules (`4ⁿ` plans are built and run).
    pub max_rules: usize,
}

impl Default for NaiveViewEngine {
    fn default() -> Self {
        Self { max_rules: 10 }
    }
}

impl NaiveViewEngine {
    /// Creates the engine with the default rule cap.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ScoringEngine for NaiveViewEngine {
    fn name(&self) -> &'static str {
        "naive-view"
    }

    fn config_tag(&self) -> u64 {
        // `max_rules` decides between an error and a score, so different
        // caps must not share cached results.
        self.max_rules as u64
    }

    fn score_all_bound(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>> {
        let n = bindings.len();
        if n > self.max_rules {
            return Err(CoreError::TooManyRules {
                n,
                max: self.max_rules,
            });
        }
        scratch.ensure_kb(env.kb);
        let catalog = install_kb(env.kb)?;
        let compiler = Compiler::new(env.kb, &catalog);
        let id_schema = Schema::of(&[("id", DataType::Id)]);
        let one_schema = Schema::of(&[("applies", DataType::Int)]);

        // Candidate documents table.
        let candidates = catalog.create_table("naive_candidates", id_schema.clone())?;
        candidates.insert(
            docs.iter()
                .map(|&d| Row::certain(vec![individual_datum(d)]))
                .collect(),
        )?;

        // Per rule: preference views (both polarities, over the candidate
        // set) and context relations (both polarities, single row). The
        // membership events come from the rule *bindings*; the compiled view
        // plan is registered under the paper's repository-table convention
        // whenever the binding's source rule is in the environment (callers
        // may pass hand-built bindings with no repository rule — a plan
        // needs the concept, so only the named view is skipped then).
        let mut sigmas = Vec::with_capacity(n);
        for (r, binding) in bindings.iter().enumerate() {
            sigmas.push(binding.sigma);
            if let Some(rule) = env.rules.get(&binding.name) {
                let view_name = format!("naive_pref_view_{r}");
                catalog.create_view(&view_name, compiler.concept_plan(&rule.preference)?)?;
            }
            let pos = catalog.create_table(&format!("naive_pref_pos_{r}"), id_schema.clone())?;
            let neg = catalog.create_table(&format!("naive_pref_neg_{r}"), id_schema.clone())?;
            let mut pos_rows = Vec::new();
            let mut neg_rows = Vec::new();
            for &doc in docs {
                let event = binding.preference_event(doc);
                let complement = EventExpr::not(event.clone());
                if !event.is_false() {
                    pos_rows.push(Row::uncertain(vec![individual_datum(doc)], event));
                }
                if !complement.is_false() {
                    neg_rows.push(Row::uncertain(vec![individual_datum(doc)], complement));
                }
            }
            pos.insert(pos_rows)?;
            neg.insert(neg_rows)?;

            let ctx_event = binding.context_event.clone();
            let ctx_complement = EventExpr::not(ctx_event.clone());
            let cpos = catalog.create_table(&format!("naive_ctx_pos_{r}"), one_schema.clone())?;
            let cneg = catalog.create_table(&format!("naive_ctx_neg_{r}"), one_schema.clone())?;
            if !ctx_event.is_false() {
                cpos.insert(vec![Row::uncertain(vec![Datum::Int(1)], ctx_event)])?;
            }
            if !ctx_complement.is_false() {
                cneg.insert(vec![Row::uncertain(vec![Datum::Int(1)], ctx_complement)])?;
            }
        }

        // The big preference view, combination by combination.
        let executor = Executor::new(&catalog);
        let mut scores: HashMap<IndividualId, f64> = docs.iter().map(|&d| (d, 0.0)).collect();
        // The memo loan returns to the scratch even when a combination's
        // plan fails mid-run.
        scratch.with_evaluator(&env.kb.universe, |evaluator| -> Result<()> {
            for g_mask in 0u64..(1 << n) {
                for f_mask in 0u64..(1 << n) {
                    let mut weight = 1.0;
                    for (r, &s) in sigmas.iter().enumerate() {
                        if g_mask >> r & 1 == 1 {
                            weight *= if f_mask >> r & 1 == 1 { s } else { 1.0 - s };
                        }
                    }
                    let mut plan = Plan::scan("naive_candidates");
                    for r in 0..n {
                        let pref_table = if f_mask >> r & 1 == 1 {
                            format!("naive_pref_pos_{r}")
                        } else {
                            format!("naive_pref_neg_{r}")
                        };
                        plan = Plan::Join {
                            left: Box::new(plan),
                            right: Box::new(Plan::scan(pref_table)),
                            on: vec![(0, 0)],
                            filter: None,
                        };
                    }
                    for r in 0..n {
                        let ctx_table = if g_mask >> r & 1 == 1 {
                            format!("naive_ctx_pos_{r}")
                        } else {
                            format!("naive_ctx_neg_{r}")
                        };
                        plan = Plan::Join {
                            left: Box::new(plan),
                            right: Box::new(Plan::scan(ctx_table)),
                            on: vec![],
                            filter: None,
                        };
                    }
                    let relation = executor.run(&plan)?;
                    for row in relation.rows() {
                        let Some(doc) = crate::compile::datum_individual(env.kb, &row.values[0])
                        else {
                            continue;
                        };
                        let p = evaluator.prob(&row.lineage);
                        if let Some(slot) = scores.get_mut(&doc) {
                            *slot += weight * p;
                        }
                    }
                }
            }
            Ok(())
        })?;
        Ok(docs
            .iter()
            .map(|&doc| DocScore {
                doc,
                score: scores[&doc].clamp(0.0, 1.0),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{FactorizedEngine, LineageEngine, NaiveEnumEngine};
    use crate::{Kb, PreferenceRule, RuleRepository, Score};

    fn paper_env() -> (Kb, RuleRepository, IndividualId, Vec<IndividualId>) {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Weekend");
        kb.assert_concept(user, "Breakfast");
        let oprah = kb.individual("Oprah");
        let bbc = kb.individual("BBC");
        let ch5 = kb.individual("Channel5");
        let mpfc = kb.individual("MPFC");
        let hi = kb.individual("HUMAN-INTEREST");
        let wb = kb.individual("WeatherBulletin");
        for d in [oprah, bbc, ch5, mpfc] {
            kb.assert_concept(d, "TvProgram");
        }
        kb.assert_role_prob(oprah, "hasGenre", hi, 0.85).unwrap();
        kb.assert_role(bbc, "hasSubject", wb);
        kb.assert_role_prob(ch5, "hasGenre", hi, 0.95).unwrap();
        kb.assert_role_prob(ch5, "hasSubject", wb, 0.85).unwrap();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R1",
                kb.parse("Weekend").unwrap(),
                kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
                    .unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "R2",
                kb.parse("Breakfast").unwrap(),
                kb.parse("TvProgram AND EXISTS hasSubject.{WeatherBulletin}")
                    .unwrap(),
                Score::new(0.9).unwrap(),
            ))
            .unwrap();
        (kb, rules, user, vec![oprah, bbc, ch5, mpfc])
    }

    /// The paper's Table 1 scores, via the database machinery:
    /// Channel 5 = 0.6006, Oprah = 0.071, BBC = 0.18, MPFC = 0.02.
    #[test]
    fn reproduces_paper_table() {
        let (kb, rules, user, docs) = paper_env();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let scores = NaiveViewEngine::new().score_all(&env, &docs).unwrap();
        let expected = [0.071, 0.18, 0.6006, 0.02]; // oprah, bbc, ch5, mpfc
        for (s, e) in scores.iter().zip(expected) {
            assert!(
                (s.score - e).abs() < 1e-12,
                "{:?}: {} vs {}",
                s.doc,
                s.score,
                e
            );
        }
    }

    #[test]
    fn all_four_engines_agree() {
        let (kb, rules, user, docs) = paper_env();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let view = NaiveViewEngine::new().score_all(&env, &docs).unwrap();
        let enumr = NaiveEnumEngine::new().score_all(&env, &docs).unwrap();
        let fact = FactorizedEngine::new().score_all(&env, &docs).unwrap();
        let lin = LineageEngine::new().score_all(&env, &docs).unwrap();
        for i in 0..docs.len() {
            for (a, b) in [
                (&view[i], &enumr[i]),
                (&view[i], &fact[i]),
                (&view[i], &lin[i]),
            ] {
                assert!(
                    (a.score - b.score).abs() < 1e-9,
                    "engines disagree on {:?}: {} vs {}",
                    a.doc,
                    a.score,
                    b.score
                );
            }
        }
    }

    #[test]
    fn correlated_features_handled_exactly() {
        // Disjoint genres through one choice variable: naive-view must agree
        // with the lineage engine, NOT with the independence-assuming ones.
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Morning");
        let prog = kb.individual("prog");
        kb.assert_concept(prog, "TvProgram");
        let a = kb.individual("A");
        let b = kb.individual("B");
        let kind = kb.universe.add_choice("kind", &[0.6, 0.4]).unwrap();
        let e0 = kb.universe.atom(kind, 0).unwrap();
        let e1 = kb.universe.atom(kind, 1).unwrap();
        kb.assert_role_event(prog, "hasGenre", a, e0);
        kb.assert_role_event(prog, "hasGenre", b, e1);
        let mut rules = RuleRepository::new();
        let ctx = kb.parse("Morning").unwrap();
        rules
            .add(PreferenceRule::new(
                "A",
                ctx.clone(),
                kb.parse("EXISTS hasGenre.{A}").unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "B",
                ctx,
                kb.parse("EXISTS hasGenre.{B}").unwrap(),
                Score::new(0.6).unwrap(),
            ))
            .unwrap();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let view = NaiveViewEngine::new().score(&env, prog).unwrap().score;
        let lineage = LineageEngine::new().score(&env, prog).unwrap().score;
        assert!((view - lineage).abs() < 1e-12, "{view} vs {lineage}");
        let exact = 0.6 * 0.8 * 0.4 + 0.4 * 0.2 * 0.6;
        assert!((view - exact).abs() < 1e-12);
    }

    #[test]
    fn rule_cap_enforced() {
        let (mut kb, mut rules, user, docs) = paper_env();
        for i in 0..2 {
            rules
                .add(PreferenceRule::new(
                    format!("X{i}"),
                    kb.parse("Weekend").unwrap(),
                    kb.parse("TvProgram").unwrap(),
                    Score::new(0.5).unwrap(),
                ))
                .unwrap();
        }
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let engine = NaiveViewEngine { max_rules: 3 };
        assert!(matches!(
            engine.score_all(&env, &docs),
            Err(CoreError::TooManyRules { n: 4, max: 3 })
        ));
    }
}
