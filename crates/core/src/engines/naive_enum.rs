use std::sync::Arc;

use capra_dl::IndividualId;

use crate::bind::RuleBinding;
use crate::engines::{DocScore, EvalScratch, ScoringEngine};
use crate::{CoreError, Result, ScoringEnv};

/// The possible-feature-vector enumerator: a literal, in-memory transcription
/// of the paper's Section 3.3 sum
///
/// ```text
/// P(D=d|U=usit) = Σ_{g⃗} P(G=g⃗) · Σ_{f⃗} P(F=f⃗) · Π_{(g,f)∈H} {1, σ, 1−σ}
/// ```
///
/// enumerating **all 2ⁿ context-feature combinations × 2ⁿ document-feature
/// combinations** with the marginal feature probabilities (the paper's
/// independence assumption). The paper observes of its own implementation:
/// *"for each new rule, both the amount of possible combinations of context
/// features and the amount of possible combinations of tuple features … are
/// doubled, \[which\] leads to highly exponential query times"*. This engine
/// reproduces that cost curve without the relational-view machinery; the
/// difference between it and [`crate::NaiveViewEngine`] isolates how much of
/// the blow-up is the maths versus the view evaluation.
#[derive(Debug, Clone)]
pub struct NaiveEnumEngine {
    /// Skip zero-probability branches early (ablation knob; the result is
    /// identical, only visited-combination counts differ).
    pub prune_zero_branches: bool,
    /// Hard cap on applicable rules (`4ⁿ` growth).
    pub max_rules: usize,
}

impl Default for NaiveEnumEngine {
    fn default() -> Self {
        Self {
            prune_zero_branches: false,
            max_rules: 14,
        }
    }
}

impl NaiveEnumEngine {
    /// Creates the engine with the paper-faithful (non-pruning) settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(g⃗, f⃗)` combinations enumerated for `n` rules.
    pub fn combinations(n: usize) -> u128 {
        1u128 << (2 * n as u32)
    }
}

impl ScoringEngine for NaiveEnumEngine {
    fn name(&self) -> &'static str {
        "naive-enum"
    }

    fn config_tag(&self) -> u64 {
        // `max_rules` decides between an error and a score, so different
        // caps must not share cached results. `prune_zero_branches` only
        // changes the work done, never the outcome.
        self.max_rules as u64
    }

    fn score_all_bound(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>> {
        scratch.ensure_kb(env.kb);
        let applicable: Vec<&RuleBinding> = bindings
            .iter()
            .map(Arc::as_ref)
            .filter(|b| !b.is_inapplicable())
            .collect();
        let n = applicable.len();
        if n > self.max_rules {
            return Err(CoreError::TooManyRules {
                n,
                max: self.max_rules,
            });
        }
        scratch.with_evaluator(&env.kb.universe, |ev| {
            let context_probs: Vec<f64> = applicable
                .iter()
                .map(|b| ev.prob(&b.context_event))
                .collect();
            let sigmas: Vec<f64> = applicable.iter().map(|b| b.sigma).collect();

            let mut out = Vec::with_capacity(docs.len());
            for &doc in docs {
                let feature_probs: Vec<f64> = applicable
                    .iter()
                    .map(|b| ev.prob(&b.preference_event(doc)))
                    .collect();
                let score = self.enumerate(&context_probs, &feature_probs, &sigmas);
                out.push(DocScore {
                    doc,
                    score: score.clamp(0.0, 1.0),
                });
            }
            Ok(out)
        })
    }
}

impl NaiveEnumEngine {
    /// The double sum over feature-vector combinations. `g_mask` /
    /// `f_mask` bit `r` says whether rule `r`'s context / document feature
    /// is present in the combination.
    fn enumerate(&self, pg: &[f64], pf: &[f64], sigma: &[f64]) -> f64 {
        let n = pg.len();
        let mut total = 0.0;
        for g_mask in 0u64..(1 << n) {
            // P(G = g⃗) under independent marginals.
            let mut p_ctx = 1.0;
            for (r, &p) in pg.iter().enumerate() {
                p_ctx *= if g_mask >> r & 1 == 1 { p } else { 1.0 - p };
            }
            if self.prune_zero_branches && p_ctx == 0.0 {
                continue;
            }
            for f_mask in 0u64..(1 << n) {
                let mut p_doc = 1.0;
                for (r, &p) in pf.iter().enumerate() {
                    p_doc *= if f_mask >> r & 1 == 1 { p } else { 1.0 - p };
                }
                if self.prune_zero_branches && p_doc == 0.0 {
                    continue;
                }
                let mut weight = 1.0;
                for (r, &s) in sigma.iter().enumerate() {
                    if g_mask >> r & 1 == 1 {
                        weight *= if f_mask >> r & 1 == 1 { s } else { 1.0 - s };
                    }
                }
                total += p_ctx * p_doc * weight;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::FactorizedEngine;
    use crate::{Kb, PreferenceRule, RuleRepository, Score};

    fn paper_like_env() -> (Kb, RuleRepository, IndividualId, IndividualId) {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Weekend");
        kb.assert_concept(user, "Breakfast");
        let ch5 = kb.individual("Channel5");
        kb.assert_concept(ch5, "TvProgram");
        let hi = kb.individual("HUMAN-INTEREST");
        let wb = kb.individual("WeatherBulletin");
        kb.assert_role_prob(ch5, "hasGenre", hi, 0.95).unwrap();
        kb.assert_role_prob(ch5, "hasSubject", wb, 0.85).unwrap();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R1",
                kb.parse("Weekend").unwrap(),
                kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
                    .unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "R2",
                kb.parse("Breakfast").unwrap(),
                kb.parse("TvProgram AND EXISTS hasSubject.{WeatherBulletin}")
                    .unwrap(),
                Score::new(0.9).unwrap(),
            ))
            .unwrap();
        (kb, rules, user, ch5)
    }

    /// Channel 5 news from the paper's Section 4.2: 0.6006 exactly.
    #[test]
    fn reproduces_paper_channel5_score() {
        let (kb, rules, user, ch5) = paper_like_env();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let s = NaiveEnumEngine::new().score(&env, ch5).unwrap();
        assert!((s.score - 0.6006).abs() < 1e-12, "{}", s.score);
    }

    #[test]
    fn agrees_with_factorized_engine() {
        let (kb, rules, user, ch5) = paper_like_env();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let naive = NaiveEnumEngine::new().score(&env, ch5).unwrap().score;
        let fact = FactorizedEngine::new().score(&env, ch5).unwrap().score;
        assert!((naive - fact).abs() < 1e-12);
    }

    #[test]
    fn pruning_preserves_results() {
        let (kb, rules, user, ch5) = paper_like_env();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let base = NaiveEnumEngine::new().score(&env, ch5).unwrap().score;
        let pruned = NaiveEnumEngine {
            prune_zero_branches: true,
            ..NaiveEnumEngine::new()
        }
        .score(&env, ch5)
        .unwrap()
        .score;
        assert!((base - pruned).abs() < 1e-12);
    }

    #[test]
    fn rule_cap_enforced() {
        let (kb, mut rules, user, ch5) = paper_like_env();
        let mut kb = kb;
        for i in 0..3 {
            rules
                .add(PreferenceRule::new(
                    format!("X{i}"),
                    kb.parse("Weekend").unwrap(),
                    kb.parse("TvProgram").unwrap(),
                    Score::new(0.5).unwrap(),
                ))
                .unwrap();
        }
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let engine = NaiveEnumEngine {
            max_rules: 4,
            ..NaiveEnumEngine::new()
        };
        assert!(matches!(
            engine.score(&env, ch5),
            Err(CoreError::TooManyRules { n: 5, max: 4 })
        ));
    }

    #[test]
    fn combination_count_is_4_to_the_n() {
        assert_eq!(NaiveEnumEngine::combinations(0), 1);
        assert_eq!(NaiveEnumEngine::combinations(1), 4);
        assert_eq!(NaiveEnumEngine::combinations(7), 16384);
    }
}
