use std::collections::HashMap;
use std::sync::Arc;

use capra_dl::IndividualId;
use capra_events::{BatchExpectation, EventExpr, Factor};

use crate::bind::RuleBinding;
use crate::engines::{DocScore, EvalScratch, ScoringEngine};
use crate::{Result, ScoringEnv};

/// The exact engine: evaluates the Section 3.3 expectation over the event
/// expressions themselves, so **correlated** context and document features
/// (shared sensors, mutually exclusive rooms or genres) are handled without
/// approximation — the paper's stated requirement for its uncertainty model
/// ("it is important to capture and model these correlations without
/// approximations").
///
/// Per document, each applicable rule contributes the factor
///
/// ```text
/// 1·1[¬G_r] + σ_r·1[G_r ∧ F_rd] + (1−σ_r)·1[G_r ∧ ¬F_rd]
/// ```
///
/// and the score is the exact expectation of the product, computed by
/// Shannon expansion over the shared random variables with memoisation
/// (see [`capra_events::Expectation`]). When rules touch disjoint variables
/// the expectation factorises automatically, so the engine degrades
/// gracefully to the factorized engine's linear cost.
#[derive(Debug, Clone, Default)]
pub struct LineageEngine {
    /// Skip rules whose context event is `False` (constant factor 1).
    /// On by default; exposed for the pruning ablation benchmark.
    pub prune_inapplicable: bool,
}

impl LineageEngine {
    /// Creates the engine with pruning enabled.
    pub fn new() -> Self {
        Self {
            prune_inapplicable: true,
        }
    }

    /// The columnar evaluation order: documents are grouped by their
    /// per-rule preference-event *signature* (one interned event — or its
    /// absence — per active rule), each distinct signature's factor
    /// product is built and computed once, and the expectation is
    /// broadcast to every document sharing it. On sparse KBs most
    /// documents miss most rules, so whole signature groups collapse to
    /// one evaluation. Bit-identical to the scalar loop: the memoised
    /// expectation is a pure function of the hash-consed factor keys, and
    /// the per-lane clamp is unchanged.
    fn score_all_columnar(
        env: &ScoringEnv<'_>,
        active: &[&RuleBinding],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>> {
        let per_rule: Vec<(&RuleBinding, EventExpr, Factor)> = active
            .iter()
            .map(|b| {
                let not_g = EventExpr::not(b.context_event.clone());
                let miss_factor = Factor::new([
                    (not_g.clone(), 1.0),
                    (b.context_event.clone(), 1.0 - b.sigma),
                ]);
                (*b, not_g, miss_factor)
            })
            .collect();
        // Signatures are filled rule-by-rule: each rule sweeps its bound
        // view in order and drops in-batch events into their lane (via the
        // lane index built once per batch), instead of one B-tree descent
        // per (rule, doc). Comparing and hashing signatures afterwards is
        // pointer/precomputed-hash work only.
        let lane: HashMap<IndividualId, usize> =
            docs.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut signatures: Vec<Vec<Option<EventExpr>>> =
            vec![vec![None; per_rule.len()]; docs.len()];
        for (r, (b, _, _)) in per_rule.iter().enumerate() {
            if b.preference_events.len() <= docs.len().saturating_mul(4) {
                for (doc, event) in b.preference_events.iter() {
                    if let Some(&slot) = lane.get(doc) {
                        signatures[slot][r] = Some(event.clone());
                    }
                }
            } else {
                // The bound view dwarfs the batch: per-document lookups
                // are cheaper than sweeping the whole map.
                for (slot, &doc) in docs.iter().enumerate() {
                    signatures[slot][r] = b.preference_events.get(&doc).cloned();
                }
            }
        }
        let (out, stats) = scratch.with_expectation(&env.kb.universe, |expectation| {
            let mut batch = BatchExpectation::new(expectation);
            let raw = batch.compute_grouped(&signatures, |signature| {
                signature
                    .iter()
                    .zip(&per_rule)
                    .map(|(pref, (b, not_g, miss_factor))| match pref {
                        None => miss_factor.clone(),
                        Some(f) => {
                            let g = b.context_event.clone();
                            Factor::new([
                                (not_g.clone(), 1.0),
                                (EventExpr::and([g.clone(), f.clone()]), b.sigma),
                                (
                                    EventExpr::and([g, EventExpr::not(f.clone())]),
                                    1.0 - b.sigma,
                                ),
                            ])
                        }
                    })
                    .collect()
            });
            let out: Vec<DocScore> = docs
                .iter()
                .zip(raw)
                .map(|(&doc, e)| DocScore {
                    doc,
                    score: e.clamp(0.0, 1.0),
                })
                .collect();
            (out, batch.stats())
        });
        scratch.record_batch(stats);
        Ok(out)
    }
}

impl ScoringEngine for LineageEngine {
    fn name(&self) -> &'static str {
        "lineage"
    }

    fn score_all_bound(
        &self,
        env: &ScoringEnv<'_>,
        bindings: &[Arc<RuleBinding>],
        docs: &[IndividualId],
        scratch: &mut EvalScratch,
    ) -> Result<Vec<DocScore>> {
        scratch.ensure_kb(env.kb);
        let active: Vec<&RuleBinding> = bindings
            .iter()
            .map(Arc::as_ref)
            .filter(|b| !(self.prune_inapplicable && b.is_inapplicable()))
            .collect();
        // Columnar sweeps only pay off when lanes can share evaluations;
        // single-document batches take the scalar loop unchanged.
        if scratch.scoring().columnar && docs.len() > 1 {
            return Self::score_all_columnar(env, &active, docs, scratch);
        }
        // Doc-invariant pieces per rule, built once: the context event, its
        // complement, and the factor a *non-matching* document yields
        // (preference event `False` — the common case on sparse KBs).
        let per_rule: Vec<(&crate::RuleBinding, EventExpr, Factor)> = active
            .iter()
            .map(|b| {
                let not_g = EventExpr::not(b.context_event.clone());
                let miss_factor = Factor::new([
                    (not_g.clone(), 1.0),
                    (b.context_event.clone(), 1.0 - b.sigma),
                ]);
                (*b, not_g, miss_factor)
            })
            .collect();
        // One expectation computer for the whole run: documents share the
        // context sub-problems through its memo table (keys are hash-consed
        // expressions, so identical sub-problems across documents collide).
        // The memo state itself lives in `scratch`, so a session's repeat
        // calls also share sub-problems *across* runs.
        scratch.with_expectation(&env.kb.universe, |expectation| {
            let mut out = Vec::with_capacity(docs.len());
            for &doc in docs {
                let factors: Vec<Factor> = per_rule
                    .iter()
                    .map(
                        |(b, not_g, miss_factor)| match b.preference_events.get(&doc) {
                            None => miss_factor.clone(),
                            Some(f) => {
                                let g = b.context_event.clone();
                                Factor::new([
                                    (not_g.clone(), 1.0),
                                    (EventExpr::and([g.clone(), f.clone()]), b.sigma),
                                    (
                                        EventExpr::and([g, EventExpr::not(f.clone())]),
                                        1.0 - b.sigma,
                                    ),
                                ])
                            }
                        },
                    )
                    .collect();
                let score = expectation.compute(&factors).clamp(0.0, 1.0);
                out.push(DocScore { doc, score });
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kb, PreferenceRule, RuleRepository, Score};

    /// Correlated scenario: two rules prefer two *mutually exclusive*
    /// genres of the same program (the disjoint-genre situation from the
    /// paper's Section 3.2).
    #[test]
    fn disjoint_genres_are_exact() {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Morning");
        let prog = kb.individual("prog");
        kb.assert_concept(prog, "TvProgram");
        let traffic = kb.individual("Traffic");
        let weather = kb.individual("Weather");
        // The program is *either* a traffic or a weather bulletin: one
        // choice variable, two alternatives (60% / 40%).
        let kind = kb.universe.add_choice("kind", &[0.6, 0.4]).unwrap();
        let is_traffic = kb.universe.atom(kind, 0).unwrap();
        let is_weather = kb.universe.atom(kind, 1).unwrap();
        kb.assert_role_event(prog, "hasGenre", traffic, is_traffic);
        kb.assert_role_event(prog, "hasGenre", weather, is_weather);

        let mut rules = RuleRepository::new();
        let ctx = kb.parse("Morning").unwrap();
        let pref_t = kb.parse("EXISTS hasGenre.{Traffic}").unwrap();
        let pref_w = kb.parse("EXISTS hasGenre.{Weather}").unwrap();
        rules
            .add(PreferenceRule::new(
                "T",
                ctx.clone(),
                pref_t,
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "W",
                ctx,
                pref_w,
                Score::new(0.6).unwrap(),
            ))
            .unwrap();

        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let engine = LineageEngine::new();
        let score = engine.score(&env, prog).unwrap().score;
        // Exact: E = P(traffic)·σ_T·(1−σ_W) + P(weather)·(1−σ_T)·σ_W
        //           + P(neither)·(1−σ_T)·(1−σ_W)
        let expected = 0.6 * 0.8 * 0.4 + 0.4 * 0.2 * 0.6 + 0.0 * 0.2 * 0.4;
        assert!(
            (score - expected).abs() < 1e-12,
            "{score} vs {expected} (independence would give a different number)"
        );
        // Independence assumption WOULD give (0.6·0.8+0.4·0.2)·(0.4·0.6+0.6·0.4):
        let independent = (0.6 * 0.8 + 0.4 * 0.2) * (0.4 * 0.6 + 0.6 * 0.4);
        assert!(
            (score - independent).abs() > 1e-3,
            "correlation must matter"
        );
    }

    #[test]
    fn no_rules_scores_one() {
        // With an empty H the paper's formula degenerates to 1 for every
        // document (the reason the paper recommends default rules).
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        let doc = kb.individual("doc");
        let rules = RuleRepository::new();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let s = LineageEngine::new().score(&env, doc).unwrap();
        assert_eq!(s.score, 1.0);
    }

    #[test]
    fn pruning_does_not_change_results() {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Weekend");
        let doc = kb.individual("doc");
        kb.assert_concept_prob(doc, "Interesting", 0.5).unwrap();
        let mut rules = RuleRepository::new();
        let weekend = kb.parse("Weekend").unwrap();
        let holiday = kb.parse("Holiday").unwrap(); // never applies
        let pref = kb.parse("Interesting").unwrap();
        rules
            .add(PreferenceRule::new(
                "A",
                weekend,
                pref.clone(),
                Score::new(0.7).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "B",
                holiday,
                pref,
                Score::new(0.9).unwrap(),
            ))
            .unwrap();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let pruned = LineageEngine::new().score(&env, doc).unwrap().score;
        let unpruned = LineageEngine {
            prune_inapplicable: false,
        }
        .score(&env, doc)
        .unwrap()
        .score;
        assert!((pruned - unpruned).abs() < 1e-12);
        assert!((pruned - (0.5 * 0.7 + 0.5 * 0.3)).abs() < 1e-12);
    }
}
