//! Explanation of scores — the paper's *traceability* goal.
//!
//! The Discussion section asks for explanations that do not require the user
//! to read the preference rules themselves: *"provide the user with a
//! motivation for the 'context based' answer … what kind of explanation
//! (such as rules, features, or scores) would give the user a good
//! insight"*. [`explain`] decomposes a document's score into one
//! contribution per rule — the context probability, the feature-match
//! probability, σ, and the resulting multiplicative factor — and renders
//! them as readable text.

use std::fmt;

use capra_dl::IndividualId;
use capra_events::Evaluator;

use crate::bind::bind_rules;
use crate::{Result, ScoringEnv};

/// One rule's contribution to a document's score.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleContribution {
    /// Rule name.
    pub rule: String,
    /// Probability that the rule's context currently applies.
    pub context_prob: f64,
    /// Probability that the document matches the rule's preference.
    pub feature_prob: f64,
    /// The rule's σ.
    pub sigma: f64,
    /// The multiplicative factor the rule contributes:
    /// `(1 − P(ctx)) + P(ctx)·(P(feat)·σ + (1 − P(feat))·(1 − σ))`.
    pub factor: f64,
}

/// A scored document with its per-rule breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The document being explained.
    pub doc: IndividualId,
    /// Human-readable document name.
    pub doc_name: String,
    /// Product of the factors (the score, under feature independence).
    pub score: f64,
    /// Per-rule contributions, in repository order.
    pub contributions: Vec<RuleContribution>,
}

/// Builds an explanation for one document.
///
/// The breakdown uses the per-rule marginal probabilities, i.e. the
/// independence factorisation; for correlated features the factors are the
/// rules' *marginal* influence and the noted score is their product (the
/// exact score may differ — use [`crate::LineageEngine`] for the number, the
/// explanation for the intuition).
pub fn explain(env: &ScoringEnv<'_>, doc: IndividualId) -> Result<Explanation> {
    let bindings = bind_rules(env);
    let mut ev = Evaluator::new(&env.kb.universe);
    let mut contributions = Vec::with_capacity(bindings.len());
    let mut score = 1.0;
    for b in &bindings {
        let context_prob = ev.prob(&b.context_event);
        let feature_prob = ev.prob(&b.preference_event(doc));
        let matched = feature_prob * b.sigma + (1.0 - feature_prob) * (1.0 - b.sigma);
        let factor = (1.0 - context_prob) + context_prob * matched;
        score *= factor;
        contributions.push(RuleContribution {
            rule: b.name.clone(),
            context_prob,
            feature_prob,
            sigma: b.sigma,
            factor,
        });
    }
    Ok(Explanation {
        doc,
        doc_name: env.kb.voc.individual_name(doc).to_string(),
        score: score.clamp(0.0, 1.0),
        contributions,
    })
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: probability {:.4} of being the ideal document",
            self.doc_name, self.score
        )?;
        for c in &self.contributions {
            if c.context_prob == 0.0 {
                writeln!(f, "  · rule {}: context does not apply (×1)", c.rule)?;
                continue;
            }
            writeln!(
                f,
                "  · rule {} (σ={:.2}): context applies with P={:.2}, \
                 document matches with P={:.2} → ×{:.4}",
                c.rule, c.sigma, c.context_prob, c.feature_prob, c.factor
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kb, PreferenceRule, RuleRepository, Score, ScoringEngine};

    fn env_fixture() -> (Kb, RuleRepository, IndividualId, IndividualId) {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Weekend");
        let ch5 = kb.individual("Channel 5 news");
        kb.assert_concept(ch5, "TvProgram");
        let hi = kb.individual("HUMAN-INTEREST");
        kb.assert_role_prob(ch5, "hasGenre", hi, 0.95).unwrap();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R1",
                kb.parse("Weekend").unwrap(),
                kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
                    .unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "R9",
                kb.parse("Holiday").unwrap(),
                kb.parse("TvProgram").unwrap(),
                Score::new(0.4).unwrap(),
            ))
            .unwrap();
        (kb, rules, user, ch5)
    }

    #[test]
    fn breakdown_multiplies_to_score() {
        let (kb, rules, user, ch5) = env_fixture();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let ex = explain(&env, ch5).unwrap();
        assert_eq!(ex.contributions.len(), 2);
        let product: f64 = ex.contributions.iter().map(|c| c.factor).product();
        assert!((ex.score - product).abs() < 1e-12);
        assert!((ex.contributions[0].factor - 0.77).abs() < 1e-12);
        assert_eq!(ex.contributions[1].factor, 1.0, "inapplicable rule is ×1");
        // And the explanation matches the factorized engine's score.
        let s = crate::FactorizedEngine::new().score(&env, ch5).unwrap();
        assert!((ex.score - s.score).abs() < 1e-12);
    }

    #[test]
    fn rendering_mentions_rules_and_probabilities() {
        let (kb, rules, user, ch5) = env_fixture();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let text = explain(&env, ch5).unwrap().to_string();
        assert!(text.contains("Channel 5 news"), "{text}");
        assert!(text.contains("rule R1"), "{text}");
        assert!(text.contains("σ=0.80"), "{text}");
        assert!(text.contains("context does not apply"), "{text}");
    }
}
