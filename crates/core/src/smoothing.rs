//! Blending query relevance with context relevance — the paper's
//! "Evaluation of ranking" discussion item.
//!
//! Equation (3) factors relevance into a query-dependent part
//! `P(Q=q | D=d ∧ U=usit)` and the query-independent context score
//! `P(D=d | U=usit)`. The naive implementation takes the query-dependent
//! part as binary (*"either 1, if the tuple was contained in the user
//! query, or 0 if it was not"*) and the paper suggests exploring *"the
//! weighting of the query-independent and query-dependent part of equation
//! (3), using smoothing methods"*. This module provides that weighting:
//!
//! * [`Smoothing::JelinekMercer`] — the classic linear interpolation
//!   `λ·query + (1−λ)·context` (in probability space, after both parts are
//!   normalised to `[0,1]`);
//! * [`Smoothing::LogLinear`] — a log-linear mixture
//!   `query^λ · context^(1−λ)`, the geometric counterpart, which preserves
//!   the multiplicative reading of equation (3) (λ = 0.5 is the plain
//!   product up to an exponent);
//! * [`Smoothing::Product`] — the un-smoothed equation (3): the strict
//!   product, reproducing the paper's naive behaviour when the query part
//!   is 0/1.

use capra_dl::IndividualId;

use crate::engines::DocScore;
use crate::{CoreError, Result};

/// A query-dependent relevance value for a document, in `[0, 1]`.
/// The binary membership of the paper's naive implementation is the special
/// case `0.0` / `1.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRelevance {
    /// The document.
    pub doc: IndividualId,
    /// `P(Q=q | D=d ∧ U=usit)`, normalised to `[0, 1]`.
    pub relevance: f64,
}

/// How to combine the two parts of equation (3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoothing {
    /// Strict product — the paper's equation (3) as-is.
    Product,
    /// Jelinek–Mercer linear interpolation with weight `λ` on the
    /// query-dependent part (`λ ∈ [0, 1]`).
    JelinekMercer(f64),
    /// Log-linear (geometric) mixture with weight `λ` on the
    /// query-dependent part (`λ ∈ [0, 1]`).
    LogLinear(f64),
}

impl Smoothing {
    fn lambda(self) -> Result<Option<f64>> {
        let l = match self {
            Smoothing::Product => return Ok(None),
            Smoothing::JelinekMercer(l) | Smoothing::LogLinear(l) => l,
        };
        if (0.0..=1.0).contains(&l) {
            Ok(Some(l))
        } else {
            Err(CoreError::Ranking(format!(
                "smoothing weight λ={l} outside [0, 1]"
            )))
        }
    }

    /// Combines one pair of scores.
    pub fn combine(self, query: f64, context: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&query) {
            return Err(CoreError::Ranking(format!(
                "query relevance {query} outside [0, 1]"
            )));
        }
        Ok(match self {
            Smoothing::Product => query * context,
            Smoothing::JelinekMercer(_) => {
                let l = self.lambda()?.expect("non-product");
                l * query + (1.0 - l) * context
            }
            Smoothing::LogLinear(_) => {
                let l = self.lambda()?.expect("non-product");
                query.powf(l) * context.powf(1.0 - l)
            }
        })
    }
}

/// Blends per-document query relevances with context scores.
///
/// Both lists must cover the same documents; the output is in the order of
/// `context_scores` and is *not* sorted (use [`crate::rank`]).
pub fn blend(
    query: &[QueryRelevance],
    context_scores: &[DocScore],
    smoothing: Smoothing,
) -> Result<Vec<DocScore>> {
    smoothing.lambda()?; // validate once up front
    let by_doc: std::collections::BTreeMap<IndividualId, f64> =
        query.iter().map(|q| (q.doc, q.relevance)).collect();
    context_scores
        .iter()
        .map(|s| {
            let q = by_doc.get(&s.doc).copied().ok_or_else(|| {
                CoreError::Ranking(format!("no query relevance for document {:?}", s.doc))
            })?;
            Ok(DocScore {
                doc: s.doc,
                score: smoothing.combine(q, s.score)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kb;

    fn fixture() -> (Vec<QueryRelevance>, Vec<DocScore>) {
        let mut kb = Kb::new();
        let a = kb.individual("a");
        let b = kb.individual("b");
        let query = vec![
            QueryRelevance {
                doc: a,
                relevance: 1.0,
            },
            QueryRelevance {
                doc: b,
                relevance: 0.0,
            },
        ];
        let context = vec![
            DocScore { doc: a, score: 0.3 },
            DocScore { doc: b, score: 0.9 },
        ];
        (query, context)
    }

    #[test]
    fn product_reproduces_naive_binary_behaviour() {
        let (query, context) = fixture();
        let out = blend(&query, &context, Smoothing::Product).unwrap();
        // In the paper's naive implementation a tuple outside the query
        // result has final relevance 0 regardless of context.
        assert_eq!(out[0].score, 0.3);
        assert_eq!(out[1].score, 0.0);
    }

    #[test]
    fn jelinek_mercer_interpolates_linearly() {
        let (query, context) = fixture();
        let out = blend(&query, &context, Smoothing::JelinekMercer(0.25)).unwrap();
        assert!((out[0].score - (0.25 * 1.0 + 0.75 * 0.3)).abs() < 1e-12);
        assert!((out[1].score - 0.75 * 0.9).abs() < 1e-12);
        // λ = 1 is pure query relevance; λ = 0 pure context.
        let pure_q = blend(&query, &context, Smoothing::JelinekMercer(1.0)).unwrap();
        assert_eq!(pure_q[0].score, 1.0);
        assert_eq!(pure_q[1].score, 0.0);
        let pure_c = blend(&query, &context, Smoothing::JelinekMercer(0.0)).unwrap();
        assert_eq!(pure_c[0].score, 0.3);
        assert_eq!(pure_c[1].score, 0.9);
    }

    #[test]
    fn log_linear_is_geometric() {
        let (query, context) = fixture();
        let out = blend(&query, &context, Smoothing::LogLinear(0.5)).unwrap();
        assert!((out[0].score - (1.0f64 * 0.3).sqrt()).abs() < 1e-12);
        assert_eq!(out[1].score, 0.0, "zero query relevance annihilates");
    }

    #[test]
    fn smoothing_can_rescue_near_misses() {
        // The point of smoothing: a high-context document slightly outside
        // the query can outrank a low-context document inside it.
        let mut kb = Kb::new();
        let inside = kb.individual("inside");
        let outside = kb.individual("outside");
        let query = vec![
            QueryRelevance {
                doc: inside,
                relevance: 1.0,
            },
            QueryRelevance {
                doc: outside,
                relevance: 0.6, // partial match
            },
        ];
        let context = vec![
            DocScore {
                doc: inside,
                score: 0.05,
            },
            DocScore {
                doc: outside,
                score: 0.95,
            },
        ];
        // λ controls which part dominates: query-heavy smoothing keeps the
        // exact match on top, context-heavy smoothing lets the context
        // rescue the partial match.
        let query_heavy = blend(&query, &context, Smoothing::JelinekMercer(0.9)).unwrap();
        assert!(
            query_heavy[0].score > query_heavy[1].score,
            "λ=0.9: {} vs {}",
            query_heavy[0].score,
            query_heavy[1].score
        );
        let context_heavy = blend(&query, &context, Smoothing::JelinekMercer(0.3)).unwrap();
        assert!(
            context_heavy[1].score > context_heavy[0].score,
            "λ=0.3: {} vs {}",
            context_heavy[0].score,
            context_heavy[1].score
        );
    }

    #[test]
    fn validation_errors() {
        let (query, context) = fixture();
        assert!(matches!(
            blend(&query, &context, Smoothing::JelinekMercer(1.5)),
            Err(CoreError::Ranking(_))
        ));
        assert!(matches!(
            Smoothing::Product.combine(1.5, 0.5),
            Err(CoreError::Ranking(_))
        ));
        let missing = blend(&query[..1], &context, Smoothing::Product);
        assert!(matches!(missing, Err(CoreError::Ranking(_))));
    }
}
