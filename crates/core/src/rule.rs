use std::fmt;

use capra_dl::{Concept, Vocabulary};

use crate::{CoreError, Result};

/// A probability-like score in `[0, 1]`, validated at construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Score(f64);

impl Score {
    /// Creates a score, rejecting values outside `[0, 1]` (or NaN).
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Score(value))
        } else {
            Err(CoreError::BadScore(value))
        }
    }

    /// The raw value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The complementary score `1 − σ`.
    pub fn complement(self) -> Score {
        Score(1.0 - self.0)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A **scored preference rule** `(Context, Preference, σ)` — the paper's
/// Section 4.1 construct.
///
/// Semantics of `σ` (quoting the paper): *the probability that whenever we
/// take a random context in the past [matching `context`], if the user was
/// able to choose a document [matching `preference`], the chance that he
/// would actually choose such a document was σ.*
///
/// Example (the paper's rule R1):
///
/// ```
/// use capra_core::{PreferenceRule, Score};
/// use capra_dl::{parse_concept, Vocabulary};
///
/// let mut voc = Vocabulary::new();
/// let rule = PreferenceRule::new(
///     "R1",
///     parse_concept("Weekend", &mut voc).unwrap(),
///     parse_concept("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}", &mut voc).unwrap(),
///     Score::new(0.8).unwrap(),
/// );
/// assert_eq!(rule.name, "R1");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PreferenceRule {
    /// Identifier, unique within a repository.
    pub name: String,
    /// The context concept: when does this rule apply?
    pub context: Concept,
    /// The preference concept: which documents does it prefer?
    pub preference: Concept,
    /// The score σ.
    pub sigma: Score,
}

impl PreferenceRule {
    /// Creates a rule.
    pub fn new(
        name: impl Into<String>,
        context: Concept,
        preference: Concept,
        sigma: Score,
    ) -> Self {
        Self {
            name: name.into(),
            context,
            preference,
            sigma,
        }
    }

    /// A *default rule*: applies in every context (context = ⊤). The paper
    /// suggests default rules so that querying contexts not covered by any
    /// rule still get meaningful probabilities.
    pub fn default_rule(name: impl Into<String>, preference: Concept, sigma: Score) -> Self {
        Self::new(name, Concept::Top, preference, sigma)
    }

    /// Renders the rule in the repository text format
    /// (`name | context | preference | sigma`).
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayRule<'a> {
        DisplayRule { rule: self, voc }
    }
}

/// Helper returned by [`PreferenceRule::display`].
pub struct DisplayRule<'a> {
    rule: &'a PreferenceRule,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} | {}",
            self.rule.name,
            self.rule.context.display(self.voc),
            self.rule.preference.display(self.voc),
            self.rule.sigma
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_dl::parse_concept;

    #[test]
    fn score_validation() {
        assert!(Score::new(0.0).is_ok());
        assert!(Score::new(1.0).is_ok());
        assert!(Score::new(0.8).is_ok());
        assert!(matches!(Score::new(1.1), Err(CoreError::BadScore(_))));
        assert!(matches!(Score::new(-0.1), Err(CoreError::BadScore(_))));
        assert!(matches!(Score::new(f64::NAN), Err(CoreError::BadScore(_))));
        assert!((Score::new(0.8).unwrap().complement().get() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn default_rule_has_top_context() {
        let mut voc = Vocabulary::new();
        let pref = parse_concept("TvProgram", &mut voc).unwrap();
        let r = PreferenceRule::default_rule("D", pref, Score::new(0.5).unwrap());
        assert_eq!(r.context, Concept::Top);
    }

    #[test]
    fn display_round_trips_through_repository_format() {
        let mut voc = Vocabulary::new();
        let rule = PreferenceRule::new(
            "R2",
            parse_concept("Breakfast", &mut voc).unwrap(),
            parse_concept("TvProgram AND EXISTS hasSubject.{News}", &mut voc).unwrap(),
            Score::new(0.9).unwrap(),
        );
        let line = rule.display(&voc).to_string();
        assert!(line.starts_with("R2 | Breakfast | "));
        assert!(line.ends_with("| 0.9"));
    }
}
