//! # capra-core — context-aware preference ranking
//!
//! The primary contribution of *"Ranking Query Results using Context-Aware
//! Preferences"* (van Bunningen, Fokkinga, Apers, Feng — ICDE 2007),
//! reimplemented as a library:
//!
//! * [`PreferenceRule`] / [`RuleRepository`] — scored preference rules
//!   `(Context, Preference, σ)` over DL concepts, with a text format;
//! * [`Kb`] — the knowledge base (documents, context facts, uncertainty);
//! * four [`ScoringEngine`]s computing `P(D=d | U=usit)` — the probability
//!   that a document is the user's *ideal document* in the current context
//!   (see [`engines`] for the comparison table):
//!   [`NaiveViewEngine`] (the paper's Section 5 implementation),
//!   [`NaiveEnumEngine`], [`FactorizedEngine`], [`LineageEngine`];
//! * [`explain`] — per-rule score breakdowns (the traceability goal);
//! * [`history`] — history logs and σ-mining with the paper's exact
//!   semantics (Discussion: *mining/learning preferences*);
//! * [`multiuser`] — group aggregation (Discussion: *modeling multiple
//!   users*);
//! * [`ranking`] — the `preferencescore` SQL integration of the paper's
//!   introduction;
//! * [`parallel`] — work-stealing parallel scoring over a shared frozen
//!   evaluation-cache tier, including [`parallel::ParallelScoringSession`];
//! * [`ScoringSession`] — prepared scoring: cached rule bindings
//!   (invalidated by KB epoch), persistent evaluation memos and cached
//!   scores across repeated calls;
//! * [`rank_top_k`] — `LIMIT`-shaped ranking with early termination;
//! * [`serve`] — the multi-tenant [`RankingService`]: LRU-capped per-user
//!   sessions over one shared, bounded evaluation tier, with typed
//!   requests and batch coalescing;
//! * [`persist`] — durability: a versioned binary codec for KB / rule /
//!   frozen-tier snapshots and a checksummed, segmented context-event
//!   WAL with opt-in covered-prefix compaction ([`CompactionPolicy`]),
//!   powering `RankingService::open_durable` crash recovery and
//!   read-only [`ReplicaService`] followers.
//!
//! ## The worked example (paper Section 4.2)
//!
//! ```
//! use capra_core::{
//!     FactorizedEngine, Kb, PreferenceRule, RuleRepository, Score, ScoringEngine, ScoringEnv,
//! };
//!
//! let mut kb = Kb::new();
//! let peter = kb.individual("peter");
//! kb.assert_concept(peter, "Weekend");
//! kb.assert_concept(peter, "Breakfast");
//!
//! let ch5 = kb.individual("Channel 5 news");
//! kb.assert_concept(ch5, "TvProgram");
//! let hi = kb.individual("HUMAN-INTEREST");
//! let wb = kb.individual("WeatherBulletin");
//! kb.assert_role_prob(ch5, "hasGenre", hi, 0.95).unwrap();
//! kb.assert_role_prob(ch5, "hasSubject", wb, 0.85).unwrap();
//!
//! let mut rules = RuleRepository::new();
//! rules.add(PreferenceRule::new(
//!     "R1",
//!     kb.parse("Weekend").unwrap(),
//!     kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}").unwrap(),
//!     Score::new(0.8).unwrap(),
//! )).unwrap();
//! rules.add(PreferenceRule::new(
//!     "R2",
//!     kb.parse("Breakfast").unwrap(),
//!     kb.parse("TvProgram AND EXISTS hasSubject.{WeatherBulletin}").unwrap(),
//!     Score::new(0.9).unwrap(),
//! )).unwrap();
//!
//! let env = ScoringEnv { kb: &kb, rules: &rules, user: peter };
//! let score = FactorizedEngine::new().score(&env, ch5).unwrap().score;
//! assert!((score - 0.6006).abs() < 1e-12); // the paper's number
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bind;
pub mod compile;
pub mod engines;
mod error;
mod explain;
pub mod history;
mod kb;
pub mod multiuser;
pub mod parallel;
pub mod persist;
pub mod ranking;
mod repository;
mod rule;
pub mod serve;
mod session;
pub mod smoothing;
mod topk;

pub use bind::{bind_rules, bind_rules_shared, RuleBinding, ScoringEnv};
pub use engines::{
    rank, CorrelationPolicy, DocScore, EvalScratch, FactorizedEngine, LineageEngine,
    NaiveEnumEngine, NaiveViewEngine, ScoringConfig, ScoringEngine,
};
pub use error::CoreError;
pub use explain::{explain, Explanation, RuleContribution};
pub use history::{Episode, HistoryLog, MinedRule, Offer};
pub use kb::Kb;
pub use multiuser::{group_scores, score_group, GroupStrategy};
pub use persist::{
    CompactionPolicy, FlushPolicy, PersistError, WalStats, Workload, WorkloadFact, WorkloadMeta,
    WorkloadRecord,
};
pub use repository::RuleRepository;
pub use rule::{PreferenceRule, Score};
pub use serve::{
    replay_workload, workload_service, QueueConfig, QueueStats, RankingService, ReplayReport,
    ReplicaService, ReplicaStats, ServiceConfig, ServiceHandle, ServiceQueue, ServiceStats,
    SharedSnapshot, Ticket,
};
pub use session::{BindingCache, CacheStats, ScoringSession, SessionStats};
pub use smoothing::{blend, QueryRelevance, Smoothing};
pub use topk::{rank_top_k, rank_top_k_bound};

// Re-exported from `capra_events`: the eviction knob for the session and
// pool snapshot tiers, the footprint report in [`SessionStats`], and the
// columnar batch-sweep counters sessions surface alongside it.
pub use capra_events::{BatchStats, CacheFootprint, EvictionPolicy};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
