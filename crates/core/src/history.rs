//! History logs and preference mining.
//!
//! The paper grounds σ in the user's history: *"the score function σ(g,f) is
//! defined as the probability that if we take a random context in history
//! with feature g* [in which] *the user was able to choose a document with
//! feature f given the other features of the document, the user actually
//! chose a document with feature f"* (Section 3.2, extended definition).
//! Its Discussion section then asks: *"how well \[would\] the actual user
//! preferences be predicted by mining the history of the user using exactly
//! these semantics"* — this module implements that mining, with exactly
//! those semantics, so the question can be answered experimentally
//! (see the `preference_mining` example and the mining benchmark).
//!
//! Features are opaque string labels here; converting mined pairs into
//! [`crate::PreferenceRule`]s is done by the caller, which knows how labels
//! map to concepts (see [`MinedRule`]).

use std::collections::{BTreeMap, BTreeSet};

/// One offered document in an episode: its features and whether the user
/// chose it. A single episode may contain several chosen documents (the
/// paper: a person may watch both the weather and the traffic bulletin on
/// the same morning — "one should take the whole workday morning as one
/// context where the user chose two documents").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Offer {
    /// Feature labels of the offered document.
    pub features: BTreeSet<String>,
    /// Did the user choose it?
    pub chosen: bool,
}

impl Offer {
    /// Convenience constructor.
    pub fn new<I, S>(features: I, chosen: bool) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            features: features.into_iter().map(Into::into).collect(),
            chosen,
        }
    }
}

/// One interaction episode: the context's features and the documents that
/// were available, with the user's choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// Feature labels of the context.
    pub context: BTreeSet<String>,
    /// The documents on offer.
    pub offers: Vec<Offer>,
}

impl Episode {
    /// Convenience constructor.
    pub fn new<I, S>(context: I, offers: Vec<Offer>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            context: context.into_iter().map(Into::into).collect(),
            offers,
        }
    }
}

/// A mined `(context feature, document feature)` pair with its estimated σ.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedRule {
    /// Context feature label `g`.
    pub context_feature: String,
    /// Document feature label `f`.
    pub doc_feature: String,
    /// Estimated σ̂(g, f).
    pub sigma: f64,
    /// Number of applicable episodes the estimate is based on.
    pub support: usize,
}

/// An append-only log of episodes.
#[derive(Debug, Clone, Default)]
pub struct HistoryLog {
    episodes: Vec<Episode>,
}

impl HistoryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an episode.
    pub fn record(&mut self, episode: Episode) {
        self.episodes.push(episode);
    }

    /// The recorded episodes.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Number of episodes.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Estimates σ̂(g, f) with the paper's semantics:
    ///
    /// * an episode is **applicable** if `g` is among its context features
    ///   and at least one offered document carries `f` (the user *was able*
    ///   to choose a document with `f`);
    /// * it is a **success** if some *chosen* document carries `f`.
    ///
    /// Returns `(σ̂, support)`, or `None` with zero applicable episodes.
    pub fn sigma(&self, g: &str, f: &str) -> Option<(f64, usize)> {
        let mut applicable = 0usize;
        let mut successes = 0usize;
        for ep in &self.episodes {
            if !ep.context.contains(g) {
                continue;
            }
            if !ep.offers.iter().any(|o| o.features.contains(f)) {
                continue;
            }
            applicable += 1;
            if ep.offers.iter().any(|o| o.chosen && o.features.contains(f)) {
                successes += 1;
            }
        }
        (applicable > 0).then(|| (successes as f64 / applicable as f64, applicable))
    }

    /// Mines all `(g, f)` pairs with at least `min_support` applicable
    /// episodes, sorted by descending support then by labels.
    pub fn mine(&self, min_support: usize) -> Vec<MinedRule> {
        let mut context_features: BTreeSet<&String> = BTreeSet::new();
        let mut doc_features: BTreeSet<&String> = BTreeSet::new();
        for ep in &self.episodes {
            context_features.extend(ep.context.iter());
            for o in &ep.offers {
                doc_features.extend(o.features.iter());
            }
        }
        let mut out = Vec::new();
        for g in &context_features {
            for f in &doc_features {
                if let Some((sigma, support)) = self.sigma(g, f) {
                    if support >= min_support {
                        out.push(MinedRule {
                            context_feature: (*g).clone(),
                            doc_feature: (*f).clone(),
                            sigma,
                            support,
                        });
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then_with(|| a.context_feature.cmp(&b.context_feature))
                .then_with(|| a.doc_feature.cmp(&b.doc_feature))
        });
        out
    }

    /// Empirical feature distribution for a context feature — the data
    /// behind the paper's **Figure 1** ("graphical display of the
    /// distribution of video features on a workday morning"): for every
    /// document feature `f`, the fraction of applicable `g`-episodes where
    /// an `f`-document was chosen.
    pub fn feature_distribution(&self, g: &str) -> BTreeMap<String, f64> {
        let mut doc_features: BTreeSet<String> = BTreeSet::new();
        for ep in &self.episodes {
            for o in &ep.offers {
                doc_features.extend(o.features.iter().cloned());
            }
        }
        doc_features
            .into_iter()
            .filter_map(|f| self.sigma(g, &f).map(|(s, _)| (f, s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 1 history: on workday mornings the user
    /// watched the traffic bulletin in 80% of the cases and the weather
    /// bulletin in 60% (out of 10 mornings: 8 traffic, 6 weather).
    fn figure1_log() -> HistoryLog {
        let mut log = HistoryLog::new();
        for i in 0..10 {
            log.record(Episode::new(
                ["WorkdayMorning"],
                vec![
                    Offer::new(["TrafficBulletin"], i < 8),
                    Offer::new(["WeatherBulletin"], i < 6),
                    Offer::new(["Sitcom"], false),
                ],
            ));
        }
        log
    }

    #[test]
    fn figure1_distribution() {
        let log = figure1_log();
        let (traffic, n) = log.sigma("WorkdayMorning", "TrafficBulletin").unwrap();
        assert_eq!(n, 10);
        assert!((traffic - 0.8).abs() < 1e-12);
        let (weather, _) = log.sigma("WorkdayMorning", "WeatherBulletin").unwrap();
        assert!((weather - 0.6).abs() < 1e-12);
        // P(neither is wanted) = (1−0.8)(1−0.6) = 0.08 — the paper's number.
        let p_neither = (1.0 - traffic) * (1.0 - weather);
        assert!((p_neither - 0.08).abs() < 1e-12);
        let dist = log.feature_distribution("WorkdayMorning");
        assert_eq!(dist.len(), 3);
        assert_eq!(dist["Sitcom"], 0.0);
    }

    #[test]
    fn applicability_requires_offer_with_feature() {
        // "was able to choose": episodes without an f-document don't count.
        let mut log = HistoryLog::new();
        log.record(Episode::new(["Morning"], vec![Offer::new(["News"], true)]));
        log.record(Episode::new(
            ["Morning"],
            vec![Offer::new(["Sports"], true)], // no News on offer
        ));
        let (sigma, support) = log.sigma("Morning", "News").unwrap();
        assert_eq!(support, 1);
        assert!((sigma - 1.0).abs() < 1e-12);
        assert!(log.sigma("Evening", "News").is_none());
        assert!(log.sigma("Morning", "Opera").is_none());
    }

    #[test]
    fn group_choices_in_one_episode() {
        // Choosing both bulletins in one morning is one episode with two
        // chosen offers — σ counts each feature once.
        let mut log = HistoryLog::new();
        log.record(Episode::new(
            ["Morning"],
            vec![Offer::new(["Traffic"], true), Offer::new(["Weather"], true)],
        ));
        assert_eq!(log.sigma("Morning", "Traffic").unwrap().0, 1.0);
        assert_eq!(log.sigma("Morning", "Weather").unwrap().0, 1.0);
    }

    #[test]
    fn mining_thresholds_and_order() {
        let log = figure1_log();
        let mined = log.mine(1);
        assert_eq!(mined.len(), 3);
        assert!(mined.iter().all(|m| m.support == 10));
        let none = log.mine(11);
        assert!(none.is_empty());
        let traffic = mined
            .iter()
            .find(|m| m.doc_feature == "TrafficBulletin")
            .unwrap();
        assert!((traffic.sigma - 0.8).abs() < 1e-12);
    }
}
