//! The Borgida–Brachman mapping (the paper's ref \[4\]): DL concepts and roles
//! as database tables, concept *expressions* as relational plans.
//!
//! Exactly as in the paper's Section 5:
//!
//! > *"we view each concept as a table, which uses the concept name as the
//! > table name and has an ID attribute and an event expression attribute.
//! > Similarly, we view each role as a table … containing three attributes;
//! > SOURCE, DESTINATION, and an event expression."*
//!
//! [`install_kb`] materialises a [`Kb`] into a [`capra_reldb::Catalog`] in
//! that layout; [`Compiler`] turns a [`Concept`] into a [`Plan`] producing a
//! one-column relation of member ids whose row lineage is the membership
//! event — the paper's per-concept-expression *view*. Conjunction maps to a
//! join (lineage ∧), disjunction to union + duplicate elimination
//! (lineage ∨), existential restriction to a role join; closed-world
//! negation and value restriction have no pure relational-algebra form with
//! our operator set, so the compiler materialises the inner view and emits
//! its complement as an inline `VALUES` relation (semantically identical,
//! documented behaviour).

use std::sync::Arc;

use capra_dl::{Concept, IndividualId};
use capra_events::EventExpr;
use capra_reldb::{Catalog, DataType, Datum, Executor, Plan, Relation, Row, Schema};

use crate::{Kb, Result};

/// Name of the table of all individuals (the ⊤ view).
pub const INDIVIDUALS_TABLE: &str = "individuals";

/// Table name for an atomic concept (indexed to avoid sanitisation
/// collisions, suffixed with the sanitised name for debuggability).
pub fn concept_table_name(kb: &Kb, name: capra_dl::ConceptName) -> String {
    format!(
        "concept_{}_{}",
        name.index(),
        sanitize(kb.voc.concept_name(name))
    )
}

/// Table name for a role.
pub fn role_table_name(kb: &Kb, name: capra_dl::RoleName) -> String {
    format!("role_{}_{}", name.index(), sanitize(kb.voc.role_name(name)))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Datum encoding of an individual.
pub fn individual_datum(ind: IndividualId) -> Datum {
    Datum::Id(ind.index() as u64)
}

/// Decodes an individual id from a datum produced by [`individual_datum`].
pub fn datum_individual(kb: &Kb, d: &Datum) -> Option<IndividualId> {
    let raw = d.as_id()?;
    kb.voc
        .individual_ids()
        .nth(raw as usize)
        .filter(|i| i.index() as u64 == raw)
}

/// Materialises the KB into a fresh catalog in the paper's table layout.
pub fn install_kb(kb: &Kb) -> Result<Catalog> {
    let catalog = Catalog::new();
    let id_schema = Schema::of(&[("id", DataType::Id)]);
    let individuals = catalog.create_table(INDIVIDUALS_TABLE, id_schema.clone())?;
    individuals.insert(
        kb.abox
            .domain()
            .iter()
            .map(|&i| Row::certain(vec![individual_datum(i)]))
            .collect(),
    )?;
    for concept in kb.abox.concepts() {
        let table = catalog.create_table(&concept_table_name(kb, concept), id_schema.clone())?;
        table.insert(
            kb.abox
                .concept_rows(concept)
                .map(|(ind, event)| Row::uncertain(vec![individual_datum(ind)], event.clone()))
                .collect(),
        )?;
    }
    let edge_schema = Schema::of(&[("source", DataType::Id), ("destination", DataType::Id)]);
    for role in kb.abox.roles() {
        let table = catalog.create_table(&role_table_name(kb, role), edge_schema.clone())?;
        table.insert(
            kb.abox
                .role_edges(role)
                .iter()
                .map(|e| {
                    Row::uncertain(
                        vec![individual_datum(e.src), individual_datum(e.dst)],
                        e.event.clone(),
                    )
                })
                .collect(),
        )?;
    }
    Ok(catalog)
}

/// Compiles concept expressions to plans over an installed catalog.
pub struct Compiler<'a> {
    kb: &'a Kb,
    catalog: &'a Catalog,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler over a catalog produced by [`install_kb`].
    pub fn new(kb: &'a Kb, catalog: &'a Catalog) -> Self {
        Self { kb, catalog }
    }

    fn id_schema() -> Arc<Schema> {
        Schema::of(&[("id", DataType::Id)])
    }

    /// Compiles `concept` (after TBox unfolding) into a plan yielding one
    /// `id` column with membership lineage per row.
    pub fn concept_plan(&self, concept: &Concept) -> Result<Plan> {
        let unfolded = self.kb.tbox.unfold(concept);
        self.plan_rec(&unfolded)
    }

    /// Runs a compiled plan and returns `(individual, membership event)`
    /// rows (the materialised view).
    pub fn materialize(&self, concept: &Concept) -> Result<Vec<(IndividualId, EventExpr)>> {
        let plan = self.concept_plan(concept)?;
        let relation = Executor::new(self.catalog).run(&plan)?;
        Ok(relation_members(self.kb, &relation))
    }

    fn plan_rec(&self, concept: &Concept) -> Result<Plan> {
        Ok(match concept {
            Concept::Top => Plan::scan(INDIVIDUALS_TABLE),
            Concept::Bottom => Plan::Values {
                schema: Self::id_schema(),
                rows: vec![],
            },
            Concept::Atomic(name) => {
                let table = concept_table_name(self.kb, *name);
                if self.catalog.table(&table).is_ok() {
                    Plan::scan(table)
                } else {
                    // Never-asserted concept: the empty view.
                    Plan::Values {
                        schema: Self::id_schema(),
                        rows: vec![],
                    }
                }
            }
            Concept::OneOf(inds) => Plan::Values {
                schema: Self::id_schema(),
                rows: inds
                    .iter()
                    .filter(|i| self.kb.abox.domain().contains(i))
                    .map(|&i| Row::certain(vec![individual_datum(i)]))
                    .collect(),
            },
            Concept::And(kids) => {
                let mut iter = kids.iter();
                let first = iter.next().expect("And has ≥ 2 children");
                let mut plan = self.plan_rec(first)?;
                for kid in iter {
                    plan = Plan::Join {
                        left: Box::new(plan),
                        right: Box::new(self.plan_rec(kid)?),
                        on: vec![(0, 0)],
                        filter: None,
                    }
                    .project(vec![(capra_reldb::ScalarExpr::col(0), "id".into())]);
                }
                plan
            }
            Concept::Or(kids) => {
                let mut iter = kids.iter();
                let first = iter.next().expect("Or has ≥ 2 children");
                let mut plan = self.normalized(first)?;
                for kid in iter {
                    plan = Plan::Union {
                        left: Box::new(plan),
                        right: Box::new(self.normalized(kid)?),
                    };
                }
                plan.distinct()
            }
            Concept::Exists(role, filler) => {
                let table = role_table_name(self.kb, *role);
                let role_plan = if self.catalog.table(&table).is_ok() {
                    Plan::scan(table)
                } else {
                    Plan::Values {
                        schema: Schema::of(&[
                            ("source", DataType::Id),
                            ("destination", DataType::Id),
                        ]),
                        rows: vec![],
                    }
                };
                Plan::Join {
                    left: Box::new(role_plan),
                    right: Box::new(self.plan_rec(filler)?),
                    on: vec![(1, 0)], // destination = member id
                    filter: None,
                }
                .project(vec![(capra_reldb::ScalarExpr::col(0), "id".into())])
                .distinct()
            }
            // Closed-world complement: materialise the inner view and emit
            // the per-individual complements inline.
            Concept::Not(inner) => {
                let members: std::collections::BTreeMap<IndividualId, EventExpr> =
                    self.materialize(inner)?.into_iter().collect();
                Plan::Values {
                    schema: Self::id_schema(),
                    rows: self
                        .kb
                        .abox
                        .domain()
                        .iter()
                        .filter_map(|&i| {
                            let e = members.get(&i).cloned().unwrap_or(EventExpr::False);
                            let complement = EventExpr::not(e);
                            (!complement.is_false())
                                .then(|| Row::uncertain(vec![individual_datum(i)], complement))
                        })
                        .collect(),
                }
            }
            // ∀R.C ≡ ¬∃R.¬C under the closed world.
            Concept::Forall(role, filler) => self.plan_rec(&Concept::not(Concept::exists(
                *role,
                Concept::not(filler.as_ref().clone()),
            )))?,
        })
    }

    /// Wraps a sub-plan so its single column is named plainly `id` — union
    /// legs come from scans with different qualifications.
    fn normalized(&self, concept: &Concept) -> Result<Plan> {
        Ok(self
            .plan_rec(concept)?
            .project(vec![(capra_reldb::ScalarExpr::col(0), "id".into())]))
    }
}

/// Decodes a one-id-column relation into `(individual, lineage)` pairs.
pub fn relation_members(kb: &Kb, relation: &Relation) -> Vec<(IndividualId, EventExpr)> {
    relation
        .rows()
        .iter()
        .filter_map(|row| {
            let ind = datum_individual(kb, &row.values[0])?;
            Some((ind, row.lineage.clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_events::Evaluator;
    use std::collections::BTreeMap;

    fn kb_fixture() -> (Kb, IndividualId, IndividualId) {
        let mut kb = Kb::new();
        let oprah = kb.individual("Oprah");
        let bbc = kb.individual("BBC");
        let hi = kb.individual("HumanInterest");
        kb.assert_concept(oprah, "TvProgram");
        kb.assert_concept(bbc, "TvProgram");
        kb.assert_concept(bbc, "NewsShow");
        kb.assert_role_prob(oprah, "hasGenre", hi, 0.85).unwrap();
        (kb, oprah, bbc)
    }

    /// The compiled views must agree with the in-memory reasoner, with the
    /// same lineage probabilities.
    #[test]
    fn compiled_views_match_reasoner() {
        let (mut kb, ..) = kb_fixture();
        let queries = [
            "TvProgram",
            "TvProgram AND NewsShow",
            "TvProgram AND NOT NewsShow",
            "EXISTS hasGenre.{HumanInterest}",
            "TvProgram OR NewsShow",
            "FORALL hasGenre.{HumanInterest}",
            "TOP",
            "BOTTOM",
            "{Oprah, BBC}",
        ];
        let parsed: Vec<_> = queries.iter().map(|q| kb.parse(q).unwrap()).collect();
        let catalog = install_kb(&kb).unwrap();
        let compiler = Compiler::new(&kb, &catalog);
        let reasoner = kb.reasoner();
        let mut ev = Evaluator::new(&kb.universe);
        for (q, concept) in queries.iter().zip(&parsed) {
            let via_db: BTreeMap<_, _> =
                compiler.materialize(concept).unwrap().into_iter().collect();
            let via_reasoner = reasoner.instances(concept);
            assert_eq!(
                via_db.keys().collect::<Vec<_>>(),
                via_reasoner.keys().collect::<Vec<_>>(),
                "member sets differ for `{q}`"
            );
            for (ind, e_db) in &via_db {
                let p_db = ev.prob(e_db);
                let p_mem = ev.prob(&via_reasoner[ind]);
                assert!(
                    (p_db - p_mem).abs() < 1e-12,
                    "probability mismatch for `{q}` on {ind:?}: {p_db} vs {p_mem}"
                );
            }
        }
    }

    #[test]
    fn installed_tables_follow_paper_layout() {
        let (kb, ..) = kb_fixture();
        let catalog = install_kb(&kb).unwrap();
        let names = catalog.table_names();
        assert!(names.iter().any(|n| n == INDIVIDUALS_TABLE));
        assert!(names.iter().any(|n| n.starts_with("concept_")));
        assert!(names.iter().any(|n| n.starts_with("role_")));
        // Role tables have the paper's SOURCE/DESTINATION columns.
        let role = names.iter().find(|n| n.starts_with("role_")).unwrap();
        let t = catalog.table(role).unwrap();
        assert_eq!(t.schema().columns()[0].name, "source");
        assert_eq!(t.schema().columns()[1].name, "destination");
    }

    #[test]
    fn unknown_names_compile_to_empty_views() {
        let (mut kb, ..) = kb_fixture();
        let c = kb.parse("NeverAsserted AND EXISTS neverUsed.TOP").unwrap();
        let catalog = install_kb(&kb).unwrap();
        let compiler = Compiler::new(&kb, &catalog);
        assert!(compiler.materialize(&c).unwrap().is_empty());
    }
}
