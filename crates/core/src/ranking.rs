//! Integration of preference scores with ordinary SQL queries — the paper's
//! introduction scenario:
//!
//! ```sql
//! SELECT name, preferencescore
//! FROM Programs
//! WHERE preferencescore > 0.5
//! ORDER BY preferencescore DESC
//! ```
//!
//! *"where the underlying context-aware database would dynamically assign a
//! preference score to each program."* [`install_preference_scores`]
//! computes the scores with any engine and registers them as a table, and
//! [`ranked_query`] runs the paper's query shape end-to-end. The final step
//! matches Section 5: *"adapt the query results of the user by ordering the
//! tuples in the result, based on the probability from the big preference
//! view … the probability of the query-dependent part is either 1, if the
//! tuple was contained in the user query, or 0 if it was not."*

use capra_dl::IndividualId;
use capra_reldb::{Catalog, DataType, Datum, Relation, Row, Schema};

use crate::compile::individual_datum;
use crate::engines::{DocScore, ScoringEngine};
use crate::topk::rank_top_k;
use crate::{Result, ScoringEnv};

/// Name of the column carrying the context-aware score, as in the paper.
pub const SCORE_COLUMN: &str = "preferencescore";

/// Renders a finite `f64` as a SQL literal that the lexer is guaranteed to
/// accept and that parses back to the exact same value.
///
/// A plain decimal lexer rejects scientific notation (`1e-7`). Rust's `f64`
/// `Display` is positional today (it is `Debug`/`{:e}` that use exponent
/// form), but that is a de-facto behaviour, not a documented guarantee —
/// this helper pins the contract regardless. The fallback works because
/// every finite `f64` is a dyadic rational: its exact decimal expansion is
/// finite — at most 1074 fractional digits (subnormals) — and re-parsing an
/// exact expansion recovers the exact value.
fn sql_float_literal(value: f64) -> String {
    let shortest = format!("{value}");
    if !shortest.contains(['e', 'E']) {
        return shortest;
    }
    let mut exact = format!("{value:.1074}");
    while exact.ends_with('0') {
        exact.pop();
    }
    if exact.ends_with('.') {
        exact.push('0');
    }
    exact
}

/// Registers (or replaces) table `<table>` (`doc ID, preferencescore
/// FLOAT`) in the catalog with the given scores. Returns the number of rows.
fn install_scores(scores: Vec<DocScore>, catalog: &Catalog, table: &str) -> Result<usize> {
    let handle = match catalog.table(table) {
        Ok(t) => {
            t.clear();
            t
        }
        Err(_) => catalog.create_table(
            table,
            Schema::of(&[("doc", DataType::Id), (SCORE_COLUMN, DataType::Float)]),
        )?,
    };
    let n = scores.len();
    handle.insert(
        scores
            .into_iter()
            .map(|s| Row::certain(vec![individual_datum(s.doc), Datum::Float(s.score)]))
            .collect(),
    )?;
    Ok(n)
}

/// Scores `docs` with `engine` and registers table
/// `<table>` (`doc ID, preferencescore FLOAT`) in the catalog, replacing any
/// previous contents. Returns the number of scored documents.
pub fn install_preference_scores(
    env: &ScoringEnv<'_>,
    engine: &dyn ScoringEngine,
    docs: &[IndividualId],
    catalog: &Catalog,
    table: &str,
) -> Result<usize> {
    install_scores(engine.score_all(env, docs)?, catalog, table)
}

/// Runs the paper's ranked query against a documents table.
///
/// `doc_table` must have an `ID`-typed column `id_column` whose values were
/// produced by [`individual_datum`] (i.e. the DL individual of each row),
/// plus whatever display columns the caller selects. The function scores the
/// documents, joins, filters by `threshold`, and orders descending — the
/// full pipeline of the introduction's TVTouch query.
#[allow(clippy::too_many_arguments)] // mirrors the SQL clause structure
pub fn ranked_query(
    env: &ScoringEnv<'_>,
    engine: &dyn ScoringEngine,
    docs: &[IndividualId],
    catalog: &Catalog,
    doc_table: &str,
    id_column: &str,
    display_columns: &[&str],
    threshold: f64,
) -> Result<Relation> {
    install_preference_scores(env, engine, docs, catalog, "preference_scores")?;
    run_ranked_sql(
        env,
        catalog,
        doc_table,
        id_column,
        display_columns,
        threshold,
        None,
    )
}

/// The `LIMIT k` variant of [`ranked_query`]: only the exact top `k`
/// documents are scored at all — [`rank_top_k`] prunes candidates that
/// cannot reach the top-k before any SQL runs — and the emitted query
/// carries a matching `LIMIT` clause. Produces the same rows as running
/// [`ranked_query`] and truncating to `k`, except that rows *tied* on
/// score at the `k` boundary are chosen by document id (the deterministic
/// tie-break of [`crate::rank`]), whereas the plain query's stable sort
/// leaves ties in table order.
#[allow(clippy::too_many_arguments)] // mirrors the SQL clause structure
pub fn ranked_query_top_k(
    env: &ScoringEnv<'_>,
    engine: &dyn ScoringEngine,
    docs: &[IndividualId],
    catalog: &Catalog,
    doc_table: &str,
    id_column: &str,
    display_columns: &[&str],
    threshold: f64,
    k: usize,
) -> Result<Relation> {
    let top = rank_top_k(env, engine, docs, k)?;
    install_scores(top, catalog, "preference_scores")?;
    run_ranked_sql(
        env,
        catalog,
        doc_table,
        id_column,
        display_columns,
        threshold,
        Some(k),
    )
}

fn run_ranked_sql(
    env: &ScoringEnv<'_>,
    catalog: &Catalog,
    doc_table: &str,
    id_column: &str,
    display_columns: &[&str],
    threshold: f64,
    limit: Option<usize>,
) -> Result<Relation> {
    let select_list = display_columns
        .iter()
        .map(|c| format!("d.{c}"))
        .chain([format!("s.{SCORE_COLUMN}")])
        .collect::<Vec<_>>()
        .join(", ");
    let threshold = sql_float_literal(threshold);
    let limit = limit.map(|k| format!(" LIMIT {k}")).unwrap_or_default();
    let sql = format!(
        "SELECT {select_list} FROM {doc_table} d \
         JOIN preference_scores s ON d.{id_column} = s.doc \
         WHERE s.{SCORE_COLUMN} > {threshold} \
         ORDER BY {SCORE_COLUMN} DESC{limit}"
    );
    Ok(capra_reldb::sql::execute(
        catalog,
        Some(&env.kb.universe),
        &sql,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FactorizedEngine, Kb, PreferenceRule, RuleRepository, Score};
    use capra_reldb::certain_rows;

    fn fixture() -> (Kb, RuleRepository, IndividualId, Vec<IndividualId>, Catalog) {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        kb.assert_concept(user, "Weekend");
        kb.assert_concept(user, "Breakfast");
        let oprah = kb.individual("Oprah");
        let bbc = kb.individual("BBC news");
        let ch5 = kb.individual("Channel 5 news");
        let mpfc = kb.individual("MPFC");
        let hi = kb.individual("HUMAN-INTEREST");
        let wb = kb.individual("WeatherBulletin");
        for d in [oprah, bbc, ch5, mpfc] {
            kb.assert_concept(d, "TvProgram");
        }
        kb.assert_role_prob(oprah, "hasGenre", hi, 0.85).unwrap();
        kb.assert_role(bbc, "hasSubject", wb);
        kb.assert_role_prob(ch5, "hasGenre", hi, 0.95).unwrap();
        kb.assert_role_prob(ch5, "hasSubject", wb, 0.85).unwrap();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R1",
                kb.parse("Weekend").unwrap(),
                kb.parse("TvProgram AND EXISTS hasGenre.{HUMAN-INTEREST}")
                    .unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "R2",
                kb.parse("Breakfast").unwrap(),
                kb.parse("TvProgram AND EXISTS hasSubject.{WeatherBulletin}")
                    .unwrap(),
                Score::new(0.9).unwrap(),
            ))
            .unwrap();

        let catalog = Catalog::new();
        let programs = catalog
            .create_table(
                "programs",
                Schema::of(&[("id", DataType::Id), ("name", DataType::Str)]),
            )
            .unwrap();
        let docs = vec![oprah, bbc, ch5, mpfc];
        programs
            .insert(certain_rows(
                docs.iter()
                    .map(|&d| vec![individual_datum(d), Datum::str(kb.voc.individual_name(d))])
                    .collect(),
            ))
            .unwrap();
        (kb, rules, user, docs, catalog)
    }

    #[test]
    fn paper_intro_query_end_to_end() {
        let (kb, rules, user, docs, catalog) = fixture();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let out = ranked_query(
            &env,
            &FactorizedEngine::new(),
            &docs,
            &catalog,
            "programs",
            "id",
            &["name"],
            0.5,
        )
        .unwrap();
        // Only Channel 5 news clears 0.5 (score 0.6006).
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].values[0], Datum::str("Channel 5 news"));
        let score = out.rows()[0].values[1].as_f64().unwrap();
        assert!((score - 0.6006).abs() < 1e-12);
    }

    #[test]
    fn threshold_zero_returns_full_ranking() {
        let (kb, rules, user, docs, catalog) = fixture();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let out = ranked_query(
            &env,
            &FactorizedEngine::new(),
            &docs,
            &catalog,
            "programs",
            "id",
            &["name"],
            0.0,
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        let names: Vec<_> = out
            .rows()
            .iter()
            .map(|r| r.values[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["Channel 5 news", "BBC news", "Oprah", "MPFC"],
            "paper's ranking: 0.6006 > 0.18 > 0.071 > 0.02"
        );
    }

    #[test]
    fn tiny_threshold_survives_sql_formatting() {
        // The SQL lexer rejects scientific notation, so the literal helper
        // must keep the query valid (and exact) for any finite threshold,
        // however extreme.
        let (kb, rules, user, docs, catalog) = fixture();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        for threshold in [1e-7, 5e-324, 0.25, 1e16] {
            let out = ranked_query(
                &env,
                &FactorizedEngine::new(),
                &docs,
                &catalog,
                "programs",
                "id",
                &["name"],
                threshold,
            )
            .unwrap();
            let expected = if threshold < 0.02 {
                4 // every program scores above a tiny threshold
            } else if threshold == 0.25 {
                1 // only Channel 5 news (0.6006)
            } else {
                0 // nothing clears 1e16
            };
            assert_eq!(out.len(), expected, "threshold {threshold}");
        }
    }

    #[test]
    fn sql_float_literal_round_trips_exactly() {
        for value in [0.0, 0.5, 1e-7, 2.5e-9, 5e-324, 1e300, 123456.789, 0.6006] {
            let lit = sql_float_literal(value);
            assert!(
                !lit.contains(['e', 'E']),
                "no scientific notation in `{lit}`"
            );
            assert_eq!(
                lit.parse::<f64>().unwrap().to_bits(),
                value.to_bits(),
                "`{lit}` must parse back to {value:e} exactly"
            );
        }
    }

    #[test]
    fn top_k_query_limits_and_matches_full_flow() {
        let (kb, rules, user, docs, catalog) = fixture();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let engine = FactorizedEngine::new();
        let full = ranked_query(
            &env,
            &engine,
            &docs,
            &catalog,
            "programs",
            "id",
            &["name"],
            0.0,
        )
        .unwrap();
        for k in [1, 2, 4] {
            let top = ranked_query_top_k(
                &env,
                &engine,
                &docs,
                &catalog,
                "programs",
                "id",
                &["name"],
                0.0,
                k,
            )
            .unwrap();
            assert_eq!(top.len(), k.min(full.len()));
            for (a, b) in top.rows().iter().zip(full.rows()) {
                assert_eq!(a.values, b.values);
            }
        }
        // Threshold still applies on top of the LIMIT.
        let filtered = ranked_query_top_k(
            &env,
            &engine,
            &docs,
            &catalog,
            "programs",
            "id",
            &["name"],
            0.5,
            3,
        )
        .unwrap();
        assert_eq!(filtered.len(), 1, "only Channel 5 news clears 0.5");
    }

    #[test]
    fn reinstalling_scores_replaces_rows() {
        let (kb, rules, user, docs, catalog) = fixture();
        let env = ScoringEnv {
            kb: &kb,
            rules: &rules,
            user,
        };
        let engine = FactorizedEngine::new();
        let n =
            install_preference_scores(&env, &engine, &docs, &catalog, "preference_scores").unwrap();
        assert_eq!(n, 4);
        let again =
            install_preference_scores(&env, &engine, &docs[..2], &catalog, "preference_scores")
                .unwrap();
        assert_eq!(again, 2);
        assert_eq!(catalog.table("preference_scores").unwrap().len(), 2);
    }
}
