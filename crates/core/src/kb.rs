use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use capra_dl::{parse_concept, ABox, Concept, IndividualId, Reasoner, TBox, Vocabulary};
use capra_events::{EventExpr, Universe, VarId};

use crate::Result;

/// Source of process-unique knowledge-base identities (see [`Kb::id`]).
static NEXT_KB_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_kb_id() -> u64 {
    NEXT_KB_ID.fetch_add(1, Ordering::Relaxed)
}

/// The knowledge base a scoring run operates on: vocabulary, event universe,
/// assertions, and terminology, bundled for convenience.
///
/// In the paper's architecture these are the concept/role tables (with event
/// expressions) plus the mapping machinery of its refs \[4\] and \[16\]. The
/// helpers here cover the common patterns:
///
/// * certain facts — `assert_concept` / `assert_role` with [`EventExpr::True`];
/// * independently uncertain facts — [`Kb::assert_concept_prob`] /
///   [`Kb::assert_role_prob`] mint a fresh boolean variable per fact (e.g.
///   "the EPG tags Oprah human-interest with probability 0.85");
/// * correlated facts — create a choice variable on
///   [`Kb::universe`] directly and pass its atoms as events (e.g. *the user
///   is in exactly one room*).
#[derive(Debug)]
pub struct Kb {
    /// Interned names.
    pub voc: Vocabulary,
    /// Random variables behind uncertain assertions.
    pub universe: Universe,
    /// Concept and role assertions.
    pub abox: ABox,
    /// Concept definitions.
    pub tbox: TBox,
    /// Process-unique identity (fresh per value, including clones).
    id: u64,
    /// Next suffix to try per fresh-variable base name, so minting stays
    /// amortised O(1) under repeated assertions of the same fact shape.
    fresh_suffix: HashMap<String, u32>,
}

impl Default for Kb {
    fn default() -> Self {
        Self {
            voc: Vocabulary::default(),
            universe: Universe::default(),
            abox: ABox::default(),
            tbox: TBox::default(),
            id: fresh_kb_id(),
            fresh_suffix: HashMap::new(),
        }
    }
}

impl Clone for Kb {
    /// Clones the knowledge base under a **fresh identity** (see [`Kb::id`]):
    /// the clone can be mutated independently, so caches keyed by the
    /// original's `(id, epoch)` must not accept it.
    fn clone(&self) -> Self {
        Self {
            voc: self.voc.clone(),
            universe: self.universe.clone(),
            abox: self.abox.clone(),
            tbox: self.tbox.clone(),
            id: fresh_kb_id(),
            fresh_suffix: self.fresh_suffix.clone(),
        }
    }
}

impl Kb {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones the knowledge base **preserving its identity** — the escape
    /// hatch from the fresh-id rule of [`Clone`], for epoch-publish writers
    /// only (`serve::RankingService`).
    ///
    /// Sound only under the publish discipline: the original is the
    /// currently published snapshot and is *never mutated again* once its
    /// successor (this clone, mutated then published) replaces it. Readers
    /// then observe one linear `(id, epoch)` history — exactly as if a
    /// single owned KB had been mutated in place — so every cache keyed by
    /// `(id, epoch)` or `(id, binding_epoch)` stays valid across the swap.
    /// Using this outside a serialized clone → mutate → publish chain forks
    /// the epoch history of one id and corrupts those caches.
    pub(crate) fn clone_for_publish(&self) -> Self {
        Self {
            voc: self.voc.clone(),
            universe: self.universe.clone(),
            abox: self.abox.clone(),
            tbox: self.tbox.clone(),
            id: self.id,
            fresh_suffix: self.fresh_suffix.clone(),
        }
    }

    /// Process-unique identity of this KB value. Clones receive a fresh id,
    /// so `(id, epoch)` pairs identify one immutable snapshot of one KB —
    /// the key scheme of [`crate::BindingCache`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Combined mutation counter over all layers (universe + ABox + TBox).
    /// Each layer's counter is monotonic, so the sum is too.
    pub fn epoch(&self) -> u64 {
        self.universe.epoch() + self.abox.epoch() + self.tbox.epoch()
    }

    /// The part of [`Kb::epoch`] that can invalidate rule bindings: ABox and
    /// TBox mutations. Universe declarations are append-only (existing
    /// variables and probabilities never change), so adding one cannot
    /// change what an already-derived binding means — staleness is a single
    /// integer compare against this counter.
    pub fn binding_epoch(&self) -> u64 {
        self.abox.epoch() + self.tbox.epoch()
    }

    /// Interns an individual and registers it in the ABox domain.
    pub fn individual(&mut self, name: &str) -> IndividualId {
        let ind = self.voc.individual(name);
        self.abox.register_individual(ind);
        ind
    }

    /// Parses a concept expression against this KB's vocabulary.
    pub fn parse(&mut self, text: &str) -> Result<Concept> {
        Ok(parse_concept(text, &mut self.voc)?)
    }

    /// Asserts `ind : concept` with certainty.
    pub fn assert_concept(&mut self, ind: IndividualId, concept: &str) {
        let c = self.voc.concept(concept);
        self.abox.assert_concept(ind, c, EventExpr::True);
    }

    /// Asserts `ind : concept` under a fresh independent event of
    /// probability `p`. Returns the event variable for reuse.
    pub fn assert_concept_prob(
        &mut self,
        ind: IndividualId,
        concept: &str,
        p: f64,
    ) -> Result<VarId> {
        let c = self.voc.concept(concept);
        let var = self.fresh_var(
            &format!("c:{}:{}", concept, self.voc.individual_name(ind)),
            p,
        )?;
        let event = self.universe.bool_event(var)?;
        self.abox.assert_concept(ind, c, event);
        Ok(var)
    }

    /// Asserts `(src, dst) : role` with certainty.
    pub fn assert_role(&mut self, src: IndividualId, role: &str, dst: IndividualId) {
        let r = self.voc.role(role);
        self.abox.assert_role(src, r, dst, EventExpr::True);
    }

    /// Asserts `(src, dst) : role` under a fresh independent event of
    /// probability `p`. Returns the event variable for reuse.
    pub fn assert_role_prob(
        &mut self,
        src: IndividualId,
        role: &str,
        dst: IndividualId,
        p: f64,
    ) -> Result<VarId> {
        let r = self.voc.role(role);
        let var = self.fresh_var(
            &format!(
                "r:{}:{}:{}",
                role,
                self.voc.individual_name(src),
                self.voc.individual_name(dst)
            ),
            p,
        )?;
        let event = self.universe.bool_event(var)?;
        self.abox.assert_role(src, r, dst, event);
        Ok(var)
    }

    /// Asserts `ind : concept` under an explicit event expression (for
    /// correlated uncertainty such as mutually exclusive alternatives).
    pub fn assert_concept_event(&mut self, ind: IndividualId, concept: &str, event: EventExpr) {
        let c = self.voc.concept(concept);
        self.abox.assert_concept(ind, c, event);
    }

    /// Asserts `(src, dst) : role` under an explicit event expression.
    pub fn assert_role_event(
        &mut self,
        src: IndividualId,
        role: &str,
        dst: IndividualId,
        event: EventExpr,
    ) {
        let r = self.voc.role(role);
        self.abox.assert_role(src, r, dst, event);
    }

    /// A reasoner over this KB (TBox-aware).
    pub fn reasoner(&self) -> Reasoner<'_> {
        Reasoner::with_tbox(&self.abox, &self.tbox)
    }

    fn fresh_var(&mut self, base: &str, p: f64) -> Result<VarId> {
        // Assertion events need unique variable names; suffix with a counter
        // when the natural name is taken (e.g. repeated assertions). The
        // next suffix to try is remembered per base, so a run of repeated
        // assertions probes once each instead of rescanning from `~1`; the
        // loop only advances past names the caller declared manually.
        if self.universe.var(base).is_none() {
            return Ok(self.universe.add_bool(base, p)?);
        }
        let next = self.fresh_suffix.entry(base.to_string()).or_insert(1);
        let mut name = format!("{base}~{next}");
        while self.universe.var(&name).is_some() {
            *next += 1;
            name = format!("{base}~{next}");
        }
        *next += 1;
        Ok(self.universe.add_bool(&name, p)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capra_events::Evaluator;

    #[test]
    fn certain_and_probabilistic_assertions() {
        let mut kb = Kb::new();
        let oprah = kb.individual("Oprah");
        let hi = kb.individual("HumanInterest");
        kb.assert_concept(oprah, "TvProgram");
        kb.assert_role_prob(oprah, "hasGenre", hi, 0.85).unwrap();

        let query = kb
            .parse("TvProgram AND EXISTS hasGenre.{HumanInterest}")
            .unwrap();
        let membership = kb.reasoner().membership(oprah, &query);
        let mut ev = Evaluator::new(&kb.universe);
        assert!((ev.prob(&membership) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn fresh_var_names_never_collide() {
        let mut kb = Kb::new();
        let x = kb.individual("x");
        let v1 = kb.assert_concept_prob(x, "C", 0.5).unwrap();
        let v2 = kb.assert_concept_prob(x, "C", 0.5).unwrap();
        assert_ne!(v1, v2);
        // Membership is the disjunction of the two assertion events.
        let c = kb.parse("C").unwrap();
        let membership = kb.reasoner().membership(x, &c);
        let mut ev = Evaluator::new(&kb.universe);
        assert!((ev.prob(&membership) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fresh_var_minting_is_fast_and_skips_manual_names() {
        let mut kb = Kb::new();
        let x = kb.individual("x");
        // A manually declared variable squatting on a suffix the counter
        // will reach: the probe must step over it exactly once.
        kb.universe.add_bool("c:C:x~3", 0.5).unwrap();
        let mut vars = std::collections::BTreeSet::new();
        for _ in 0..500 {
            vars.insert(kb.assert_concept_prob(x, "C", 0.5).unwrap());
        }
        assert_eq!(vars.len(), 500, "all minted variables are distinct");
        assert!(kb.universe.var("c:C:x~4").is_some());
    }

    #[test]
    fn epochs_and_identity_track_mutations() {
        let mut kb = Kb::new();
        let e0 = kb.epoch();
        let b0 = kb.binding_epoch();
        let x = kb.individual("x");
        assert!(kb.epoch() > e0, "registering an individual mutates the KB");
        kb.assert_concept_prob(x, "C", 0.5).unwrap();
        assert!(kb.binding_epoch() > b0, "assertions bump the binding epoch");
        // A universe-only declaration bumps the overall epoch but not the
        // binding epoch (existing bindings cannot reference the new var).
        let (e1, b1) = (kb.epoch(), kb.binding_epoch());
        kb.universe.add_bool("sensor", 0.5).unwrap();
        assert!(kb.epoch() > e1);
        assert_eq!(kb.binding_epoch(), b1);
        // Clones carry the state but get a fresh identity.
        let clone = kb.clone();
        assert_eq!(clone.epoch(), kb.epoch());
        assert_ne!(clone.id(), kb.id());
        // The publish clone keeps the identity (writer-path escape hatch):
        // mutating it continues the same (id, epoch) history.
        let mut publish = kb.clone_for_publish();
        assert_eq!(publish.id(), kb.id());
        assert_eq!(publish.epoch(), kb.epoch());
        let y = publish.individual("y");
        publish.assert_concept(y, "C");
        assert!(publish.binding_epoch() > kb.binding_epoch());
    }

    #[test]
    fn explicit_events_support_correlation() {
        let mut kb = Kb::new();
        let user = kb.individual("peter");
        let kitchen = kb.individual("Kitchen");
        let lounge = kb.individual("Lounge");
        let room = kb.universe.add_choice("room", &[0.7, 0.3]).unwrap();
        let in_kitchen = kb.universe.atom(room, 0).unwrap();
        let in_lounge = kb.universe.atom(room, 1).unwrap();
        kb.assert_role_event(user, "inRoom", kitchen, in_kitchen);
        kb.assert_role_event(user, "inRoom", lounge, in_lounge);

        let both = kb
            .parse("EXISTS inRoom.{Kitchen} AND EXISTS inRoom.{Lounge}")
            .unwrap();
        let membership = kb.reasoner().membership(user, &both);
        let mut ev = Evaluator::new(&kb.universe);
        assert_eq!(ev.prob(&membership), 0.0, "rooms are mutually exclusive");
    }
}
