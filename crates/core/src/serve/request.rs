//! Typed requests: the wire-shaped surface of the serving layer.
//!
//! A front-end talking to a [`crate::serve::RankingService`] speaks in
//! three verbs — *assert a fact*, *rank for one user*, *rank for a group*
//! — with plain-data payloads ([`Fact`], [`Request`]) that an async shard
//! router or RPC layer can queue, route and replay without touching any
//! engine type.

use capra_dl::IndividualId;

use crate::engines::DocScore;
use crate::multiuser::GroupStrategy;

/// A typed fact to assert about an individual — the serving-layer face of
/// the [`crate::Kb`] `assert_*` helpers. Context switches ("Peter's
/// situation is now *Weekend*, probably") and document-feature updates use
/// the same shape; which individual the fact is about decides which.
#[derive(Debug, Clone, PartialEq)]
pub enum Fact {
    /// `subject : concept`, certain.
    Concept(String),
    /// `subject : concept` under a fresh independent event with this
    /// probability. Re-asserting the same concept supersedes the previous
    /// assertion's influence by disjunction over a fresh variable (see
    /// [`crate::Kb::assert_concept_prob`]).
    ConceptProb(String, f64),
    /// `(subject, object) : role`, certain.
    Role(String, IndividualId),
    /// `(subject, object) : role` under a fresh independent event with
    /// this probability.
    RoleProb(String, IndividualId, f64),
}

/// One queued service request, as consumed by
/// [`crate::serve::RankingService::submit`].
///
/// `Rank`/`RankGroup` requests that arrive back-to-back (no `Assert`
/// between them) see the same KB epoch and are coalesced into one scoring
/// dispatch; an `Assert` bumps the epoch and so acts as a batch barrier.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Rank `docs` for `user`, returning the top `k` (`k >= docs.len()`
    /// ranks everything).
    Rank {
        /// The requesting tenant.
        user: IndividualId,
        /// Candidate documents.
        docs: Vec<IndividualId>,
        /// How many ranked results to return.
        k: usize,
    },
    /// Rank `docs` for a group of users, combining per-user scores with
    /// `strategy` and returning the top `k` of the combined ranking.
    RankGroup {
        /// The group members.
        users: Vec<IndividualId>,
        /// Candidate documents.
        docs: Vec<IndividualId>,
        /// How many ranked results to return.
        k: usize,
        /// How per-user probabilities combine.
        strategy: GroupStrategy,
    },
    /// Assert `fact` about `subject` (a context switch or feature update).
    Assert {
        /// The individual the fact is about.
        subject: IndividualId,
        /// The fact itself.
        fact: Fact,
    },
}

/// The response to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked documents, best first, for a `Rank`/`RankGroup` request.
    Ranked(Vec<DocScore>),
    /// The fact of an `Assert` request was recorded.
    Asserted,
}

impl Response {
    /// The ranked documents, if this is a ranking response.
    pub fn ranked(&self) -> Option<&[DocScore]> {
        match self {
            Response::Ranked(scores) => Some(scores),
            Response::Asserted => None,
        }
    }
}
