//! Sharded, LRU-capped storage of per-tenant session state.
//!
//! Each tenant owns the two *user-specific* cache layers of a
//! [`crate::ScoringSession`] — the rule-binding cache and the per-document
//! score cache. The third layer (evaluation memos) carries no per-user
//! data and lives in the service's shared
//! [`crate::parallel::ScratchPool`] instead, so it is *not* duplicated per
//! tenant and survives tenant eviction.
//!
//! Tenants are routed to shards by hashing their [`IndividualId`]. With a
//! single mutable owner the shards buy nothing *today*; they exist so the
//! storage layout already matches the partitioning a future concurrent
//! front-end needs (one lock — or one actor — per shard), and so shard
//! routing is exercised and tested from day one.
//!
//! **LRU cap.** The map holds at most `capacity` live tenants across all
//! shards; touching a tenant refreshes its recency, and inserting past the
//! cap evicts the globally least-recently-used tenant. Eviction drops only
//! caches whose contents are pure functions of the current KB + rules, so
//! a returning tenant is re-derived bit-identically — the cap trades a
//! cold re-bind for bounded memory, exactly like the snapshot-tier
//! [`capra_events::EvictionPolicy`] one layer down.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use capra_dl::IndividualId;

use crate::session::{BindingCache, ScoreCache, SessionStats};

/// One tenant's session state: the user-specific cache layers plus the
/// recency stamp the LRU cap works from.
pub(crate) struct Tenant {
    /// Cached rule bindings (layer 1 of the session stack).
    pub bindings: BindingCache,
    /// Cached per-document scores (layer 3).
    pub scores: ScoreCache,
    /// Logical timestamp of the last access (global clock tick).
    last_used: u64,
}

impl Tenant {
    fn new(now: u64) -> Self {
        Self {
            bindings: BindingCache::new(),
            scores: ScoreCache::default(),
            last_used: now,
        }
    }

    /// This tenant's cache counters as a [`SessionStats`]. The footprint
    /// is zero by construction: tenants hold no evaluation memos of their
    /// own — those live in the service's shared pool and are reported
    /// once, service-wide.
    fn stats(&self) -> SessionStats {
        SessionStats {
            bindings: self.bindings.stats(),
            scores: self.scores.stats(),
            ..SessionStats::default()
        }
    }
}

/// The sharded tenant map (see module docs).
pub(crate) struct TenantSessions {
    shards: Vec<HashMap<IndividualId, Tenant>>,
    /// Maximum live tenants across all shards (≥ 1).
    capacity: usize,
    /// Monotonic access clock driving LRU recency.
    clock: u64,
    /// Tenants evicted by the LRU cap so far.
    evicted: u64,
    /// Counters carried by evicted tenants, folded in so the service-level
    /// totals stay monotone across evictions.
    retired: SessionStats,
}

impl TenantSessions {
    /// An empty map with `shards` shards and a total live-session cap of
    /// `capacity` (both clamped to ≥ 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| HashMap::new()).collect(),
            capacity: capacity.max(1),
            clock: 0,
            evicted: 0,
            retired: SessionStats::default(),
        }
    }

    /// The shard a tenant routes to. `DefaultHasher` is keyed with fixed
    /// constants, so routing is stable across runs and processes.
    fn shard_of(&self, user: IndividualId) -> usize {
        let mut hasher = std::hash::DefaultHasher::new();
        user.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Live tenant sessions across all shards.
    pub fn live(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Tenants evicted by the LRU cap so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The tenant's session state, created on first sight, with its
    /// recency refreshed. Inserting past the cap first evicts the
    /// least-recently-used tenant (never the one being requested).
    pub fn session(&mut self, user: IndividualId) -> &mut Tenant {
        self.clock += 1;
        let now = self.clock;
        let shard = self.shard_of(user);
        if !self.shards[shard].contains_key(&user) && self.live() >= self.capacity {
            self.evict_lru();
        }
        let tenant = self.shards[shard]
            .entry(user)
            .or_insert_with(|| Tenant::new(now));
        tenant.last_used = now;
        tenant
    }

    /// The tenant's cache counters, if it is currently live.
    pub fn stats_of(&self, user: IndividualId) -> Option<SessionStats> {
        let tenant = self.shards[self.shard_of(user)].get(&user)?;
        Some(tenant.stats())
    }

    /// Total cache counters: every live tenant's [`SessionStats`] summed
    /// component-wise, plus the counters retired with evicted tenants.
    pub fn total_stats(&self) -> SessionStats {
        self.tenants().map(Tenant::stats).sum::<SessionStats>() + self.retired
    }

    /// Drops every tenant and resets all counters (the cap and shard count
    /// are kept).
    pub fn clear(&mut self) {
        *self = Self::new(self.shards.len(), self.capacity);
    }

    fn tenants(&self) -> impl Iterator<Item = &Tenant> {
        self.shards.iter().flat_map(HashMap::values)
    }

    /// Iterates over the user ids of all currently live tenants (shard
    /// order; no recency refresh). The persistence layer snapshots this
    /// set so a recovered service can re-derive those tenants' bindings at
    /// boot instead of on their first post-boot request.
    pub fn live_users(&self) -> impl Iterator<Item = IndividualId> + '_ {
        self.shards.iter().flat_map(HashMap::keys).copied()
    }

    /// Removes the least-recently-used tenant across all shards, folding
    /// its counters into the retired totals. The scan is O(live tenants) —
    /// fine for in-process caps; a deployment that needs millions of live
    /// sessions shards the *service*, not this map.
    fn evict_lru(&mut self) {
        let victim = self
            .shards
            .iter()
            .enumerate()
            .flat_map(|(s, shard)| shard.iter().map(move |(&user, t)| (t.last_used, s, user)))
            .min_by_key(|&(last_used, _, _)| last_used);
        if let Some((_, shard, user)) = victim {
            let tenant = self.shards[shard].remove(&user).expect("victim is live");
            self.retired = self.retired + tenant.stats();
            self.evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kb;

    fn users(n: usize) -> (Kb, Vec<IndividualId>) {
        let mut kb = Kb::new();
        let users = (0..n).map(|i| kb.individual(&format!("u{i}"))).collect();
        (kb, users)
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let (_kb, u) = users(3);
        let mut map = TenantSessions::new(4, 2);
        map.session(u[0]);
        map.session(u[1]);
        assert_eq!((map.live(), map.evicted()), (2, 0));
        // Touch u0 so u1 becomes the LRU victim when u2 arrives.
        map.session(u[0]);
        map.session(u[2]);
        assert_eq!((map.live(), map.evicted()), (2, 1));
        assert!(map.stats_of(u[0]).is_some(), "recently used tenant kept");
        assert!(map.stats_of(u[1]).is_none(), "LRU tenant evicted");
        assert!(map.stats_of(u[2]).is_some(), "new tenant live");
    }

    #[test]
    fn re_requesting_an_evicted_tenant_recreates_it() {
        let (_kb, u) = users(2);
        let mut map = TenantSessions::new(1, 1);
        map.session(u[0]);
        map.session(u[1]);
        map.session(u[0]);
        assert_eq!(map.live(), 1);
        assert_eq!(map.evicted(), 2, "each switch evicts the other tenant");
    }

    #[test]
    fn shard_routing_is_deterministic_and_total() {
        let (_kb, u) = users(64);
        let mut map = TenantSessions::new(8, 64);
        for &user in &u {
            map.session(user);
        }
        assert_eq!(map.live(), 64, "every tenant lands in exactly one shard");
        let spread = map.shards.iter().filter(|s| !s.is_empty()).count();
        assert!(spread > 1, "64 tenants must not all hash to one shard");
    }

    #[test]
    fn eviction_retires_counters_monotonically() {
        use crate::{PreferenceRule, RuleRepository, Score};

        let mut kb = Kb::new();
        let u0 = kb.individual("u0");
        let u1 = kb.individual("u1");
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R",
                kb.parse("Ctx").unwrap(),
                kb.parse("Nice").unwrap(),
                Score::new(0.5).unwrap(),
            ))
            .unwrap();
        let mut map = TenantSessions::new(2, 1);
        let env = crate::ScoringEnv {
            kb: &kb,
            rules: &rules,
            user: u0,
        };
        map.session(u0).bindings.bind(&env);
        let before = map.total_stats();
        assert!(before.bindings.misses > 0, "the bind registered a counter");
        map.session(u1); // evicts u0, retiring its counters
        assert_eq!(map.total_stats(), before, "totals survive eviction");
    }
}
