//! Sharded, LRU-capped storage of per-tenant session state.
//!
//! Each tenant owns the two *user-specific* cache layers of a
//! [`crate::ScoringSession`] — the rule-binding cache and the per-document
//! score cache. The third layer (evaluation memos) carries no per-user
//! data and lives in the service's shared
//! [`crate::parallel::ScratchPool`] instead, so it is *not* duplicated per
//! tenant and survives tenant eviction.
//!
//! Tenants are routed to shards by hashing their [`IndividualId`], and each
//! shard sits behind its own [`Mutex`]: requests for tenants in different
//! shards proceed in parallel, requests for the same tenant (or shard
//! neighbours) serialize. Access is scoped — [`TenantSessions::with_session`]
//! runs a closure under exactly the target shard's lock — so the shard lock
//! also *is* the per-tenant request serialization the service layer relies
//! on: two threads ranking the same user cannot interleave inside one
//! tenant's caches.
//!
//! **LRU cap.** The map holds at most `capacity` live tenants across all
//! shards; touching a tenant refreshes its recency, and inserting past the
//! cap evicts the globally least-recently-used tenant. Finding the global
//! victim needs a consistent view of every shard, so the insert slow path
//! (tenant not yet live) locks *all* shards in ascending index order — the
//! one place the map takes more than one lock (see the lock-order note in
//! `ARCHITECTURE.md`). Eviction drops only caches whose contents are pure
//! functions of the current KB + rules, so a returning tenant is re-derived
//! bit-identically — the cap trades a cold re-bind for bounded memory,
//! exactly like the snapshot-tier [`capra_events::EvictionPolicy`] one
//! layer down.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use capra_dl::IndividualId;

use crate::session::{BindingCache, ScoreCache, SessionStats};

/// One tenant's session state: the user-specific cache layers plus the
/// recency stamp the LRU cap works from.
pub(crate) struct Tenant {
    /// Cached rule bindings (layer 1 of the session stack).
    pub bindings: BindingCache,
    /// Cached per-document scores (layer 3).
    pub scores: ScoreCache,
    /// Logical timestamp of the last access (global clock tick).
    last_used: u64,
}

impl Tenant {
    fn new(now: u64) -> Self {
        Self {
            bindings: BindingCache::new(),
            scores: ScoreCache::default(),
            last_used: now,
        }
    }

    /// This tenant's cache counters as a [`SessionStats`]. The footprint
    /// is zero by construction: tenants hold no evaluation memos of their
    /// own — those live in the service's shared pool and are reported
    /// once, service-wide.
    fn stats(&self) -> SessionStats {
        SessionStats {
            bindings: self.bindings.stats(),
            scores: self.scores.stats(),
            ..SessionStats::default()
        }
    }
}

/// One shard: the tenants that hash here, behind this shard's own lock.
type Shard = HashMap<IndividualId, Tenant>;

/// The sharded tenant map (see module docs).
pub(crate) struct TenantSessions {
    shards: Vec<Mutex<Shard>>,
    /// Times each shard's lock was taken (same index as `shards`). A
    /// contention signal for operators: the fast path takes exactly one
    /// lock per request, so a hot shard shows up as one counter racing
    /// ahead of its siblings.
    lock_counts: Vec<AtomicU64>,
    /// Maximum live tenants across all shards (≥ 1).
    capacity: usize,
    /// Monotonic access clock driving LRU recency.
    clock: AtomicU64,
    /// Tenants evicted by the LRU cap so far.
    evicted: AtomicU64,
    /// Live tenants across all shards (maintained on insert/evict so reads
    /// don't have to take every shard lock).
    live: AtomicU64,
    /// Counters carried by evicted tenants, folded in so the service-level
    /// totals stay monotone across evictions.
    retired: Mutex<SessionStats>,
}

impl TenantSessions {
    /// An empty map with `shards` shards and a total live-session cap of
    /// `capacity` (both clamped to ≥ 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            lock_counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            live: AtomicU64::new(0),
            retired: Mutex::new(SessionStats::default()),
        }
    }

    /// The shard a tenant routes to. `DefaultHasher` is keyed with fixed
    /// constants, so routing is stable across runs and processes.
    fn shard_of(&self, user: IndividualId) -> usize {
        let mut hasher = std::hash::DefaultHasher::new();
        user.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Locks shard `index`, counting the acquisition.
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        self.lock_counts[index].fetch_add(1, Ordering::Relaxed);
        self.shards[index].lock().expect("shard lock poisoned")
    }

    /// Live tenant sessions across all shards.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed) as usize
    }

    /// Tenants evicted by the LRU cap so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Shard-lock acquisitions so far, one counter per shard.
    pub fn lock_counts(&self) -> Vec<u64> {
        self.lock_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Runs `f` on the tenant's session state under the tenant's shard
    /// lock, creating the session on first sight and refreshing its
    /// recency. Inserting past the cap first evicts the globally
    /// least-recently-used tenant (never the one being requested — its
    /// recency stamp is the newest clock tick by construction).
    ///
    /// The closure runs with the shard lock held, so everything it does to
    /// the tenant's caches is atomic with respect to other requests for
    /// tenants in the same shard; tenants in other shards are untouched and
    /// proceed in parallel.
    pub fn with_session<R>(&self, user: IndividualId, f: impl FnOnce(&mut Tenant) -> R) -> R {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let target = self.shard_of(user);
        {
            // Fast path: the tenant is live — one lock, no global scan.
            let mut shard = self.lock_shard(target);
            if let Some(tenant) = shard.get_mut(&user) {
                tenant.last_used = now;
                return f(tenant);
            }
        }
        // Slow path (first sight): the global LRU cap needs a consistent
        // view of every shard, so take all shard locks in ascending index
        // order (the only multi-lock acquisition in the map — deadlock-free
        // because every other path takes at most one shard lock).
        let mut guards: Vec<MutexGuard<'_, Shard>> =
            (0..self.shards.len()).map(|i| self.lock_shard(i)).collect();
        // Re-check under the full lock set: another thread may have created
        // this tenant between the fast-path unlock and here.
        if !guards[target].contains_key(&user) {
            if self.live() >= self.capacity {
                self.evict_lru(&mut guards);
            }
            guards[target].insert(user, Tenant::new(now));
            self.live.fetch_add(1, Ordering::Relaxed);
        }
        // Keep only the target shard's guard while `f` runs: scoring a cold
        // tenant can be long, and the other shards need not wait for it.
        let mut shard = guards.swap_remove(target);
        drop(guards);
        let tenant = shard.get_mut(&user).expect("tenant just ensured live");
        tenant.last_used = now;
        f(tenant)
    }

    /// The tenant's cache counters, if it is currently live.
    pub fn stats_of(&self, user: IndividualId) -> Option<SessionStats> {
        let shard = self.lock_shard(self.shard_of(user));
        shard.get(&user).map(Tenant::stats)
    }

    /// Total cache counters: every live tenant's [`SessionStats`] summed
    /// component-wise, plus the counters retired with evicted tenants.
    /// Shards are visited one lock at a time, so under concurrent traffic
    /// the sum is a near-point-in-time reading, not a frozen snapshot —
    /// fine for the monotone counters it reports.
    pub fn total_stats(&self) -> SessionStats {
        let live: SessionStats = (0..self.shards.len())
            .map(|i| {
                let shard = self.lock_shard(i);
                shard.values().map(Tenant::stats).sum::<SessionStats>()
            })
            .sum();
        live + *self.retired.lock().expect("retired lock poisoned")
    }

    /// Drops every tenant and resets all counters (the cap and shard count
    /// are kept).
    pub fn clear(&mut self) {
        *self = Self::new(self.shards.len(), self.capacity);
    }

    /// The user ids of all currently live tenants (shard order; no recency
    /// refresh). The persistence layer snapshots this set so a recovered
    /// service can re-derive those tenants' bindings at boot instead of on
    /// their first post-boot request.
    pub fn live_users(&self) -> Vec<IndividualId> {
        (0..self.shards.len())
            .flat_map(|i| {
                let shard = self.lock_shard(i);
                shard.keys().copied().collect::<Vec<_>>()
            })
            .collect()
    }

    /// Removes the least-recently-used tenant across all shards (whose
    /// guards the caller holds), folding its counters into the retired
    /// totals. The scan is O(live tenants) — fine for in-process caps; a
    /// deployment that needs millions of live sessions shards the
    /// *service*, not this map.
    fn evict_lru(&self, guards: &mut [MutexGuard<'_, Shard>]) {
        let victim = guards
            .iter()
            .enumerate()
            .flat_map(|(s, shard)| shard.iter().map(move |(&user, t)| (t.last_used, s, user)))
            .min_by_key(|&(last_used, _, _)| last_used);
        if let Some((_, shard, user)) = victim {
            let tenant = guards[shard].remove(&user).expect("victim is live");
            let mut retired = self.retired.lock().expect("retired lock poisoned");
            *retired = *retired + tenant.stats();
            self.evicted.fetch_add(1, Ordering::Relaxed);
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kb;

    fn users(n: usize) -> (Kb, Vec<IndividualId>) {
        let mut kb = Kb::new();
        let users = (0..n).map(|i| kb.individual(&format!("u{i}"))).collect();
        (kb, users)
    }

    fn touch(map: &TenantSessions, user: IndividualId) {
        map.with_session(user, |_| ());
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let (_kb, u) = users(3);
        let map = TenantSessions::new(4, 2);
        touch(&map, u[0]);
        touch(&map, u[1]);
        assert_eq!((map.live(), map.evicted()), (2, 0));
        // Touch u0 so u1 becomes the LRU victim when u2 arrives.
        touch(&map, u[0]);
        touch(&map, u[2]);
        assert_eq!((map.live(), map.evicted()), (2, 1));
        assert!(map.stats_of(u[0]).is_some(), "recently used tenant kept");
        assert!(map.stats_of(u[1]).is_none(), "LRU tenant evicted");
        assert!(map.stats_of(u[2]).is_some(), "new tenant live");
    }

    #[test]
    fn re_requesting_an_evicted_tenant_recreates_it() {
        let (_kb, u) = users(2);
        let map = TenantSessions::new(1, 1);
        touch(&map, u[0]);
        touch(&map, u[1]);
        touch(&map, u[0]);
        assert_eq!(map.live(), 1);
        assert_eq!(map.evicted(), 2, "each switch evicts the other tenant");
    }

    #[test]
    fn shard_routing_is_deterministic_and_total() {
        let (_kb, u) = users(64);
        let map = TenantSessions::new(8, 64);
        for &user in &u {
            touch(&map, user);
        }
        assert_eq!(map.live(), 64, "every tenant lands in exactly one shard");
        let spread = map
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(spread > 1, "64 tenants must not all hash to one shard");
    }

    #[test]
    fn eviction_retires_counters_monotonically() {
        use crate::{PreferenceRule, RuleRepository, Score};

        let mut kb = Kb::new();
        let u0 = kb.individual("u0");
        let u1 = kb.individual("u1");
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R",
                kb.parse("Ctx").unwrap(),
                kb.parse("Nice").unwrap(),
                Score::new(0.5).unwrap(),
            ))
            .unwrap();
        let map = TenantSessions::new(2, 1);
        let env = crate::ScoringEnv {
            kb: &kb,
            rules: &rules,
            user: u0,
        };
        map.with_session(u0, |t| t.bindings.bind(&env));
        let before = map.total_stats();
        assert!(before.bindings.misses > 0, "the bind registered a counter");
        touch(&map, u1); // evicts u0, retiring its counters
        assert_eq!(map.total_stats(), before, "totals survive eviction");
    }

    #[test]
    fn shard_lock_counts_track_acquisitions() {
        let (_kb, u) = users(8);
        let map = TenantSessions::new(4, 8);
        for &user in &u {
            touch(&map, user); // slow path: locks every shard once
            touch(&map, user); // fast path: locks exactly one shard
        }
        let counts = map.lock_counts();
        assert_eq!(counts.len(), 4);
        let total: u64 = counts.iter().sum();
        // 8 slow paths × (1 fast-miss + 4 all-shard) + 8 fast hits.
        assert_eq!(total, 8 * 5 + 8);
    }

    #[test]
    fn concurrent_first_sight_inserts_once() {
        let (_kb, u) = users(1);
        let map = TenantSessions::new(4, 8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        touch(&map, u[0]);
                    }
                });
            }
        });
        assert_eq!((map.live(), map.evicted()), (1, 0));
    }
}
