//! The serving layer — a multi-tenant [`RankingService`] owning the
//! per-user session lifecycle that PRs 1–4 left to callers.
//!
//! The paper's scenario is many users, each with their own context-aware
//! preference rules and a stream of context switches, ranking a shared
//! candidate set (TV programs, query results). The core crate gives each
//! *caller* fast machinery for that — [`crate::ScoringSession`] for the
//! repeat-call warm path, [`crate::parallel::ScratchPool`] for shared
//! evaluation memos, [`capra_events::EvictionPolicy`] for bounded
//! footprints — but a production front-end would have to hand-assemble all
//! of it per user and invent its own eviction story for the session map
//! itself. This module owns that lifecycle:
//!
//! * **Tenancy** — one [`RankingService`] serves any number of users
//!   ("tenants"). Per-tenant state (rule-binding cache + score cache) lives
//!   in a sharded map, LRU-capped by [`ServiceConfig::max_sessions`]:
//!   evicting a tenant only costs that tenant a deterministic re-derivation
//!   on their next request, never a changed score.
//! * **Shared evaluation tier** — all tenants score through one
//!   [`crate::parallel::ScratchPool`]: evaluation memos are pure functions
//!   of hash-consed expression identity and carry no per-user data, so one
//!   tenant's work warms every other tenant that touches the same
//!   documents. The pool's frozen snapshot chains are epoch-tagged and aged
//!   out per the service's [`EvictionPolicy`](capra_events::EvictionPolicy),
//!   so the *total* footprint stays bounded even when every request mutates
//!   context.
//! * **Typed requests** — [`RankingService::rank`],
//!   [`RankingService::rank_group`] and [`RankingService::assert`] cover
//!   the three request shapes of the paper's serving story (one user ranks,
//!   a group ranks together, a context switch arrives), and
//!   [`RankingService::submit`] accepts a [`Request`] batch, coalescing
//!   runs of same-KB-epoch rank requests into one dispatch over a single
//!   checked-out scratch (one snapshot republish per run instead of one per
//!   request).
//! * **Concurrency** — the whole serving surface takes `&self`:
//!   [`RankingService`] is `Sync`, so any number of request threads share
//!   one service directly (`Arc` or `thread::scope`). The KB and rules are
//!   *epoch-published*: readers grab an immutable [`SharedSnapshot`] (two
//!   `Arc` bumps) and never see a half-applied write; tenant sessions live
//!   behind per-shard locks so disjoint tenants rank in parallel; all
//!   mutation ([`RankingService::assert`], rule edits, durability) is
//!   serialized behind one writer lock that publishes the next snapshot
//!   atomically. See "Concurrency & locking order" in `ARCHITECTURE.md`
//!   for the lock hierarchy and the in-place writer fast path.
//! * **Batching front-end** — [`ServiceQueue`] puts a bounded MPSC queue
//!   and a worker thread in front of a shared service: producers
//!   [`ServiceHandle::enqueue`] typed [`Request`]s (backpressure via
//!   [`ServiceHandle::try_enqueue`]), each gets a [`Ticket`] to
//!   [`Ticket::wait`] on, and the worker drains in arrival order, feeding
//!   runs through [`RankingService::submit`] so same-epoch requests
//!   coalesce.
//! * **Observability** — [`RankingService::stats`] aggregates every
//!   tenant's [`crate::SessionStats`] (plus counters retired with evicted
//!   tenants) into a [`ServiceStats`]: sessions live/evicted, warm/cold hit
//!   rates, shard-lock acquisition counts, queue depth/throughput
//!   ([`QueueStats`]), and the shared-tier [`capra_events::CacheFootprint`].
//! * **Replication** — a [`ReplicaService`] opens a durable writer's
//!   directory read-only, restores the newest snapshot, and tails the
//!   segmented WAL incrementally ([`ReplicaService::poll`]) — serving
//!   warm, bit-identical ranking at the epoch it has reached while the
//!   one writer retains full ownership of the files (see the
//!   [`ReplicaService`] docs for the degradation contract).
//!
//! Everything here is behaviour-preserving plumbing: a service request
//! computes bit-identical scores to a cold [`crate::bind_rules`] +
//! `score_all` for the same user (property-tested in
//! `tests/serve_consistency.rs`), because every layer it reuses already
//! holds that contract.
//!
//! See `ARCHITECTURE.md` at the workspace root for where this layer sits in
//! the stack and a request-time walkthrough.

mod queue;
mod replay;
mod replica;
mod request;
mod service;
mod tenants;

pub use queue::{QueueConfig, QueueStats, ServiceHandle, ServiceQueue, Ticket};
pub use replay::{replay_workload, workload_service, ReplayReport};
pub use replica::{ReplicaService, ReplicaStats};
pub use request::{Fact, Request, Response};
pub use service::{RankingService, ServiceConfig, ServiceStats, SharedSnapshot};
