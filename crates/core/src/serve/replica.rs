//! Read-only replica serving: a [`ReplicaService`] opens a writer's
//! durable directory, restores the newest valid snapshot, replays the WAL
//! suffix, and then *tails* the segment chain incrementally — serving warm
//! `rank`/`rank_group` requests at whatever epoch it has reached.
//!
//! The replica never writes to the directory (no migration, no truncation,
//! no compaction); the one writer retains full ownership of the files. The
//! tail cursor is `(active segment, byte offset)` plus the next expected
//! sequence number, and each [`ReplicaService::poll`] re-reads the active
//! segment from that offset:
//!
//! * A **torn or checksum-failing frame at the tail** is "not yet", not
//!   corruption — the writer may be mid-append, so the poll counts a
//!   [`ReplicaStats::torn_reads`] and retries from the same offset next
//!   time. Only a bad frame in a *sealed* segment (its successor exists,
//!   so the writer will never finish that frame) is treated as real
//!   divergence.
//! * A **rotation** is followed by exact name: when the chain ends cleanly
//!   and `wal-<next_seq>.log` exists, the cursor advances into it. The
//!   check is by the *exact* next sequence number, so glimpsing a newer
//!   segment mid-rotation can never skip records.
//! * A **compacted-away cursor segment** (the file is gone but later
//!   segments exist) raises [`crate::PersistError::Resnapshot`]: the
//!   replica's state is still consistent — just too far behind for the log
//!   that remains — so `rank` keeps serving at the reached epoch while the
//!   caller decides when to pay the [`ReplicaService::resnapshot`] re-open.
//!   A replica that polls at least once per writer snapshot interval never
//!   hits this path (compaction only deletes segments covered by the two
//!   newest snapshots).
//!
//! Replays go through the same semantic checks crash recovery applies
//! (decodable op, successful apply, post-apply epoch match), so a caught-up
//! replica's scores are bit-identical to the writer's for every engine.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use capra_dl::IndividualId;

use crate::engines::{DocScore, ScoringEngine};
use crate::multiuser::GroupStrategy;
use crate::persist::wal::{
    next_frame, segment_file_name, segment_paths, wal_header, Frame, LEGACY_WAL_FILE,
    WAL_HEADER_LEN,
};
use crate::persist::{recover, PersistError};
use crate::serve::service::{RankingService, ServiceConfig, ServiceStats, SharedSnapshot};
use crate::{Kb, Result, RuleRepository};

/// Replication progress counters of a [`ReplicaService`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Sequence number of the last record applied (0 = none yet).
    pub applied_seq: u64,
    /// Valid records currently on disk past the cursor — how far behind
    /// the writer's *durable* log the replica is, as of the last poll.
    pub lag_records: u64,
    /// Polls that ended at an incomplete or checksum-failing tail frame
    /// (the writer mid-append; retried, never fatal).
    pub torn_reads: u64,
    /// Times [`ReplicaService::resnapshot`] re-opened from the newest
    /// snapshot.
    pub resnapshots: u64,
}

/// A read-only follower of a durable [`RankingService`] directory: restores
/// the newest snapshot + WAL suffix at open, tails new records on
/// [`ReplicaService::poll`], and serves warm ranking requests at the epoch
/// it has reached — the degradation contract is spelled out below.
///
/// ```
/// use capra_core::serve::{Fact, RankingService, ReplicaService};
/// use capra_core::{FlushPolicy, LineageEngine};
///
/// let dir = std::env::temp_dir().join(format!("capra-replica-doc-{}", std::process::id()));
/// std::fs::remove_dir_all(&dir).ok();
/// let mut writer = RankingService::open_durable(
///     LineageEngine::new(), Default::default(), &dir, FlushPolicy::EveryRecord).unwrap();
/// let peter = writer.individual("peter");
/// writer.assert(peter, Fact::ConceptProb("Weekend".into(), 0.7)).unwrap();
///
/// let mut follower = ReplicaService::open_follow(
///     LineageEngine::new(), Default::default(), &dir).unwrap();
/// assert_eq!(follower.kb().epoch(), writer.kb().epoch());
///
/// // The writer keeps appending; the follower catches up on poll().
/// writer.assert(peter, Fact::ConceptProb("Weekend".into(), 0.9)).unwrap();
/// assert_eq!(follower.poll().unwrap(), 1);
/// assert_eq!(follower.kb().epoch(), writer.kb().epoch());
/// assert_eq!(follower.stats().lag_records, 0);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct ReplicaService<E> {
    inner: RankingService<E>,
    /// The directory being followed (never written).
    dir: PathBuf,
    /// Whether the cursor still points into the legacy single-file
    /// `wal.log` (switches to segments the moment a writer migrates it).
    legacy: bool,
    /// First sequence number (= file name) of the segment being tailed.
    seg_first: u64,
    /// Byte offset just past the last applied frame in that segment.
    offset: u64,
    /// Sequence number the next applied record must carry.
    next_seq: u64,
    /// Valid on-disk records past the cursor, as of the last poll.
    lag_records: u64,
    /// Tail reads that ended at an in-flight frame.
    torn_reads: u64,
    /// Resnapshot re-opens performed.
    resnapshots: u64,
    /// The cursor's segment was compacted away: polling is pointless until
    /// [`ReplicaService::resnapshot`], but serving stays consistent.
    needs_resnapshot: bool,
    /// The on-disk log contradicted the replica's applied history (bad
    /// frame in a sealed segment, sequence jump, shrinking file, failed
    /// apply): the state may no longer match the writer's, so serving is
    /// poisoned until [`ReplicaService::resnapshot`].
    diverged: bool,
}

impl<E: ScoringEngine + Sync> ReplicaService<E> {
    /// Opens `dir` as a read-only follower: newest valid snapshot + WAL
    /// suffix, exactly like [`RankingService::open_durable`]'s recovery —
    /// but touching nothing on disk. An empty or still-cold directory
    /// opens as an empty replica that starts applying once the writer's
    /// first records land.
    ///
    /// The restored state is installed into the same epoch-published
    /// [`SharedSnapshot`] the writer serves from, so replica reads
    /// ([`ReplicaService::rank`], [`ReplicaService::snapshot`]) take
    /// `&self` and go through the identical one-load read path; only
    /// [`ReplicaService::poll`] needs the exclusive `&mut self`.
    pub fn open_follow(engine: E, config: ServiceConfig, dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let recovered = recover(&dir)?;
        let mut inner =
            RankingService::with_config(engine, Kb::new(), RuleRepository::new(), config);
        let next_seq = recovered.next_seq;
        let (seg_first, offset) = recovered.cursor;
        let legacy = recovered.legacy;
        inner.reinstall(recovered);
        let mut replica = Self {
            inner,
            dir,
            legacy,
            seg_first,
            offset,
            next_seq,
            lag_records: 0,
            torn_reads: 0,
            resnapshots: 0,
            needs_resnapshot: false,
            diverged: false,
        };
        replica.recount_lag();
        Ok(replica)
    }

    /// Applies every record currently readable past the cursor. Returns
    /// the number applied; see [`ReplicaService::poll_n`] for the error
    /// contract.
    pub fn poll(&mut self) -> Result<u64> {
        self.poll_n(u64::MAX)
    }

    /// Applies at most `max` records past the cursor, following segment
    /// rotations. Returns the number applied — 0 simply means "nothing
    /// new yet".
    ///
    /// Errors with [`PersistError::Resnapshot`] when the segment under the
    /// cursor was compacted away (serving continues at the reached epoch;
    /// call [`ReplicaService::resnapshot`] to catch up), and with
    /// [`PersistError::Invalid`] when the log contradicts the applied
    /// history — after which serving is poisoned until a resnapshot.
    pub fn poll_n(&mut self, max: u64) -> Result<u64> {
        if self.diverged {
            return self.diverge("replica already diverged");
        }
        if self.needs_resnapshot {
            return Err(PersistError::Resnapshot {
                next_seq: self.next_seq,
            }
            .into());
        }
        let mut applied = 0u64;
        'segments: while applied < max {
            let bytes = match std::fs::read(self.active_path()) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    if self.legacy && self.dir.join(segment_file_name(self.seg_first)).exists() {
                        // The writer migrated `wal.log` to `wal-1.log`:
                        // the bytes are identical, only the name changed.
                        self.legacy = false;
                        continue 'segments;
                    }
                    if !self.legacy
                        && self.next_seq != self.seg_first
                        && self.dir.join(segment_file_name(self.next_seq)).exists()
                    {
                        // The cursor segment was compacted away *after*
                        // every one of its records was applied: its exact
                        // successor exists, so continuing there skips
                        // nothing.
                        self.seg_first = self.next_seq;
                        self.offset = WAL_HEADER_LEN as u64;
                        continue 'segments;
                    }
                    if segment_paths(&self.dir)
                        .iter()
                        .any(|&(first_seq, _)| first_seq > self.seg_first)
                    {
                        // Later segments exist but ours is gone: compaction
                        // outran this replica. State is consistent, just
                        // too old for the remaining log.
                        self.needs_resnapshot = true;
                        return Err(PersistError::Resnapshot {
                            next_seq: self.next_seq,
                        }
                        .into());
                    }
                    // The writer has not created this segment yet.
                    break;
                }
                Err(e) => return Err(PersistError::from(e).into()),
            };
            if (bytes.len() as u64) < self.offset {
                return self.diverge("the active segment shrank beneath the cursor");
            }
            if self.offset == WAL_HEADER_LEN as u64 {
                if bytes.len() < WAL_HEADER_LEN {
                    // Freshly created file, header still in flight.
                    self.torn_reads += 1;
                    break;
                }
                if bytes[..WAL_HEADER_LEN] != wal_header() {
                    return self.diverge("segment header mismatch");
                }
            }
            let mut clean_end = true;
            while applied < max {
                match next_frame(&bytes, self.offset as usize) {
                    None => break,
                    Some(Frame::Ok(rec)) => {
                        if rec.seq != self.next_seq {
                            return self.diverge(&format!(
                                "expected sequence {}, segment holds {}",
                                self.next_seq, rec.seq
                            ));
                        }
                        if let Err(e) = self.inner.apply_replayed(rec.epoch, &rec.body) {
                            return self.diverge(&format!("record {} failed: {e}", rec.seq));
                        }
                        self.offset = rec.end_offset as u64;
                        self.next_seq += 1;
                        applied += 1;
                    }
                    Some(Frame::Torn) | Some(Frame::Corrupt { .. }) => {
                        // An in-flight append at the tail — "not yet".
                        self.torn_reads += 1;
                        clean_end = false;
                        break;
                    }
                }
            }
            if applied >= max {
                break;
            }
            // End of this segment's readable bytes. Advance only into the
            // exact successor of our cursor: rotation names the new file
            // after the next sequence number. (When the cursor segment has
            // no applied records yet, `next_seq == seg_first` and that
            // "successor" would be the cursor segment itself — stay put.)
            if !self.legacy
                && self.next_seq != self.seg_first
                && self.dir.join(segment_file_name(self.next_seq)).exists()
            {
                if !clean_end {
                    // A successor exists, so this segment is sealed and
                    // the writer will never complete that frame.
                    return self.diverge("torn frame in a sealed segment");
                }
                self.seg_first = self.next_seq;
                self.offset = WAL_HEADER_LEN as u64;
                continue 'segments;
            }
            break;
        }
        self.recount_lag();
        Ok(applied)
    }

    /// Re-opens from the newest valid snapshot + WAL suffix — the recovery
    /// path for a replica whose cursor segment was compacted away (or that
    /// diverged). Clears both degradation flags, replaces the state, and
    /// returns the sequence number caught up to.
    pub fn resnapshot(&mut self) -> Result<u64> {
        let recovered = recover(&self.dir)?;
        self.next_seq = recovered.next_seq;
        (self.seg_first, self.offset) = recovered.cursor;
        self.legacy = recovered.legacy;
        self.inner.reinstall(recovered);
        self.needs_resnapshot = false;
        self.diverged = false;
        self.resnapshots += 1;
        self.recount_lag();
        Ok(self.next_seq - 1)
    }

    /// Ranks `docs` for `user` at the epoch the replica has reached (see
    /// [`RankingService::rank`] for the ranking contract). Serves even
    /// when the replica needs a resnapshot — the state is merely stale —
    /// but errors after divergence, when it may be *wrong*. Takes
    /// `&self`: replica reads go through the same epoch-published
    /// snapshot load as writer reads, so any number of threads can serve
    /// from one replica while a separate owner thread `poll`s.
    pub fn rank(
        &self,
        user: IndividualId,
        docs: &[IndividualId],
        k: usize,
    ) -> Result<Vec<DocScore>> {
        self.check_poisoned()?;
        self.inner.rank(user, docs, k)
    }

    /// Ranks `docs` for a group of users at the reached epoch (see
    /// [`RankingService::rank_group`]).
    pub fn rank_group(
        &self,
        users: &[IndividualId],
        docs: &[IndividualId],
        k: usize,
        strategy: &GroupStrategy,
    ) -> Result<Vec<DocScore>> {
        self.check_poisoned()?;
        self.inner.rank_group(users, docs, k, strategy)
    }

    /// The consistent `(kb, rules)` view at the epoch the replica has
    /// reached — the *same* [`SharedSnapshot`] type the writer publishes,
    /// so code written against the writer's read layer serves from a
    /// replica unchanged. Applied records publish a successor snapshot;
    /// one already loaded stays immutable.
    pub fn snapshot(&self) -> SharedSnapshot {
        self.inner.snapshot()
    }

    /// The knowledge base at the epoch the replica has reached (use
    /// `kb().voc.find_individual(..)` to resolve request IDs — a replica
    /// has no mutating `individual` call). A stable `Arc` snapshot, like
    /// [`RankingService::kb`].
    pub fn kb(&self) -> Arc<Kb> {
        self.inner.kb()
    }

    /// Replication progress counters.
    pub fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            applied_seq: self.next_seq - 1,
            lag_records: self.lag_records,
            torn_reads: self.torn_reads,
            resnapshots: self.resnapshots,
        }
    }

    /// The underlying service's counters (cache traffic, replay counts).
    pub fn service_stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Whether [`ReplicaService::resnapshot`] is required before polling
    /// can make progress again.
    pub fn needs_resnapshot(&self) -> bool {
        self.needs_resnapshot
    }

    /// The file the cursor currently points into.
    fn active_path(&self) -> PathBuf {
        if self.legacy {
            self.dir.join(LEGACY_WAL_FILE)
        } else {
            self.dir.join(segment_file_name(self.seg_first))
        }
    }

    /// Poisons serving and returns the divergence error.
    fn diverge<T>(&mut self, why: &str) -> Result<T> {
        self.diverged = true;
        Err(PersistError::Invalid(format!(
            "replica diverged from the writer's log ({why}); \
             re-open from the newest snapshot (resnapshot)"
        ))
        .into())
    }

    /// Errors when serving is poisoned by divergence.
    fn check_poisoned(&self) -> Result<()> {
        if self.diverged {
            Err(PersistError::Invalid(
                "replica diverged from the writer's log; \
                 re-open from the newest snapshot (resnapshot)"
                    .into(),
            )
            .into())
        } else {
            Ok(())
        }
    }

    /// Dry-run of the tail walk: counts the valid records on disk past the
    /// cursor without applying them — the [`ReplicaStats::lag_records`]
    /// gauge.
    fn recount_lag(&mut self) {
        let mut lag = 0u64;
        let mut legacy = self.legacy;
        let mut seg_first = self.seg_first;
        let mut offset = self.offset as usize;
        let mut next_seq = self.next_seq;
        loop {
            let path = if legacy {
                self.dir.join(LEGACY_WAL_FILE)
            } else {
                self.dir.join(segment_file_name(seg_first))
            };
            let Ok(bytes) = std::fs::read(&path) else {
                if legacy && self.dir.join(segment_file_name(seg_first)).exists() {
                    legacy = false;
                    continue;
                }
                if !legacy
                    && next_seq != seg_first
                    && self.dir.join(segment_file_name(next_seq)).exists()
                {
                    seg_first = next_seq;
                    offset = WAL_HEADER_LEN;
                    continue;
                }
                break;
            };
            if offset == WAL_HEADER_LEN
                && (bytes.len() < WAL_HEADER_LEN || bytes[..WAL_HEADER_LEN] != wal_header())
            {
                break;
            }
            let mut clean_end = true;
            loop {
                match next_frame(&bytes, offset) {
                    Some(Frame::Ok(rec)) if rec.seq == next_seq => {
                        offset = rec.end_offset;
                        next_seq += 1;
                        lag += 1;
                    }
                    None => break,
                    Some(_) => {
                        clean_end = false;
                        break;
                    }
                }
            }
            if legacy
                || !clean_end
                || next_seq == seg_first
                || !self.dir.join(segment_file_name(next_seq)).exists()
            {
                break;
            }
            seg_first = next_seq;
            offset = WAL_HEADER_LEN;
        }
        self.lag_records = lag;
    }
}
