//! The batching front-end: a bounded request queue between callers and a
//! shared [`RankingService`].
//!
//! Direct calls on a [`RankingService`] couple the caller's rate to the
//! scoring rate: each thread blocks for its own request's full latency.
//! The queue decouples them — any number of producer threads
//! [`ServiceHandle::enqueue`] typed [`Request`]s into a bounded buffer
//! and a single worker continuously drains it in batches through
//! [`RankingService::submit`], so consecutive rank-shaped requests from
//! *different* producers coalesce into one dispatch run (one shared
//! scratch, one snapshot republish) exactly as a hand-built batch would.
//!
//! * **Backpressure.** The buffer is bounded by
//!   [`QueueConfig::capacity`]: [`ServiceHandle::enqueue`] blocks while
//!   full (ingestion degrades to the scoring rate instead of buffering
//!   unboundedly), and [`ServiceHandle::try_enqueue`] refuses instead —
//!   refusals are counted in [`QueueStats::rejected`].
//! * **Per-request results.** Every accepted request yields a
//!   [`Ticket`]; [`Ticket::wait`] blocks until the worker delivers that
//!   request's own `Result<Response>` — errors stay per-request, a
//!   failed rank never poisons its batch neighbours.
//! * **Shutdown.** Dropping (or [`ServiceQueue::shutdown`]ing) the queue
//!   closes intake, drains every already-accepted request, and joins the
//!   worker — no accepted ticket is left unresolved.
//!
//! The handle is `Clone + Send + Sync`: hand one to each producer
//! thread. The worker holds the service as an `Arc`, so direct `&self`
//! calls on the same service (e.g. an admin thread asserting facts)
//! interleave safely with queued traffic.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::engines::ScoringEngine;
use crate::serve::request::{Request, Response};
use crate::serve::service::{RankingService, ServiceStats};
use crate::{CoreError, Result};

/// Sizing knobs of a [`ServiceQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum requests buffered at once (≥ 1). A full queue blocks
    /// [`ServiceHandle::enqueue`] and refuses
    /// [`ServiceHandle::try_enqueue`].
    pub capacity: usize,
    /// Maximum requests the worker drains into one
    /// [`RankingService::submit`] batch (≥ 1) — the coalescing window.
    /// Larger batches amortize more (one scratch, one republish) at the
    /// cost of tail latency for the batch's last request.
    pub batch: usize,
}

impl Default for QueueConfig {
    /// 256 buffered requests, drained up to 32 at a time.
    fn default() -> Self {
        Self {
            capacity: 256,
            batch: 32,
        }
    }
}

/// Counters of the batching front-end, surfaced through
/// [`ServiceQueue::stats`] as [`ServiceStats::queue`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests accepted into the queue.
    pub enqueued: u64,
    /// Requests handed to the service by the worker (≤ `enqueued`; the
    /// difference is the current depth).
    pub drained: u64,
    /// `try_enqueue` refusals while the queue was full — the
    /// backpressure signal.
    pub rejected: u64,
    /// Highest queue depth observed at any enqueue — how close the
    /// buffer came to its capacity.
    pub depth_high_water: u64,
}

impl std::ops::Add for QueueStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            enqueued: self.enqueued + rhs.enqueued,
            drained: self.drained + rhs.drained,
            rejected: self.rejected + rhs.rejected,
            // A high-water mark aggregates by max, not sum.
            depth_high_water: self.depth_high_water.max(rhs.depth_high_water),
        }
    }
}

impl std::ops::AddAssign for QueueStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for QueueStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), std::ops::Add::add)
    }
}

/// The slot a queued request's result is delivered into.
struct TicketCell {
    slot: Mutex<Option<Result<Response>>>,
    ready: Condvar,
}

/// A claim on one queued request's result.
///
/// The worker delivers exactly one `Result<Response>` into each ticket —
/// the same value the equivalent [`RankingService::submit`] entry would
/// have produced. [`Ticket::wait`] consumes the ticket; to poll instead,
/// use [`Ticket::try_take`].
pub struct Ticket(Arc<TicketCell>);

impl Ticket {
    /// Blocks until the worker delivers this request's result.
    pub fn wait(self) -> Result<Response> {
        let mut slot = self.0.slot.lock().expect("ticket lock poisoned");
        loop {
            match slot.take() {
                Some(result) => return result,
                None => slot = self.0.ready.wait(slot).expect("ticket lock poisoned"),
            }
        }
    }

    /// The result, if the worker has already delivered it (consuming it
    /// from the ticket).
    pub fn try_take(&self) -> Option<Result<Response>> {
        self.0.slot.lock().expect("ticket lock poisoned").take()
    }
}

/// The queue's mutable state, behind one mutex.
struct QueueState {
    items: VecDeque<(Request, Arc<TicketCell>)>,
    /// Set on shutdown: enqueues refuse, the worker drains what is left
    /// and exits.
    closed: bool,
    stats: QueueStats,
}

/// Everything the handles and the worker share.
struct Shared<E> {
    service: Arc<RankingService<E>>,
    state: Mutex<QueueState>,
    /// Signalled when items (or the closed flag) arrive — wakes the worker.
    not_empty: Condvar,
    /// Signalled when the worker frees space — wakes blocked enqueuers.
    not_full: Condvar,
    capacity: usize,
    batch: usize,
}

/// A cloneable, thread-safe producer handle onto a [`ServiceQueue`].
///
/// `ServiceHandle: Clone + Send + Sync` — clone one per producer thread;
/// all clones feed the same bounded buffer and worker.
pub struct ServiceHandle<E> {
    shared: Arc<Shared<E>>,
}

impl<E> Clone for ServiceHandle<E> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<E: ScoringEngine + Sync> ServiceHandle<E> {
    /// Enqueues a request, blocking while the queue is full (the
    /// backpressure path), and returns the [`Ticket`] its result will be
    /// delivered into. Errors only if the queue has been shut down.
    pub fn enqueue(&self, request: Request) -> Result<Ticket> {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        while state.items.len() >= self.shared.capacity && !state.closed {
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("queue lock poisoned");
        }
        self.push(state, request)
    }

    /// Enqueues without blocking: a full queue returns the request to the
    /// caller as `Err` and counts a [`QueueStats::rejected`] — the signal
    /// an ingestion front-end sheds load on.
    pub fn try_enqueue(&self, request: Request) -> std::result::Result<Ticket, Request> {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        if state.closed || state.items.len() >= self.shared.capacity {
            if !state.closed {
                state.stats.rejected += 1;
            }
            return Err(request);
        }
        Ok(self
            .push(state, request)
            .expect("queue verified open under the lock"))
    }

    /// Appends under the held lock, stamps the counters, and wakes the
    /// worker.
    fn push(
        &self,
        mut state: std::sync::MutexGuard<'_, QueueState>,
        request: Request,
    ) -> Result<Ticket> {
        if state.closed {
            return Err(CoreError::Ranking(
                "the service queue has been shut down".into(),
            ));
        }
        let cell = Arc::new(TicketCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        state.items.push_back((request, Arc::clone(&cell)));
        state.stats.enqueued += 1;
        let depth = state.items.len() as u64;
        state.stats.depth_high_water = state.stats.depth_high_water.max(depth);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(Ticket(cell))
    }

    /// Requests currently buffered (enqueued but not yet drained).
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("queue lock poisoned")
            .items
            .len()
    }

    /// The service this handle feeds.
    pub fn service(&self) -> &Arc<RankingService<E>> {
        &self.shared.service
    }

    /// Service-wide counters with [`ServiceStats::queue`] filled in from
    /// this queue.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.shared.service.stats();
        stats.queue = self.shared.state.lock().expect("queue lock poisoned").stats;
        stats
    }
}

/// The worker loop: sleep until requests (or shutdown) arrive, drain up
/// to `batch` of them preserving arrival order, dispatch through
/// [`RankingService::submit`] (which coalesces the rank-shaped runs),
/// and deliver each result into its ticket. Exits when the queue is
/// closed *and* empty — every accepted request is answered first.
fn worker_loop<E: ScoringEngine + Sync>(shared: &Shared<E>) {
    loop {
        let drained: Vec<(Request, Arc<TicketCell>)> = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            loop {
                if !state.items.is_empty() {
                    break;
                }
                if state.closed {
                    return;
                }
                state = shared.not_empty.wait(state).expect("queue lock poisoned");
            }
            let n = state.items.len().min(shared.batch);
            let drained: Vec<_> = state.items.drain(..n).collect();
            state.stats.drained += n as u64;
            drained
        };
        // Space was freed: wake every blocked producer (they re-check the
        // capacity under the lock).
        shared.not_full.notify_all();
        let (requests, tickets): (Vec<_>, Vec<_>) = drained.into_iter().unzip();
        let responses = shared.service.submit(requests);
        debug_assert_eq!(responses.len(), tickets.len());
        for (ticket, response) in tickets.into_iter().zip(responses) {
            *ticket.slot.lock().expect("ticket lock poisoned") = Some(response);
            ticket.ready.notify_all();
        }
    }
}

/// A running batching front-end: owns the worker thread draining a
/// bounded request queue into an `Arc`-shared [`RankingService`].
///
/// Construct with [`ServiceQueue::start`], fan [`ServiceHandle`] clones
/// out to producers, and drop (or [`ServiceQueue::shutdown`]) to stop:
/// intake closes, the backlog drains, the worker joins.
///
/// ```
/// use std::sync::Arc;
/// use capra_core::serve::{QueueConfig, RankingService, Request, ServiceQueue};
/// use capra_core::{Kb, LineageEngine, PreferenceRule, RuleRepository, Score};
///
/// let mut kb = Kb::new();
/// let user = kb.individual("peter");
/// kb.assert_concept_prob(user, "Weekend", 0.7).unwrap();
/// let doc = kb.individual("doc");
/// kb.assert_concept_prob(doc, "Nice", 0.6).unwrap();
/// let mut rules = RuleRepository::new();
/// rules.add(PreferenceRule::new(
///     "R",
///     kb.parse("Weekend").unwrap(),
///     kb.parse("Nice").unwrap(),
///     Score::new(0.8).unwrap(),
/// )).unwrap();
///
/// let service = Arc::new(RankingService::new(LineageEngine::new(), kb, rules));
/// let queue = ServiceQueue::start(Arc::clone(&service), QueueConfig::default());
/// let handle = queue.handle();
///
/// // Producers on any number of threads enqueue and await their own result.
/// let ticket = handle.enqueue(Request::Rank { user, docs: vec![doc], k: 1 }).unwrap();
/// let ranked = ticket.wait().unwrap().ranked().unwrap().to_vec();
/// assert_eq!(ranked[0].doc, doc);
/// queue.shutdown();
/// ```
pub struct ServiceQueue<E> {
    handle: ServiceHandle<E>,
    worker: Option<JoinHandle<()>>,
}

impl<E: ScoringEngine + Send + Sync + 'static> ServiceQueue<E> {
    /// Starts the worker over `service` with the given sizing. The
    /// service stays directly usable through its own `&self` API
    /// alongside the queue.
    pub fn start(service: Arc<RankingService<E>>, config: QueueConfig) -> Self {
        let shared = Arc::new(Shared {
            service,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.capacity.max(1),
            batch: config.batch.max(1),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("capra-service-queue".into())
                .spawn(move || worker_loop(&shared))
                .expect("spawning the queue worker thread")
        };
        Self {
            handle: ServiceHandle { shared },
            worker: Some(worker),
        }
    }
}

impl<E: ScoringEngine + Sync> ServiceQueue<E> {
    /// A producer handle (clone freely — one per producer thread).
    pub fn handle(&self) -> ServiceHandle<E> {
        self.handle.clone()
    }

    /// Service-wide counters with [`ServiceStats::queue`] filled in.
    pub fn stats(&self) -> ServiceStats {
        self.handle.stats()
    }

    /// Closes intake, waits for the backlog to drain, and joins the
    /// worker. Every already-accepted ticket receives its result before
    /// this returns; enqueues after shutdown fail. (Dropping the queue
    /// does the same.)
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self
                .handle
                .shared
                .state
                .lock()
                .expect("queue lock poisoned");
            state.closed = true;
        }
        // Wake everyone: the worker (to observe `closed`) and any blocked
        // producers (to fail their enqueue).
        self.handle.shared.not_empty.notify_all();
        self.handle.shared.not_full.notify_all();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("queue worker panicked");
        }
    }
}

impl<E> Drop for ServiceQueue<E> {
    fn drop(&mut self) {
        {
            let mut state = self
                .handle
                .shared
                .state
                .lock()
                .expect("queue lock poisoned");
            state.closed = true;
        }
        self.handle.shared.not_empty.notify_all();
        self.handle.shared.not_full.notify_all();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("queue worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::request::Fact;
    use crate::{Kb, LineageEngine, PreferenceRule, RuleRepository, Score};
    use capra_dl::IndividualId;

    fn fixture() -> (
        Arc<RankingService<LineageEngine>>,
        Vec<IndividualId>,
        Vec<IndividualId>,
    ) {
        let mut kb = Kb::new();
        let users: Vec<_> = (0..3)
            .map(|i| {
                let u = kb.individual(&format!("user{i}"));
                kb.assert_concept_prob(u, "Ctx", 0.3 + 0.2 * i as f64)
                    .unwrap();
                u
            })
            .collect();
        let docs: Vec<_> = (0..8)
            .map(|i| {
                let d = kb.individual(&format!("doc{i}"));
                kb.assert_concept_prob(d, "Nice", 0.1 + 0.1 * i as f64)
                    .unwrap();
                d
            })
            .collect();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R",
                kb.parse("Ctx").unwrap(),
                kb.parse("Nice").unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        let service = Arc::new(RankingService::new(LineageEngine::new(), kb, rules));
        (service, users, docs)
    }

    /// The compile-time contract the front-end promises.
    #[test]
    fn handle_is_clone_send_sync() {
        fn assert_bounds<T: Clone + Send + Sync>() {}
        assert_bounds::<ServiceHandle<LineageEngine>>();
    }

    #[test]
    fn queued_results_match_direct_calls() {
        let (service, users, docs) = fixture();
        let oracle = RankingService::new(
            LineageEngine::new(),
            (*service.kb()).clone_for_publish(),
            (*service.rules()).clone(),
        );
        let queue = ServiceQueue::start(Arc::clone(&service), QueueConfig::default());
        let handle = queue.handle();
        let tickets: Vec<_> = users
            .iter()
            .map(|&user| {
                handle
                    .enqueue(Request::Rank {
                        user,
                        docs: docs.clone(),
                        k: docs.len(),
                    })
                    .unwrap()
            })
            .collect();
        for (&user, ticket) in users.iter().zip(tickets) {
            let got = ticket.wait().unwrap();
            let got = got.ranked().unwrap();
            let want = oracle.rank(user, &docs, docs.len()).unwrap();
            assert_eq!(got.len(), want.len());
            for (a, b) in want.iter().zip(got) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        let stats = queue.stats();
        assert_eq!(stats.queue.enqueued, users.len() as u64);
        assert_eq!(stats.queue.drained, users.len() as u64);
        assert!(stats.queue.depth_high_water >= 1);
        queue.shutdown();
    }

    #[test]
    fn errors_are_delivered_per_request() {
        let (service, users, docs) = fixture();
        let queue = ServiceQueue::start(service, QueueConfig::default());
        let handle = queue.handle();
        let bad = handle
            .enqueue(Request::Assert {
                subject: users[0],
                fact: Fact::ConceptProb("Ctx".into(), 7.0), // invalid probability
            })
            .unwrap();
        let good = handle
            .enqueue(Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: 3,
            })
            .unwrap();
        assert!(bad.wait().is_err(), "the invalid assert fails its ticket");
        assert!(good.wait().is_ok(), "its neighbour is unaffected");
    }

    #[test]
    fn try_enqueue_sheds_load_when_full() {
        let (service, users, docs) = fixture();
        // Capacity 1 and a worker that can't outrun this thread's loop
        // guarantees at least one refusal without timing assumptions:
        // enqueue the first without waiting on it, then spam.
        let queue = ServiceQueue::start(
            service,
            QueueConfig {
                capacity: 1,
                batch: 1,
            },
        );
        let handle = queue.handle();
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for _ in 0..64 {
            match handle.try_enqueue(Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: docs.len(),
            }) {
                Ok(ticket) => accepted.push(ticket),
                Err(_returned) => rejected += 1,
            }
        }
        assert!(!accepted.is_empty(), "an empty queue accepts");
        for ticket in accepted {
            ticket.wait().unwrap();
        }
        let stats = queue.stats();
        assert_eq!(stats.queue.rejected, rejected);
        assert_eq!(
            stats.queue.enqueued + stats.queue.rejected,
            64,
            "every attempt is accounted exactly once"
        );
        queue.shutdown();
    }

    #[test]
    fn shutdown_drains_the_backlog_and_refuses_new_requests() {
        let (service, users, docs) = fixture();
        let queue = ServiceQueue::start(service, QueueConfig::default());
        let handle = queue.handle();
        let tickets: Vec<_> = (0..16)
            .map(|i| {
                handle
                    .enqueue(Request::Rank {
                        user: users[i % users.len()],
                        docs: docs.clone(),
                        k: docs.len(),
                    })
                    .unwrap()
            })
            .collect();
        queue.shutdown();
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "every accepted request is answered before shutdown returns"
            );
        }
        assert!(
            handle
                .enqueue(Request::Rank {
                    user: users[0],
                    docs: docs.clone(),
                    k: 1,
                })
                .is_err(),
            "post-shutdown enqueues are refused"
        );
        assert!(handle
            .try_enqueue(Request::Rank {
                user: users[0],
                docs,
                k: 1,
            })
            .is_err());
    }

    #[test]
    fn multi_producer_traffic_is_all_answered() {
        let (service, users, docs) = fixture();
        let queue = ServiceQueue::start(
            Arc::clone(&service),
            QueueConfig {
                capacity: 8,
                batch: 4,
            },
        );
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle = queue.handle();
                let users = &users;
                let docs = &docs;
                scope.spawn(move || {
                    for i in 0..25 {
                        let ticket = handle
                            .enqueue(Request::Rank {
                                user: users[(t + i) % users.len()],
                                docs: docs.clone(),
                                k: docs.len(),
                            })
                            .unwrap();
                        ticket.wait().unwrap();
                    }
                });
            }
        });
        let stats = queue.stats();
        assert_eq!(stats.queue.enqueued, 100);
        assert_eq!(stats.queue.drained, 100);
        assert_eq!(stats.rank_requests, 100);
        assert!(
            stats.queue.depth_high_water <= 8,
            "the bound holds: {stats:?}"
        );
        queue.shutdown();
    }
}
