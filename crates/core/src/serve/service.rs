//! The [`RankingService`] itself: request execution over the tenant map
//! and the shared evaluation pool.
//!
//! # Concurrency model
//!
//! The service is shared by reference: every request path takes `&self`,
//! so one `RankingService` (or an `Arc` of it) serves any number of
//! threads. Three mechanisms carry that:
//!
//! * **Epoch-published reads.** The KB and rule repository live behind a
//!   [`SharedSnapshot`] — a pair of `Arc`s republished atomically as a
//!   unit. A reader [`RankingService::snapshot`]s once per request and
//!   scores against that immutable state for the request's whole
//!   lifetime; writers clone-mutate-publish, never touching a snapshot a
//!   reader may hold. (The clone preserves the KB's identity — see
//!   [`Kb::clone_for_publish`] — so every `(kb_id, epoch)`-keyed cache
//!   survives a publish.)
//! * **Sharded tenant locks.** Per-tenant cache state is reached only
//!   through [`TenantSessions::with_session`], which locks exactly the
//!   tenant's shard: different-shard requests run in parallel, same-user
//!   requests serialize.
//! * **One writer lock.** Mutations (asserts, rule edits, registration,
//!   snapshots) serialize behind `writer`, which also owns the WAL — the
//!   publish order *is* the log order, so durability semantics are
//!   unchanged from the single-owner service.
//!
//! Lock order is `writer → shard → pool` (leaf stat mutexes last); no
//! path acquires against that order. See "Concurrency & locking order"
//! in `ARCHITECTURE.md` for the full walkthrough.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use capra_dl::{Concept, IndividualId, Vocabulary};
use capra_events::EvictionPolicy;

use crate::bind::{bind_rules_shared, RuleBinding};
use crate::engines::{rank, DocScore, EvalScratch, ScoringConfig, ScoringEngine};
use crate::multiuser::{group_scores, GroupStrategy};
use crate::parallel::{
    effective_threads, rank_top_k_bound_parallel, score_all_bound_parallel, ScratchPool,
};
use crate::persist::compact::{covered_prefix, delete_segments};
use crate::persist::snapshot::encode_snapshot;
use crate::persist::wal::{
    apply_op, decode_op, segment_file_name, segment_paths, SegmentLimit, Wal, WalOp,
    LEGACY_WAL_FILE,
};
use crate::persist::{
    recover, snapshot_paths, sync_dir, CompactionPolicy, FlushPolicy, PersistError, Recovered,
    WalStats,
};
use crate::serve::queue::QueueStats;
use crate::serve::request::{Fact, Request, Response};
use crate::serve::tenants::TenantSessions;
use crate::session::{read_through_scores, score_key, SessionStats};
use crate::topk::rank_top_k_bound;
use crate::{Kb, PreferenceRule, Result, RuleRepository, ScoringEnv};

/// The persistence attachment of a durable service.
struct DurableState {
    /// Directory holding `wal-<first_seq>.log` segments and
    /// `snapshot-<seq>.snap` files.
    dir: PathBuf,
    /// The open write-ahead log.
    wal: Wal,
}

/// The write half of the service: mutations serialize behind this lock,
/// which therefore also owns the WAL — append order is publish order.
struct WriterState {
    /// `Some` when the service was opened with
    /// [`RankingService::open_durable`]; mutations then append to the WAL.
    durable: Option<DurableState>,
}

/// A consistent, immutable view of the knowledge base and rule
/// repository, published as a unit — the read layer of the concurrent
/// service.
///
/// Readers obtain one via [`RankingService::snapshot`] (every request
/// path loads its own internally) and hold it for the request's
/// lifetime: a concurrent assert publishes a *successor* snapshot and
/// never mutates this one, so scores computed against it are exactly the
/// scores of the service state at load time. Cloning is two `Arc`
/// bumps.
///
/// The replica layer serves from the same type: a
/// [`crate::serve::ReplicaService`] exposes the epoch it has replayed up
/// to through the identical snapshot-load path.
#[derive(Clone)]
pub struct SharedSnapshot {
    kb: Arc<Kb>,
    rules: Arc<RuleRepository>,
}

impl SharedSnapshot {
    /// The knowledge base at the time this snapshot was loaded.
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// The rule repository at the time this snapshot was loaded.
    pub fn rules(&self) -> &RuleRepository {
        &self.rules
    }

    /// The binding epoch of the snapshot's KB (ABox + TBox movements) —
    /// what the binding caches validate against.
    pub fn binding_epoch(&self) -> u64 {
        self.kb.binding_epoch()
    }

    /// A scoring environment for `user` over this snapshot.
    pub(crate) fn env(&self, user: IndividualId) -> ScoringEnv<'_> {
        ScoringEnv {
            kb: &self.kb,
            rules: &self.rules,
            user,
        }
    }
}

/// Sizing and policy knobs of a [`RankingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Shards the tenant map is partitioned into (≥ 1). Each shard has
    /// its own lock, so shards are the unit of tenant-level concurrency:
    /// requests for users in different shards proceed in parallel.
    pub shards: usize,
    /// Maximum live tenant sessions across all shards (≥ 1); inserting
    /// past the cap evicts the least-recently-used tenant. Eviction only
    /// forces a deterministic re-derivation on the tenant's next request.
    pub max_sessions: usize,
    /// Eviction policy of the shared evaluation-snapshot tier (see
    /// [`capra_events::EvictionPolicy`]); bounds the service's
    /// [`capra_events::CacheFootprint`] under KB mutation.
    pub policy: EvictionPolicy,
    /// Worker threads for scoring dispatch. `1` (the default) serves
    /// requests sequentially on the caller's thread; larger values fan
    /// uncached documents out over the work-stealing parallel path, and
    /// fan [`RankingService::rank_group`] members out over the pool.
    pub threads: usize,
    /// Evaluation strategy for every engine run the service dispatches
    /// (see [`ScoringConfig`]; columnar batch sweeps by default). Mixed
    /// into each tenant's score-cache key, so reconfiguring a service
    /// never serves one path's cached scores to the other.
    pub scoring: ScoringConfig,
    /// Snapshots kept on disk after [`RankingService::save_snapshot`]
    /// prunes (newest first; clamped ≥ 1, and ≥ 2 when `compaction` is
    /// enabled — the compaction invariant needs two covering snapshots).
    pub snapshot_retain: usize,
    /// Byte threshold after which the active WAL segment is sealed and a
    /// fresh one started (see [`crate::WalStats::rotations`]).
    pub segment_bytes: u64,
    /// Record-count threshold for segment rotation (`u64::MAX` = bytes
    /// only).
    pub segment_records: u64,
    /// Whether [`RankingService::save_snapshot`] deletes covered WAL
    /// prefix segments afterwards (see [`CompactionPolicy`]; default
    /// `Never` keeps the whole log as the authoritative history).
    pub compaction: CompactionPolicy,
}

impl Default for ServiceConfig {
    /// Eight shards, 1024 live sessions, the default eviction policy,
    /// sequential dispatch, columnar evaluation, two retained snapshots,
    /// 8 MiB WAL segments, and no compaction.
    fn default() -> Self {
        Self {
            shards: 8,
            max_sessions: 1024,
            policy: EvictionPolicy::default(),
            threads: 1,
            scoring: ScoringConfig::default(),
            snapshot_retain: 2,
            segment_bytes: 8 * 1024 * 1024,
            segment_records: u64::MAX,
            compaction: CompactionPolicy::Never,
        }
    }
}

/// Service-wide counters, aggregated from every tenant's
/// [`SessionStats`] (live tenants plus counters retired with evicted
/// ones), the shared evaluation tier, and the concurrency layers (shard
/// locks, and the batching queue when one is attached).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Tenant sessions currently live.
    pub sessions_live: usize,
    /// Tenant sessions evicted by the LRU cap so far.
    pub sessions_evicted: u64,
    /// `rank`/`rank_group` requests *received* (batched or direct),
    /// whether they succeeded or returned an error — the denominator for
    /// request-level error rates.
    pub rank_requests: u64,
    /// Facts *successfully recorded* (batched or direct); rejected facts
    /// (e.g. an invalid probability) mutate nothing and do not count.
    pub asserts: u64,
    /// Coalesced dispatch runs executed by [`RankingService::submit`]
    /// (each run shares one scratch and pays one snapshot republish).
    pub coalesced_runs: u64,
    /// Tenant-shard lock acquisitions, summed over shards (the per-shard
    /// breakdown is [`RankingService::shard_lock_counts`]). The warm path
    /// takes exactly one lock per request, so this racing far ahead of
    /// `rank_requests + asserts` flags first-sight churn (each insert
    /// scans every shard for the LRU victim).
    pub shard_lock_acquisitions: u64,
    /// Counters of the batching front-end queue (all zero for a service
    /// driven directly; populated by
    /// [`ServiceQueue::stats`](crate::serve::ServiceQueue::stats)).
    pub queue: QueueStats,
    /// Component-wise total of every tenant's [`SessionStats`] — binding
    /// and score cache traffic with [`crate::CacheStats::hit_rate`]s —
    /// with the *shared* evaluation-tier footprint in
    /// [`SessionStats::footprint`] (tenants hold no evaluation memos of
    /// their own).
    pub sessions: SessionStats,
    /// Write-ahead-log traffic: records/bytes appended since the service
    /// opened (or was last cleared), and — from the last recovery —
    /// records replayed and records lost to torn or corrupt log suffixes.
    /// All zero for a service that was not opened with
    /// [`RankingService::open_durable`].
    pub wal: WalStats,
}

impl std::ops::Add for ServiceStats {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            sessions_live: self.sessions_live + rhs.sessions_live,
            sessions_evicted: self.sessions_evicted + rhs.sessions_evicted,
            rank_requests: self.rank_requests + rhs.rank_requests,
            asserts: self.asserts + rhs.asserts,
            coalesced_runs: self.coalesced_runs + rhs.coalesced_runs,
            shard_lock_acquisitions: self.shard_lock_acquisitions + rhs.shard_lock_acquisitions,
            queue: self.queue + rhs.queue,
            sessions: self.sessions + rhs.sessions,
            wal: self.wal + rhs.wal,
        }
    }
}

impl std::iter::Sum for ServiceStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), std::ops::Add::add)
    }
}

/// What the parallel group fan-out hands back to the read-through pass.
#[derive(Default)]
struct GroupFanout {
    /// Scores computed off-thread: member → document → σ.
    scores: HashMap<IndividualId, HashMap<IndividualId, f64>>,
    /// Bindings derived off-thread for members whose binding cache was
    /// stale; seeded back into the member's tenant before their counting
    /// read-through so the sequential pass never re-derives them.
    bindings: HashMap<IndividualId, Vec<Arc<RuleBinding>>>,
}

/// Translates a [`Fact`] into its WAL operation, resolving IDs back to
/// names so the record is stable across restarts.
fn fact_op(voc: &Vocabulary, subject: IndividualId, fact: &Fact) -> WalOp {
    let subject = voc.individual_name(subject).to_string();
    match fact {
        Fact::Concept(concept) => WalOp::AssertConcept {
            subject,
            concept: concept.clone(),
        },
        Fact::ConceptProb(concept, p) => WalOp::AssertConceptProb {
            subject,
            concept: concept.clone(),
            p: *p,
        },
        Fact::Role(role, object) => WalOp::AssertRole {
            subject,
            role: role.clone(),
            object: voc.individual_name(*object).to_string(),
        },
        Fact::RoleProb(role, object, p) => WalOp::AssertRoleProb {
            subject,
            role: role.clone(),
            object: voc.individual_name(*object).to_string(),
            p: *p,
        },
    }
}

/// A multi-tenant ranking front-end: one engine, one knowledge base, one
/// rule repository, any number of users — each with an LRU-capped cached
/// session, all sharing one bounded evaluation-memo tier. Every request
/// path takes `&self`, so one service instance (or an `Arc` of it — see
/// [`crate::serve::ServiceQueue`]) serves any number of threads
/// concurrently. See the [module docs](crate::serve) for the design.
///
/// ```
/// use capra_core::serve::{Fact, RankingService};
/// use capra_core::{FactorizedEngine, Kb, PreferenceRule, RuleRepository, Score};
///
/// let mut kb = Kb::new();
/// let peter = kb.individual("peter");
/// let mary = kb.individual("mary");
/// kb.assert_concept_prob(peter, "Weekend", 0.7).unwrap();
/// let docs: Vec<_> = (0..8)
///     .map(|i| {
///         let d = kb.individual(&format!("doc{i}"));
///         kb.assert_concept_prob(d, "Nice", 0.1 + 0.1 * i as f64).unwrap();
///         d
///     })
///     .collect();
/// let mut rules = RuleRepository::new();
/// rules.add(PreferenceRule::new(
///     "R",
///     kb.parse("Weekend").unwrap(),
///     kb.parse("Nice").unwrap(),
///     Score::new(0.8).unwrap(),
/// )).unwrap();
///
/// let service = RankingService::new(FactorizedEngine::new(), kb, rules);
/// // Two tenants rank the same candidates; each gets their own session.
/// let cold = service.rank(peter, &docs, 3).unwrap();
/// let _ = service.rank(mary, &docs, 3).unwrap();
/// let warm = service.rank(peter, &docs, 3).unwrap(); // served from caches
/// assert_eq!(cold[0].doc, warm[0].doc);
/// assert_eq!(service.stats().sessions_live, 2);
///
/// // A context switch invalidates exactly what it touched (re-asserting
/// // disjoins a fresh event, so the Weekend probability rises).
/// service.assert(peter, Fact::ConceptProb("Weekend".into(), 0.3)).unwrap();
/// let shifted = service.rank(peter, &docs, 3).unwrap();
/// assert_ne!(shifted[0].score.to_bits(), warm[0].score.to_bits());
/// ```
pub struct RankingService<E> {
    engine: E,
    /// The epoch-published read state. Readers clone it out (two `Arc`
    /// bumps) and never hold this lock while scoring; writers replace it
    /// under `writer`.
    published: Mutex<SharedSnapshot>,
    tenants: TenantSessions,
    pool: ScratchPool,
    threads: usize,
    rank_requests: AtomicU64,
    asserts: AtomicU64,
    coalesced_runs: AtomicU64,
    /// Serializes all mutations and owns the WAL (see [`WriterState`]).
    writer: Mutex<WriterState>,
    /// WAL traffic counters surfaced via [`ServiceStats::wal`] — a leaf
    /// mutex, only ever taken last.
    wal_stats: Mutex<WalStats>,
    /// Snapshots [`RankingService::save_snapshot`] keeps (clamped from
    /// [`ServiceConfig::snapshot_retain`]).
    snapshot_retain: usize,
    /// Whether snapshots compact the covered WAL prefix afterwards.
    compaction: CompactionPolicy,
}

impl<E: ScoringEngine + Sync> RankingService<E> {
    /// A service over `engine`, `kb` and `rules` with the default
    /// [`ServiceConfig`].
    pub fn new(engine: E, kb: Kb, rules: RuleRepository) -> Self {
        Self::with_config(engine, kb, rules, ServiceConfig::default())
    }

    /// A service with explicit sizing and policy knobs.
    pub fn with_config(engine: E, kb: Kb, rules: RuleRepository, config: ServiceConfig) -> Self {
        let retain_floor = match config.compaction {
            CompactionPolicy::Never => 1,
            // Compaction deletes segments covered by the two newest
            // snapshots; retaining fewer would delete a snapshot the
            // invariant still leans on.
            CompactionPolicy::Covered => 2,
        };
        Self {
            engine,
            published: Mutex::new(SharedSnapshot {
                kb: Arc::new(kb),
                rules: Arc::new(rules),
            }),
            tenants: TenantSessions::new(config.shards, config.max_sessions),
            pool: ScratchPool::with_config(config.policy, config.scoring),
            threads: config.threads.max(1),
            rank_requests: AtomicU64::new(0),
            asserts: AtomicU64::new(0),
            coalesced_runs: AtomicU64::new(0),
            writer: Mutex::new(WriterState { durable: None }),
            wal_stats: Mutex::new(WalStats::default()),
            snapshot_retain: config.snapshot_retain.max(retain_floor),
            compaction: config.compaction,
        }
    }

    /// Opens a *durable* service backed by `dir`: recovers the newest
    /// valid snapshot (if any), replays the WAL suffix, and keeps the log
    /// open so every subsequent mutation is persisted under `flush`.
    ///
    /// Recovery is deliberately forgiving: a corrupt or truncated snapshot
    /// falls back to the next older one (or a cold start — the WAL keeps
    /// the full mutation history, so no durable state is lost either way),
    /// and a torn, bit-flipped or otherwise invalid WAL record truncates
    /// the log back to the last valid prefix instead of failing. The
    /// replayed/dropped record counts surface in [`ServiceStats::wal`].
    ///
    /// Post-recovery scores are bit-identical to the uninterrupted run:
    /// names re-intern in the original order, probabilities travel as raw
    /// bits, and the KB epoch stamped on every record is re-checked during
    /// replay. Tenants that were live at snapshot time have their rule
    /// bindings re-derived at boot, so their first post-restart rank pays
    /// no cold bind.
    ///
    /// ```
    /// use capra_core::serve::{Fact, RankingService};
    /// use capra_core::{FlushPolicy, LineageEngine};
    ///
    /// let dir = std::env::temp_dir().join(format!("capra-doc-{}", std::process::id()));
    /// std::fs::remove_dir_all(&dir).ok();
    /// let service = RankingService::open_durable(
    ///     LineageEngine::new(), Default::default(), &dir, FlushPolicy::EveryRecord).unwrap();
    /// let peter = service.individual("peter");
    /// service.assert(peter, Fact::ConceptProb("Weekend".into(), 0.7)).unwrap();
    /// let epoch = service.kb().epoch();
    /// drop(service); // "crash"
    ///
    /// let restored = RankingService::open_durable(
    ///     LineageEngine::new(), Default::default(), &dir, FlushPolicy::EveryRecord).unwrap();
    /// assert_eq!(restored.kb().epoch(), epoch);
    /// assert_eq!(restored.stats().wal.records_replayed, 2);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn open_durable(
        engine: E,
        config: ServiceConfig,
        dir: impl AsRef<Path>,
        flush: FlushPolicy,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(PersistError::from)?;

        // Migrate a pre-segment directory: the single-file `wal.log` is
        // byte-identical to a first segment (its first record is sequence
        // 1), so it just changes name. Replicas read it in place; only the
        // writer renames.
        let legacy = dir.join(LEGACY_WAL_FILE);
        if segment_paths(&dir).is_empty() && legacy.exists() {
            std::fs::rename(&legacy, dir.join(segment_file_name(1))).map_err(PersistError::from)?;
            sync_dir(&dir).map_err(PersistError::from)?;
        }

        let recovered = recover(&dir)?;

        // Physically drop segments past the valid chain (the segmented
        // equivalent of truncating the invalid suffix), then reopen the
        // active segment for appending — truncated to the chain's end —
        // or start a fresh one.
        for path in &recovered.resume.delete {
            std::fs::remove_file(path).map_err(PersistError::from)?;
            sync_dir(&dir).map_err(PersistError::from)?;
        }
        let wal = Wal::open_dir(
            &dir,
            flush,
            recovered.next_seq,
            recovered.resume.active,
            SegmentLimit {
                max_bytes: config.segment_bytes.max(1),
                max_records: config.segment_records.max(1),
            },
        )?;

        let mut service = Self::with_config(engine, Kb::new(), RuleRepository::new(), config);
        service.reinstall(recovered);
        service
            .writer
            .get_mut()
            .expect("writer lock poisoned")
            .durable = Some(DurableState { dir, wal });
        Ok(service)
    }

    /// Installs a [`Recovered`] state into this service: KB, rules, the
    /// persisted evaluation tier, the recovery counters, and warm binding
    /// seeds for the tenants that were live at snapshot time (their first
    /// post-boot request then needs no cold bind). Everything previously
    /// cached is dropped — also the re-open path behind
    /// [`crate::serve::ReplicaService`]'s resnapshot.
    pub(crate) fn reinstall(&mut self, recovered: Recovered) {
        let Recovered {
            kb,
            rules,
            prob,
            expect,
            warm_users,
            replayed,
            truncated,
            ..
        } = recovered;
        self.tenants.clear();
        self.pool = ScratchPool::with_config(self.pool.policy(), self.pool.scoring());
        {
            let wal = self.wal_stats.get_mut().expect("wal stats lock poisoned");
            wal.records_replayed = replayed;
            wal.records_truncated = truncated;
        }
        // Re-publish the persisted evaluation tier through the ordinary
        // pool cycle (no-op when the snapshot carried none).
        self.pool.install_snapshot(&kb, prob, expect);
        for name in warm_users {
            let Some(user) = kb.voc.find_individual(&name) else {
                continue;
            };
            let env = ScoringEnv {
                kb: &kb,
                rules: &rules,
                user,
            };
            let bindings = bind_rules_shared(&env);
            self.tenants
                .with_session(user, |tenant| tenant.bindings.seed(&env, &bindings));
        }
        *self.published.get_mut().expect("published lock poisoned") = SharedSnapshot {
            kb: Arc::new(kb),
            rules: Arc::new(rules),
        };
    }

    /// Replays one WAL record body against the live state — the replica
    /// tail-apply path, enforcing the same semantic checks recovery does
    /// (decodable operation, successful apply, post-apply epoch match).
    ///
    /// Takes `&mut self`, so no snapshot can be loaded concurrently;
    /// the published state is edited in place when this service holds the
    /// only reference to it (the steady tailing case), and re-cloned once
    /// — identity-preserving — when an outstanding reader still pins the
    /// current `Arc`.
    pub(crate) fn apply_replayed(
        &mut self,
        epoch: u64,
        body: &[u8],
    ) -> std::result::Result<(), PersistError> {
        let published = self.published.get_mut().expect("published lock poisoned");
        if Arc::get_mut(&mut published.kb).is_none() {
            published.kb = Arc::new(published.kb.clone_for_publish());
        }
        if Arc::get_mut(&mut published.rules).is_none() {
            published.rules = Arc::new((*published.rules).clone());
        }
        let kb = Arc::get_mut(&mut published.kb).expect("kb Arc just made unique");
        let rules = Arc::get_mut(&mut published.rules).expect("rules Arc just made unique");
        let op = decode_op(body, &mut kb.voc)?;
        apply_op(kb, rules, op)?;
        if kb.epoch() != epoch {
            return Err(PersistError::Invalid(format!(
                "replayed record's epoch stamp {epoch} does not match the post-apply epoch {}",
                kb.epoch()
            )));
        }
        self.wal_stats
            .get_mut()
            .expect("wal stats lock poisoned")
            .records_replayed += 1;
        Ok(())
    }

    /// Writes a full snapshot of the current state (KB, rules, the shared
    /// evaluation tier, and the live-tenant set) to the durable directory,
    /// atomically (write to a temp file, fsync, rename, fsync the
    /// directory). Older snapshots beyond the newest
    /// [`ServiceConfig::snapshot_retain`] are pruned.
    ///
    /// With [`CompactionPolicy::Never`] (the default) the WAL is kept
    /// whole — it is the authoritative history, which is what lets
    /// recovery survive *every* snapshot being lost. With
    /// [`CompactionPolicy::Covered`] the active segment is sealed first
    /// (so this snapshot's records become deletable by a later pass) and
    /// prefix segments covered by the two newest valid snapshots are
    /// deleted afterwards, oldest first, each unlink made durable before
    /// the next — a crash between any two deletes leaves a contiguous
    /// chain that recovers with zero loss.
    ///
    /// Runs under the writer lock, so the state it captures is exactly
    /// one published snapshot — concurrent ranks proceed, concurrent
    /// mutations wait.
    ///
    /// Errors with [`PersistError::Invalid`] if the service was not opened
    /// with [`RankingService::open_durable`].
    pub fn save_snapshot(&self) -> Result<()> {
        let compaction = self.compaction;
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let Some(durable) = &mut writer.durable else {
            return Err(PersistError::Invalid(
                "save_snapshot requires a durable service (use open_durable)".into(),
            )
            .into());
        };
        durable.wal.flush()?;
        if compaction != CompactionPolicy::Never && durable.wal.rotate()? {
            self.wal_stats
                .lock()
                .expect("wal stats lock poisoned")
                .rotations += 1;
        }
        let seq = durable.wal.next_seq() - 1;
        // Stable while the writer lock is held: publishes only happen
        // under it.
        let snap = self.load();
        let tier = self.pool.export_tier(snap.kb());
        let warm: Vec<String> = self
            .tenants
            .live_users()
            .into_iter()
            .map(|u| snap.kb().voc.individual_name(u).to_string())
            .collect();
        let bytes = encode_snapshot(snap.kb(), snap.rules(), &tier, &warm, seq);
        let tmp = durable.dir.join("snapshot.tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp).map_err(PersistError::from)?;
            f.write_all(&bytes).map_err(PersistError::from)?;
            f.sync_all().map_err(PersistError::from)?;
        }
        std::fs::rename(&tmp, durable.dir.join(format!("snapshot-{seq}.snap")))
            .map_err(PersistError::from)?;
        // Make the rename durable: without the directory fsync a crash
        // here can lose the new snapshot's directory entry even though its
        // bytes were synced.
        sync_dir(&durable.dir).map_err(PersistError::from)?;
        for (_, path) in snapshot_paths(&durable.dir)
            .into_iter()
            .skip(self.snapshot_retain)
        {
            if std::fs::remove_file(path).is_ok() {
                let _ = sync_dir(&durable.dir);
            }
        }
        if compaction == CompactionPolicy::Covered {
            let plan = covered_prefix(&durable.dir);
            let out = delete_segments(&durable.dir, &plan, None)?;
            let mut wal = self.wal_stats.lock().expect("wal stats lock poisoned");
            wal.segments_deleted += out.segments_deleted;
            wal.bytes_reclaimed += out.bytes_reclaimed;
        }
        Ok(())
    }

    /// Whether this service persists mutations (was opened with
    /// [`RankingService::open_durable`]).
    pub fn is_durable(&self) -> bool {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .durable
            .is_some()
    }

    /// Appends one operation to the WAL, stamped with `kb`'s (post-apply)
    /// KB epoch. No-op for non-durable services. The caller holds the
    /// writer lock (`durable` borrows from it).
    fn log_op(&self, durable: &mut Option<DurableState>, kb: &Kb, op: &WalOp) -> Result<()> {
        if let Some(durable) = durable {
            let out = durable.wal.append(kb.epoch(), op, &kb.voc)?;
            let mut wal = self.wal_stats.lock().expect("wal stats lock poisoned");
            wal.records_appended += 1;
            wal.bytes_appended += out.bytes;
            if out.rotated {
                wal.rotations += 1;
            }
        }
        Ok(())
    }

    /// The engine every request scores through.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Loads the current published snapshot — the internal name for what
    /// [`RankingService::snapshot`] exposes.
    fn load(&self) -> SharedSnapshot {
        self.published
            .lock()
            .expect("published lock poisoned")
            .clone()
    }

    /// Atomically replaces the published snapshot. Callers hold the
    /// writer lock, so publishes are totally ordered.
    fn publish(&self, next: SharedSnapshot) {
        *self.published.lock().expect("published lock poisoned") = next;
    }

    /// Runs `mutate` against the published KB under the published-slot
    /// lock: **in place** when no loaded snapshot pins the `Arc` (the
    /// steady state between requests — readers briefly block on the slot
    /// lock and then see the successor), via identity-preserving
    /// clone-and-swap when a reader holds the snapshot (its view stays
    /// immutable). Callers hold the writer lock, so mutations are
    /// totally ordered either way and the returned snapshot — for WAL
    /// encoding after the slot lock is released — cannot be superseded
    /// until the caller releases it. On `Err` nothing is swapped in and
    /// nothing the caller observes has changed: the KB's mutating
    /// primitives validate before touching scored state (a rejected op
    /// can leave interned names or an advanced fresh-variable suffix
    /// behind, both epoch-neutral and invisible to scoring and replay).
    fn mutate_kb<R>(
        &self,
        mutate: impl FnOnce(&mut Kb) -> Result<R>,
    ) -> Result<(R, SharedSnapshot)> {
        let mut published = self.published.lock().expect("published lock poisoned");
        match Arc::get_mut(&mut published.kb) {
            Some(kb) => {
                let value = mutate(kb)?;
                Ok((value, published.clone()))
            }
            None => {
                let mut kb = published.kb.clone_for_publish();
                let value = mutate(&mut kb)?;
                published.kb = Arc::new(kb);
                Ok((value, published.clone()))
            }
        }
    }

    /// The current consistent `(kb, rules)` snapshot (two `Arc` bumps).
    /// Every request path loads its own internally; use this to run
    /// read-only analysis against the same immutable state a request
    /// would see.
    pub fn snapshot(&self) -> SharedSnapshot {
        self.load()
    }

    /// The knowledge base at the current publish point (read-only;
    /// mutations go through [`RankingService::assert`] and
    /// [`RankingService::individual`] so the service sees every epoch
    /// movement). The returned `Arc` is a stable snapshot: a concurrent
    /// assert publishes a successor instead of mutating it.
    pub fn kb(&self) -> Arc<Kb> {
        self.load().kb
    }

    /// The rule repository at the current publish point (read-only;
    /// mutations go through [`RankingService::add_rule`] /
    /// [`RankingService::remove_rule`]).
    pub fn rules(&self) -> Arc<RuleRepository> {
        self.load().rules
    }

    /// Interns (or looks up) an individual — users and documents alike
    /// must be registered before they appear in requests. Looking up an
    /// existing name moves no epoch and leaves every cache warm.
    ///
    /// On a durable service a *new* registration (the KB epoch moved) is
    /// logged best-effort: the signature has no error channel, and replay
    /// degrades gracefully if the record is lost — a later record that
    /// references the unknown name truncates at that point rather than
    /// crashing.
    pub fn individual(&self, name: &str) -> IndividualId {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let ((id, moved), next) = self
            .mutate_kb(|kb| {
                let before = kb.epoch();
                let id = kb.individual(name);
                Ok((id, kb.epoch() != before))
            })
            .expect("interning is infallible");
        if !moved {
            return id;
        }
        let _ = self.log_op(
            &mut writer.durable,
            next.kb(),
            &WalOp::Individual {
                name: name.to_string(),
            },
        );
        id
    }

    /// Parses a concept expression against the service KB's vocabulary —
    /// the way to build [`PreferenceRule`]s for a service that was opened
    /// cold via [`RankingService::open_durable`] (name interning mutates
    /// the vocabulary, so the read-only [`RankingService::kb`] view cannot
    /// parse). Interning moves no epoch, but the grown vocabulary is
    /// published so later requests resolve the new names.
    pub fn parse(&self, text: &str) -> Result<Concept> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let (concept, _snap) = self.mutate_kb(|kb| kb.parse(text))?;
        Ok(concept)
    }

    /// Adds a preference rule. Affected bindings re-derive lazily on each
    /// tenant's next request (the binding cache validates per rule).
    pub fn add_rule(&self, rule: PreferenceRule) -> Result<()> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let snap = self.load();
        let op = writer.durable.is_some().then(|| WalOp::AddRule {
            name: rule.name.clone(),
            context: rule.context.clone(),
            preference: rule.preference.clone(),
            sigma: rule.sigma.get(),
        });
        let mut rules = (*snap.rules).clone();
        rules.add(rule)?;
        let next = SharedSnapshot {
            kb: Arc::clone(&snap.kb),
            rules: Arc::new(rules),
        };
        self.publish(next.clone());
        if let Some(op) = op {
            self.log_op(&mut writer.durable, next.kb(), &op)?;
        }
        Ok(())
    }

    /// Removes the named preference rule.
    ///
    /// On a durable service the removal is logged after it succeeds; if
    /// the append itself fails the published removal stands and the error
    /// is returned — the caller knows durability lagged.
    pub fn remove_rule(&self, name: &str) -> Result<PreferenceRule> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let snap = self.load();
        let mut rules = (*snap.rules).clone();
        let rule = rules.remove(name)?;
        let next = SharedSnapshot {
            kb: Arc::clone(&snap.kb),
            rules: Arc::new(rules),
        };
        self.publish(next.clone());
        self.log_op(
            &mut writer.durable,
            next.kb(),
            &WalOp::RemoveRule {
                name: name.to_string(),
            },
        )?;
        Ok(rule)
    }

    /// Asserts a typed [`Fact`] — the context-switch path. Bumps the KB's
    /// binding epoch, so every tenant's stale bindings (and only those)
    /// re-derive on their next request. A rejected fact (e.g. an invalid
    /// probability) mutates nothing, does not count toward
    /// [`ServiceStats::asserts`], and is never logged.
    ///
    /// Concurrency: an in-flight rank that loaded the previous snapshot
    /// pins it, so the mutation happens on a private identity-preserving
    /// clone and becomes visible atomically at publish — that rank
    /// completes against its immutable view and is linearized before
    /// this assert. With no reader pinning the snapshot (the steady
    /// state) the published KB mutates in place under the slot lock,
    /// skipping the clone; requests arriving after either form see the
    /// new epoch.
    pub fn assert(&self, subject: IndividualId, fact: Fact) -> Result<()> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let durable = writer.durable.is_some();
        let (op, next) = self.mutate_kb(|kb| {
            let op = durable.then(|| fact_op(&kb.voc, subject, &fact));
            match &fact {
                Fact::Concept(concept) => {
                    kb.assert_concept(subject, concept);
                }
                Fact::ConceptProb(concept, p) => {
                    kb.assert_concept_prob(subject, concept, *p)?;
                }
                Fact::Role(role, object) => {
                    kb.assert_role(subject, role, *object);
                }
                Fact::RoleProb(role, object, p) => {
                    kb.assert_role_prob(subject, role, *object, *p)?;
                }
            }
            Ok(op)
        })?;
        self.asserts.fetch_add(1, Ordering::Relaxed);
        if let Some(op) = op {
            self.log_op(&mut writer.durable, next.kb(), &op)?;
        }
        Ok(())
    }

    /// Ranks `docs` for `user`, returning the top `k` (best first).
    ///
    /// `k >= docs.len()` ranks the full set through the tenant's score
    /// cache — the steady-state warm path is a table lookup plus a sort.
    /// `k < docs.len()` uses bound-based early termination
    /// ([`crate::rank_top_k`]); the adaptively chosen exact scores are not
    /// added to the score cache.
    ///
    /// Scores are bit-identical to a cold [`crate::bind_rules`] +
    /// `score_all` + [`crate::rank`] for the same user, whatever mix of
    /// caches serves the request. Takes `&self`: concurrent ranks for
    /// users in different tenant shards run in parallel; same-user
    /// requests serialize on the shard lock.
    pub fn rank(
        &self,
        user: IndividualId,
        docs: &[IndividualId],
        k: usize,
    ) -> Result<Vec<DocScore>> {
        let snap = self.load();
        let mut scratch = None;
        let out = self.rank_with_scratch(&snap, user, docs, k, &mut scratch);
        self.finish_scratch(scratch);
        out
    }

    /// Ranks `docs` for a group of users — each member scored through
    /// their own tenant session, combined with `strategy` (see
    /// [`crate::score_group`]) — returning the top `k` of the combined
    /// ranking. Group aggregation needs every member's full score list, so
    /// `k` only truncates the final ranking. All members score against
    /// one snapshot load, so a concurrent assert never splits the group
    /// across epochs.
    pub fn rank_group(
        &self,
        users: &[IndividualId],
        docs: &[IndividualId],
        k: usize,
        strategy: &GroupStrategy,
    ) -> Result<Vec<DocScore>> {
        let snap = self.load();
        let mut scratch = None;
        let out = self.rank_group_with_scratch(&snap, users, docs, k, strategy, &mut scratch);
        self.finish_scratch(scratch);
        out
    }

    /// Executes a request batch in order, coalescing every run of
    /// consecutive rank-shaped requests into one dispatch: with
    /// sequential dispatch the run shares a single lazily checked-out
    /// evaluation scratch and pays at most one snapshot republish, so
    /// every request after the first starts from its predecessors' memos
    /// for free; with [`ServiceConfig::threads`] > 1 uncached work fans
    /// out through the shared pool exactly as direct requests do (sharing
    /// then happens via the pool's republished snapshots). An
    /// [`Request::Assert`] bumps the KB epoch and therefore acts as a
    /// barrier between runs; each run loads one KB snapshot, so every
    /// request in it scores the same published state.
    ///
    /// Responses are returned in request order; a failed request yields
    /// its error without aborting the rest of the batch.
    pub fn submit(&self, batch: impl IntoIterator<Item = Request>) -> Vec<Result<Response>> {
        let mut out = Vec::new();
        let mut pending = Vec::new();
        for request in batch {
            match request {
                Request::Assert { subject, fact } => {
                    self.flush_run(&mut pending, &mut out);
                    out.push(self.assert(subject, fact).map(|()| Response::Asserted));
                }
                ranking => pending.push(ranking),
            }
        }
        self.flush_run(&mut pending, &mut out);
        out
    }

    /// Dispatches one coalesced run of rank-shaped requests (see
    /// [`RankingService::submit`]). The scratch is checked out lazily:
    /// a run answered entirely from score caches never touches the pool.
    fn flush_run(&self, pending: &mut Vec<Request>, out: &mut Vec<Result<Response>>) {
        if pending.is_empty() {
            return;
        }
        self.coalesced_runs.fetch_add(1, Ordering::Relaxed);
        let snap = self.load();
        let mut scratch = None;
        for request in pending.drain(..) {
            let response = match request {
                Request::Rank { user, docs, k } => self
                    .rank_with_scratch(&snap, user, &docs, k, &mut scratch)
                    .map(Response::Ranked),
                Request::RankGroup {
                    users,
                    docs,
                    k,
                    strategy,
                } => self
                    .rank_group_with_scratch(&snap, &users, &docs, k, &strategy, &mut scratch)
                    .map(Response::Ranked),
                Request::Assert { .. } => unreachable!("asserts flush the run"),
            };
            out.push(response);
        }
        self.finish_scratch(scratch);
    }

    /// Returns a lazily checked-out scratch to the pool and republishes
    /// its overlay; a `None` (the fully warm case — no evaluation ran)
    /// costs nothing.
    fn finish_scratch(&self, scratch: Option<EvalScratch>) {
        if let Some(scratch) = scratch {
            self.pool.give_back(scratch);
            self.pool.republish();
        }
    }

    /// The one request path behind [`RankingService::rank`] and the
    /// batched dispatch, over a lazily checked-out scratch: a
    /// steady-state warm request is answered from the score cache without
    /// ever touching the pool — same cost as a hand-managed session.
    /// Uncached work either uses the lazily checked-out scratch
    /// (sequential) or, with [`ServiceConfig::threads`] > 1, fans out
    /// through the shared pool directly — the same split for direct and
    /// batched requests, so batching never silently loses parallelism.
    /// The caller settles the scratch via
    /// [`RankingService::finish_scratch`].
    ///
    /// The whole request body runs inside the tenant's shard-lock scope
    /// (`shard → pool` in the documented lock order): the tenant's caches
    /// cannot be touched by another thread mid-request, which is what
    /// makes same-user requests serialize.
    fn rank_with_scratch(
        &self,
        snap: &SharedSnapshot,
        user: IndividualId,
        docs: &[IndividualId],
        k: usize,
        scratch: &mut Option<EvalScratch>,
    ) -> Result<Vec<DocScore>> {
        self.rank_requests.fetch_add(1, Ordering::Relaxed);
        self.tenants.with_session(user, |tenant| {
            let env = snap.env(user);
            let bindings = tenant.bindings.bind(&env);
            if k < docs.len() {
                if self.threads > 1 {
                    rank_top_k_bound_parallel(
                        &self.engine,
                        &env,
                        &bindings,
                        docs,
                        k,
                        self.threads,
                        &self.pool,
                        true,
                    )
                } else {
                    let scratch = scratch.get_or_insert_with(|| self.pool.checkout(snap.kb()));
                    rank_top_k_bound(&env, &self.engine, &bindings, docs, k, scratch)
                }
            } else {
                let scores = read_through_scores(
                    &self.engine,
                    user,
                    self.pool.scoring(),
                    &mut tenant.scores,
                    docs,
                    &bindings,
                    |missing| {
                        if self.threads > 1 {
                            score_all_bound_parallel(
                                &self.engine,
                                &env,
                                &bindings,
                                missing,
                                self.threads,
                                &self.pool,
                                true,
                            )
                        } else {
                            let scratch =
                                scratch.get_or_insert_with(|| self.pool.checkout(snap.kb()));
                            self.engine
                                .score_all_bound(&env, &bindings, missing, scratch)
                        }
                    },
                )?;
                Ok(rank(scores))
            }
        })
    }

    /// The group path behind [`RankingService::rank_group`] and the
    /// batched dispatch (see [`RankingService::rank_with_scratch`] for
    /// the scratch and parallel-dispatch contract).
    ///
    /// With [`ServiceConfig::threads`] > 1 and more than one member, the
    /// *members* are the unit of parallelism: [`RankingService::group_fanout`]
    /// scores every member's uncached documents over the shared pool
    /// first, and the per-member read-through below then consumes those
    /// precomputed scores. Documents a member loses between the fan-out
    /// and their read-through (a mid-group LRU eviction re-derives the
    /// bindings, dropping the tenant's score entry) are scored again as
    /// `gaps` — rare, and bit-identical either way.
    fn rank_group_with_scratch(
        &self,
        snap: &SharedSnapshot,
        users: &[IndividualId],
        docs: &[IndividualId],
        k: usize,
        strategy: &GroupStrategy,
        scratch: &mut Option<EvalScratch>,
    ) -> Result<Vec<DocScore>> {
        self.rank_requests.fetch_add(1, Ordering::Relaxed);
        let mut fanout = if self.threads > 1 && users.len() > 1 {
            self.group_fanout(snap, users, docs)?
        } else {
            GroupFanout::default()
        };
        let computed = fanout.scores;
        let config = self.pool.scoring();
        let per_user = users
            .iter()
            .map(|&user| {
                self.tenants.with_session(user, |tenant| {
                    let env = snap.env(user);
                    if let Some(fresh) = fanout.bindings.remove(&user) {
                        tenant.bindings.seed(&env, &fresh);
                    }
                    let bindings = tenant.bindings.bind(&env);
                    read_through_scores(
                        &self.engine,
                        user,
                        config,
                        &mut tenant.scores,
                        docs,
                        &bindings,
                        |missing| {
                            let ready = computed.get(&user);
                            let mut out = Vec::with_capacity(missing.len());
                            let mut gaps: Vec<IndividualId> = Vec::new();
                            for &doc in missing {
                                match ready.and_then(|scores| scores.get(&doc)) {
                                    Some(&score) => out.push(DocScore { doc, score }),
                                    None => gaps.push(doc),
                                }
                            }
                            if !gaps.is_empty() {
                                if self.threads > 1 {
                                    out.extend(score_all_bound_parallel(
                                        &self.engine,
                                        &env,
                                        &bindings,
                                        &gaps,
                                        self.threads,
                                        &self.pool,
                                        true,
                                    )?);
                                } else {
                                    let scratch = scratch
                                        .get_or_insert_with(|| self.pool.checkout(snap.kb()));
                                    out.extend(
                                        self.engine
                                            .score_all_bound(&env, &bindings, &gaps, scratch)?,
                                    );
                                }
                            }
                            Ok(out)
                        },
                    )
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let mut ranked = rank(group_scores(&per_user, strategy)?);
        ranked.truncate(k);
        Ok(ranked)
    }

    /// The planning and scoring phases of the parallel group path: preview
    /// each *distinct* member's cached state without touching any counters
    /// ([`crate::session::BindingCache::peek`] and `peek_missing`), then
    /// fan the members with work out over the shared pool — workers claim
    /// members from an atomic cursor and keep one pooled scratch across
    /// claims, the same shape as parallel top-k's chunk stealing. Members
    /// whose binding cache is stale are *bound by their worker too*
    /// (binding is the per-member cost a cold group is dominated by); the
    /// derived bindings come back in [`GroupFanout::bindings`] so the
    /// read-through can seed them into the tenant instead of re-deriving
    /// sequentially. A stale binding also invalidates the member's score
    /// entry by pointer identity, so those members score every requested
    /// document. Memos travel between workers through the pool's
    /// republished snapshots. The counting cache pass happens afterwards,
    /// per member in request order, so counters and the surviving error
    /// (the minimum member index's) match the sequential path exactly.
    ///
    /// Each planning peek takes one shard lock and releases it before the
    /// fan-out spawns; the workers themselves touch only the pool and the
    /// immutable snapshot, never a tenant lock.
    fn group_fanout(
        &self,
        snap: &SharedSnapshot,
        users: &[IndividualId],
        docs: &[IndividualId],
    ) -> Result<GroupFanout> {
        let config = self.pool.scoring();
        let mut seen = HashSet::new();
        type PlanEntry = (
            IndividualId,
            Option<Vec<Arc<RuleBinding>>>,
            Vec<IndividualId>,
        );
        let mut plan: Vec<PlanEntry> = Vec::new();
        for &user in users {
            if !seen.insert(user) {
                continue;
            }
            let env = snap.env(user);
            let entry =
                self.tenants
                    .with_session(user, |tenant| match tenant.bindings.peek(&env) {
                        Some(bindings) => {
                            let missing = tenant.scores.peek_missing(
                                &score_key(&self.engine, user, config),
                                &bindings,
                                docs,
                            );
                            (!missing.is_empty()).then_some((user, Some(bindings), missing))
                        }
                        None => Some((user, None, docs.to_vec())),
                    });
            if let Some(entry) = entry {
                plan.push(entry);
            }
        }
        if plan.is_empty() {
            return Ok(GroupFanout::default());
        }
        let engine = &self.engine;
        let kb = snap.kb();
        let rules = snap.rules();
        let pool = &self.pool;
        let plan_ref = &plan;
        let threads = effective_threads(self.threads, plan.len());
        let cursor = AtomicUsize::new(0);
        // Raised by the first worker that hits an engine error: the rest
        // stop claiming members instead of scoring doomed ones.
        let failed = AtomicBool::new(false);
        type WorkerItem = (usize, Result<Vec<DocScore>>, Option<Vec<Arc<RuleBinding>>>);
        let worker_outputs: Vec<Vec<WorkerItem>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let failed = &failed;
                    scope.spawn(move || {
                        let mut scratch = pool.checkout(kb);
                        let mut out = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= plan_ref.len() {
                                break;
                            }
                            let (user, cached, missing) = &plan_ref[i];
                            let env = ScoringEnv {
                                kb,
                                rules,
                                user: *user,
                            };
                            let fresh = match cached {
                                Some(_) => None,
                                None => Some(bind_rules_shared(&env)),
                            };
                            let bindings = cached
                                .as_deref()
                                .or(fresh.as_deref())
                                .expect("either cached or freshly derived bindings");
                            let result =
                                engine.score_all_bound(&env, bindings, missing, &mut scratch);
                            let stop = result.is_err();
                            if stop {
                                failed.store(true, Ordering::Relaxed);
                            }
                            out.push((i, result, fresh));
                            if stop {
                                break;
                            }
                        }
                        pool.give_back(scratch);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group scoring worker panicked"))
                .collect()
        });
        self.pool.republish();
        let mut fanout = GroupFanout::default();
        let mut first_err: Option<(usize, crate::CoreError)> = None;
        for (i, result, fresh) in worker_outputs.into_iter().flatten() {
            if let Some(bindings) = fresh {
                fanout.bindings.insert(plan[i].0, bindings);
            }
            match result {
                Ok(scores) => {
                    fanout.scores.insert(
                        plan[i].0,
                        scores.into_iter().map(|s| (s.doc, s.score)).collect(),
                    );
                }
                Err(e) => {
                    let earlier = match &first_err {
                        None => true,
                        Some((j, _)) => i < *j,
                    };
                    if earlier {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(fanout),
        }
    }

    /// Service-wide counters and footprints (see [`ServiceStats`]).
    /// Takes locks one at a time (never nested), so under concurrent
    /// traffic the totals are a near-point-in-time reading of monotone
    /// counters, not a frozen cut.
    pub fn stats(&self) -> ServiceStats {
        let mut sessions = self.tenants.total_stats();
        sessions.footprint = self.pool.footprint();
        sessions.batch = self.pool.batch_stats();
        ServiceStats {
            sessions_live: self.tenants.live(),
            sessions_evicted: self.tenants.evicted(),
            rank_requests: self.rank_requests.load(Ordering::Relaxed),
            asserts: self.asserts.load(Ordering::Relaxed),
            coalesced_runs: self.coalesced_runs.load(Ordering::Relaxed),
            shard_lock_acquisitions: self.tenants.lock_counts().iter().sum(),
            queue: QueueStats::default(),
            wal: *self.wal_stats.lock().expect("wal stats lock poisoned"),
            sessions,
        }
    }

    /// Shard-lock acquisition counts, one per tenant shard (index order
    /// matches the shard layout). A hot shard — one counter racing ahead
    /// of its siblings — means its tenants contend; re-shard or re-key.
    pub fn shard_lock_counts(&self) -> Vec<u64> {
        self.tenants.lock_counts()
    }

    /// One tenant's cache counters, if their session is currently live
    /// (the footprint field is zero — evaluation memos are shared
    /// service-wide and reported by [`RankingService::stats`]).
    pub fn tenant_stats(&self, user: IndividualId) -> Option<SessionStats> {
        self.tenants.stats_of(user)
    }

    /// Drops every tenant session and the shared snapshot tier, and
    /// resets all [`ServiceStats`] counters — post-clear stats describe
    /// the fresh service only, matching the clear semantics of the cache
    /// layers below. Engine, KB, rules and configuration are kept, and
    /// results are unaffected: subsequent requests recompute
    /// bit-identical scores.
    ///
    /// On a durable service the WAL stays attached and open: the log file
    /// is untouched (it still reflects the KB and rules, which `clear`
    /// keeps), sequence numbers continue where they left off, and only the
    /// [`WalStats`] counters reset with the other stats.
    ///
    /// Takes `&mut self` — clearing is an ownership-level reset, not a
    /// request; callers holding only `&self` cannot reach it.
    pub fn clear(&mut self) {
        self.tenants.clear();
        self.pool = ScratchPool::with_config(self.pool.policy(), self.pool.scoring());
        *self.rank_requests.get_mut() = 0;
        *self.asserts.get_mut() = 0;
        *self.coalesced_runs.get_mut() = 0;
        *self.wal_stats.get_mut().expect("wal stats lock poisoned") = WalStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{score_group, LineageEngine, PreferenceRule, Score, ScoringSession};

    fn fixture(
        n_users: usize,
        n_docs: usize,
    ) -> (Kb, RuleRepository, Vec<IndividualId>, Vec<IndividualId>) {
        let mut kb = Kb::new();
        let users: Vec<_> = (0..n_users)
            .map(|i| {
                let u = kb.individual(&format!("user{i}"));
                kb.assert_concept_prob(u, "Ctx0", 0.2 + 0.5 * (i as f64 / n_users as f64))
                    .unwrap();
                if i % 2 == 0 {
                    kb.assert_concept(u, "Ctx1");
                }
                u
            })
            .collect();
        let docs: Vec<_> = (0..n_docs)
            .map(|i| {
                let d = kb.individual(&format!("doc{i}"));
                kb.assert_concept_prob(d, "Feat0", 0.1 + 0.8 * (i as f64 / n_docs as f64))
                    .unwrap();
                kb.assert_concept_prob(d, "Feat1", 0.9 - 0.7 * (i as f64 / n_docs as f64))
                    .unwrap();
                d
            })
            .collect();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R0",
                kb.parse("Ctx0").unwrap(),
                kb.parse("Feat0").unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "R1",
                kb.parse("Ctx1").unwrap(),
                kb.parse("Feat0 AND Feat1").unwrap(),
                Score::new(0.4).unwrap(),
            ))
            .unwrap();
        (kb, rules, users, docs)
    }

    /// The cold reference a service `rank` must reproduce bit-for-bit.
    fn cold_rank(
        kb: &Kb,
        rules: &RuleRepository,
        user: IndividualId,
        docs: &[IndividualId],
        k: usize,
    ) -> Vec<DocScore> {
        let env = ScoringEnv { kb, rules, user };
        let mut full = rank(LineageEngine::new().score_all(&env, docs).unwrap());
        full.truncate(k);
        full
    }

    #[test]
    fn warm_rank_is_bit_identical_and_cached() {
        let (kb, rules, users, docs) = fixture(3, 12);
        let service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        for &user in &users {
            let want = cold_rank(&service.kb(), &rules, user, &docs, docs.len());
            let cold = service.rank(user, &docs, docs.len()).unwrap();
            let warm = service.rank(user, &docs, docs.len()).unwrap();
            for ((a, b), c) in want.iter().zip(&cold).zip(&warm) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(b.doc, c.doc);
                assert_eq!(b.score.to_bits(), c.score.to_bits());
            }
        }
        let stats = service.stats();
        assert_eq!(stats.sessions_live, users.len());
        assert_eq!(stats.rank_requests, 2 * users.len() as u64);
        assert!(
            stats.sessions.scores.hits >= (users.len() * docs.len()) as u64,
            "second round is served from the score caches: {:?}",
            stats.sessions
        );
        assert!(stats.sessions.bindings.hit_rate() > 0.0);
        assert!(
            stats.shard_lock_acquisitions >= stats.rank_requests,
            "every request takes at least one shard lock: {stats:?}"
        );
        assert_eq!(stats.queue, QueueStats::default(), "no queue attached");
    }

    #[test]
    fn top_k_is_exact_prefix() {
        // The lineage engine: exact under the fixture's correlated rules
        // (both share each document's Feat0 variable, which the strict
        // factorized engine rejects by design).
        let (kb, rules, users, docs) = fixture(2, 16);
        let service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        for k in [1, 5, 16, 99] {
            let engine = LineageEngine::new();
            let kb = service.kb();
            let env = ScoringEnv {
                kb: &kb,
                rules: &rules,
                user: users[0],
            };
            let mut want = rank(engine.score_all(&env, &docs).unwrap());
            want.truncate(k);
            let got = service.rank(users[0], &docs, k).unwrap();
            assert_eq!(got.len(), k.min(docs.len()));
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.doc, b.doc, "k={k}");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn rank_group_matches_score_group() {
        let (kb, rules, users, docs) = fixture(4, 10);
        let strategy = GroupStrategy::LeastMisery;
        let mut session = ScoringSession::new();
        let want = rank(
            score_group(
                &mut session,
                &LineageEngine::new(),
                &kb,
                &rules,
                &users,
                &docs,
                &strategy,
            )
            .unwrap(),
        );
        let service = RankingService::new(LineageEngine::new(), kb, rules);
        let got = service
            .rank_group(&users, &docs, docs.len(), &strategy)
            .unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // Truncation only shortens the list.
        let top3 = service.rank_group(&users, &docs, 3, &strategy).unwrap();
        assert_eq!(&got[..3], &top3[..]);
    }

    #[test]
    fn batch_coalesces_runs_and_preserves_order() {
        let (kb, rules, users, docs) = fixture(3, 8);
        let service = RankingService::new(LineageEngine::new(), kb, rules);
        let batch = vec![
            Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: docs.len(),
            },
            Request::Rank {
                user: users[1],
                docs: docs.clone(),
                k: 4,
            },
            Request::Assert {
                subject: users[0],
                fact: Fact::ConceptProb("Ctx0".into(), 0.9),
            },
            Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: docs.len(),
            },
            Request::RankGroup {
                users: users.clone(),
                docs: docs.clone(),
                k: 3,
                strategy: GroupStrategy::Product,
            },
        ];
        let responses = service.submit(batch);
        assert_eq!(responses.len(), 5);
        assert!(matches!(responses[2], Ok(Response::Asserted)));
        let stats = service.stats();
        assert_eq!(
            stats.coalesced_runs, 2,
            "two rank runs separated by the assert barrier"
        );
        assert_eq!(stats.rank_requests, 4);
        assert_eq!(stats.asserts, 1);
        // Each ranked response equals the cold reference *at its point in
        // the batch*: the last one sees the asserted context switch.
        let want = cold_rank(&service.kb(), &service.rules(), users[0], &docs, docs.len());
        let got = responses[3].as_ref().unwrap().ranked().unwrap();
        for (a, b) in want.iter().zip(got) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // The batched group request (after the barrier) matches the direct
        // group call on an identically-prepared service.
        let want_group = service
            .rank_group(&users, &docs, 3, &GroupStrategy::Product)
            .unwrap();
        let got_group = responses[4].as_ref().unwrap().ranked().unwrap();
        assert_eq!(got_group.len(), 3);
        for (a, b) in want_group.iter().zip(got_group) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn batch_errors_do_not_abort_the_rest() {
        let (kb, rules, users, docs) = fixture(2, 6);
        let service = RankingService::new(LineageEngine::new(), kb, rules);
        let batch = vec![
            Request::Assert {
                subject: users[0],
                fact: Fact::ConceptProb("Ctx0".into(), 1.5), // invalid probability
            },
            Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: docs.len(),
            },
        ];
        let responses = service.submit(batch);
        assert!(responses[0].is_err(), "invalid probability is rejected");
        assert!(responses[1].is_ok(), "the batch continues past the error");
        assert_eq!(
            service.stats().asserts,
            0,
            "a rejected fact mutates nothing and is not counted as asserted"
        );
    }

    #[test]
    fn lru_eviction_is_invisible_in_results() {
        let (kb, rules, users, docs) = fixture(4, 8);
        let service = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules.clone(),
            ServiceConfig {
                max_sessions: 2,
                ..ServiceConfig::default()
            },
        );
        // Cycle users so every request past the first two evicts someone.
        for round in 0..3 {
            for &user in &users {
                let want = cold_rank(&service.kb(), &rules, user, &docs, docs.len());
                let got = service.rank(user, &docs, docs.len()).unwrap();
                for (a, b) in want.iter().zip(&got) {
                    assert_eq!(a.doc, b.doc, "round {round}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
        let stats = service.stats();
        assert_eq!(stats.sessions_live, 2, "cap holds");
        assert!(stats.sessions_evicted >= 4, "cycling 4 users over cap 2");
    }

    #[test]
    fn parallel_dispatch_matches_sequential() {
        let (kb, rules, users, docs) = fixture(2, 24);
        let seq = RankingService::new(LineageEngine::new(), kb.clone(), rules.clone());
        let par = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules,
            ServiceConfig {
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        for &user in &users {
            for k in [4, docs.len()] {
                let a = seq.rank(user, &docs, k).unwrap();
                let b = par.rank(user, &docs, k).unwrap();
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.doc, y.doc);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
        // Batched dispatch honours the thread count too: a batch through
        // the parallel service matches the sequential one bit for bit.
        let batch = |docs: &[IndividualId]| {
            vec![
                Request::Assert {
                    subject: users[0],
                    fact: Fact::ConceptProb("Ctx0".into(), 0.85),
                },
                Request::Rank {
                    user: users[0],
                    docs: docs.to_vec(),
                    k: 6,
                },
                Request::RankGroup {
                    users: users.to_vec(),
                    docs: docs.to_vec(),
                    k: docs.len(),
                    strategy: GroupStrategy::Product,
                },
            ]
        };
        let a = seq.submit(batch(&docs));
        let b = par.submit(batch(&docs));
        for (x, y) in a.iter().zip(&b) {
            match (x.as_ref().unwrap(), y.as_ref().unwrap()) {
                (Response::Asserted, Response::Asserted) => {}
                (Response::Ranked(xs), Response::Ranked(ys)) => {
                    assert_eq!(xs.len(), ys.len());
                    for (s, t) in xs.iter().zip(ys) {
                        assert_eq!(s.doc, t.doc);
                        assert_eq!(s.score.to_bits(), t.score.to_bits());
                    }
                }
                other => panic!("response shape mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_counters_surface_in_service_stats() {
        let (kb, rules, users, docs) = fixture(2, 8);
        let columnar = RankingService::new(LineageEngine::new(), kb.clone(), rules.clone());
        columnar.rank(users[0], &docs, docs.len()).unwrap();
        let batch = columnar.stats().sessions.batch;
        assert!(batch.sweeps > 0, "a full-set rank runs column sweeps");
        assert_eq!(batch.lanes, docs.len() as u64, "one lane per document");
        assert!(batch.fallbacks <= batch.lanes, "dedup never exceeds lanes");
        assert!(batch.lanes_per_sweep() > 1.0, "lanes amortize the sweep");
        // The same request through a scalar-pinned service records nothing
        // — the counters attribute work to the path that did it.
        let scalar = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules,
            ServiceConfig {
                scoring: ScoringConfig::scalar(),
                ..ServiceConfig::default()
            },
        );
        scalar.rank(users[0], &docs, docs.len()).unwrap();
        assert_eq!(scalar.stats().sessions.batch, crate::BatchStats::default());
    }

    #[test]
    fn group_fanout_matches_sequential_groups() {
        // The member fan-out (threads > 1) against the sequential group
        // path, including duplicate members and an LRU cap smaller than
        // the group — the mid-group eviction hazard the phased design
        // covers with its gap recompute.
        let (kb, rules, users, docs) = fixture(4, 12);
        let members: Vec<_> = users.iter().copied().chain([users[1]]).collect();
        let seq = RankingService::new(LineageEngine::new(), kb.clone(), rules.clone());
        let fan = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules,
            ServiceConfig {
                max_sessions: 2,
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        for strategy in [GroupStrategy::Product, GroupStrategy::LeastMisery] {
            let want = seq
                .rank_group(&members, &docs, docs.len(), &strategy)
                .unwrap();
            let got = fan
                .rank_group(&members, &docs, docs.len(), &strategy)
                .unwrap();
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        assert!(
            fan.stats().sessions.batch.sweeps > 0,
            "the fan-out's pooled scratches feed the batch counters"
        );
    }

    #[test]
    fn shared_reference_serves_concurrent_ranks() {
        // The acceptance criterion made compile-time fact: `rank` through
        // a `&RankingService` shared across scoped threads, each thread's
        // results bit-identical to the cold oracle.
        let (kb, rules, users, docs) = fixture(4, 8);
        let service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        let want: Vec<_> = users
            .iter()
            .map(|&u| cold_rank(&service.kb(), &rules, u, &docs, docs.len()))
            .collect();
        let service = &service;
        std::thread::scope(|scope| {
            for (i, &user) in users.iter().enumerate() {
                let docs = &docs;
                let want = &want[i];
                scope.spawn(move || {
                    for _ in 0..3 {
                        let got = service.rank(user, docs, docs.len()).unwrap();
                        assert_eq!(got.len(), want.len());
                        for (a, b) in want.iter().zip(&got) {
                            assert_eq!(a.doc, b.doc);
                            assert_eq!(a.score.to_bits(), b.score.to_bits());
                        }
                    }
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.rank_requests, 3 * users.len() as u64);
        assert_eq!(stats.sessions_live, users.len());
    }

    #[test]
    fn concurrent_asserts_and_ranks_converge_to_the_published_state() {
        // Writers and readers race; whatever interleaving happened, the
        // final published KB is the one all post-quiescence ranks agree
        // with, bit-identically.
        let (kb, rules, users, docs) = fixture(3, 8);
        let service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        let service = &service;
        std::thread::scope(|scope| {
            // Two readers hammer users 0 and 1.
            for &user in &users[..2] {
                let docs = &docs;
                scope.spawn(move || {
                    for _ in 0..20 {
                        service.rank(user, docs, docs.len()).unwrap();
                    }
                });
            }
            // One writer keeps moving user 2's context.
            let writer_user = users[2];
            scope.spawn(move || {
                for i in 0..20 {
                    let p = 0.05 + 0.9 * (i as f64 / 20.0);
                    service
                        .assert(writer_user, Fact::ConceptProb("Ctx0".into(), p))
                        .unwrap();
                }
            });
        });
        assert_eq!(service.stats().asserts, 20);
        // Quiesced: every user's rank now matches the cold oracle over the
        // final published KB.
        let kb = service.kb();
        for &user in &users {
            let want = cold_rank(&kb, &rules, user, &docs, docs.len());
            let got = service.rank(user, &docs, docs.len()).unwrap();
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn snapshot_is_stable_across_a_concurrent_assert() {
        // A loaded snapshot is immutable: an assert that lands after the
        // load publishes a successor without touching the loaded state.
        let (kb, rules, users, docs) = fixture(1, 6);
        let service = RankingService::new(LineageEngine::new(), kb, rules);
        let before = service.snapshot();
        let epoch = before.kb().epoch();
        service
            .assert(users[0], Fact::ConceptProb("Ctx0".into(), 0.9))
            .unwrap();
        assert_eq!(before.kb().epoch(), epoch, "loaded snapshot unchanged");
        let after = service.snapshot();
        assert!(after.kb().epoch() > epoch, "successor published");
        assert_eq!(
            before.kb().id(),
            after.kb().id(),
            "publish preserves KB identity, so caches survive"
        );
        drop(docs);
    }

    #[test]
    fn service_stats_add_and_sum() {
        let (kb, rules, users, docs) = fixture(2, 6);
        let service = RankingService::new(LineageEngine::new(), kb, rules);
        service.rank(users[0], &docs, docs.len()).unwrap();
        service
            .assert(users[0], Fact::ConceptProb("Ctx0".into(), 0.4))
            .unwrap();
        let one = service.stats();
        let two = one + one;
        assert_eq!(two.rank_requests, 2 * one.rank_requests);
        assert_eq!(two.asserts, 2 * one.asserts);
        assert_eq!(two.shard_lock_acquisitions, 2 * one.shard_lock_acquisitions);
        let summed: ServiceStats = [one, one, ServiceStats::default()].into_iter().sum();
        assert_eq!(summed, two);
    }

    #[test]
    fn clear_drops_state_but_keeps_serving() {
        let (kb, rules, users, docs) = fixture(2, 8);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        let before = service.rank(users[0], &docs, docs.len()).unwrap();
        assert!(service.stats().sessions.footprint.entries > 0);
        service.clear();
        let stats = service.stats();
        assert_eq!(stats.sessions_live, 0);
        assert_eq!(stats.sessions.footprint.entries, 0);
        assert_eq!(
            (stats.rank_requests, stats.asserts, stats.coalesced_runs),
            (0, 0, 0),
            "clear resets the request counters with the caches, so one \
             stats snapshot never mixes pre- and post-clear epochs"
        );
        let after = service.rank(users[0], &docs, docs.len()).unwrap();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn rule_updates_apply_to_subsequent_requests() {
        let (kb, rules, users, docs) = fixture(1, 6);
        let service = RankingService::new(LineageEngine::new(), kb, rules);
        let before = service.rank(users[0], &docs, docs.len()).unwrap();
        let removed = service.remove_rule("R0").unwrap();
        let after = service.rank(users[0], &docs, docs.len()).unwrap();
        assert_ne!(
            before.iter().map(|s| s.score.to_bits()).collect::<Vec<_>>(),
            after.iter().map(|s| s.score.to_bits()).collect::<Vec<_>>(),
            "dropping an applicable rule changes scores"
        );
        service.add_rule(removed).unwrap();
        let restored = service.rank(users[0], &docs, docs.len()).unwrap();
        for (a, b) in before.iter().zip(&restored) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    /// Fresh scratch directory for a durability test (removed first, so a
    /// previous failed run can't leak state in).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("capra-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Builds the `fixture(3, 8)` state through the durable mutation API,
    /// so every step lands in the WAL.
    fn populate_durable(
        service: &RankingService<LineageEngine>,
    ) -> (Vec<IndividualId>, Vec<IndividualId>) {
        let (n_users, n_docs) = (3, 8);
        let users: Vec<_> = (0..n_users)
            .map(|i| {
                let u = service.individual(&format!("user{i}"));
                service
                    .assert(
                        u,
                        Fact::ConceptProb("Ctx0".into(), 0.2 + 0.5 * (i as f64 / n_users as f64)),
                    )
                    .unwrap();
                if i % 2 == 0 {
                    service.assert(u, Fact::Concept("Ctx1".into())).unwrap();
                }
                u
            })
            .collect();
        let docs: Vec<_> = (0..n_docs)
            .map(|i| {
                let d = service.individual(&format!("doc{i}"));
                service
                    .assert(
                        d,
                        Fact::ConceptProb("Feat0".into(), 0.1 + 0.8 * (i as f64 / n_docs as f64)),
                    )
                    .unwrap();
                service
                    .assert(
                        d,
                        Fact::ConceptProb("Feat1".into(), 0.9 - 0.7 * (i as f64 / n_docs as f64)),
                    )
                    .unwrap();
                d
            })
            .collect();
        let (ctx0, feat0) = (
            service.parse("Ctx0").unwrap(),
            service.parse("Feat0").unwrap(),
        );
        service
            .add_rule(PreferenceRule::new(
                "R0",
                ctx0,
                feat0,
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        let (ctx1, both) = (
            service.parse("Ctx1").unwrap(),
            service.parse("Feat0 AND Feat1").unwrap(),
        );
        service
            .add_rule(PreferenceRule::new(
                "R1",
                ctx1,
                both,
                Score::new(0.4).unwrap(),
            ))
            .unwrap();
        (users, docs)
    }

    #[test]
    fn durable_snapshot_plus_wal_suffix_restores_bit_identical_scores() {
        let dir = scratch_dir("roundtrip");
        let service = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        assert!(service.is_durable());
        let (users, docs) = populate_durable(&service);
        for &u in &users {
            service.rank(u, &docs, docs.len()).unwrap();
        }
        service.save_snapshot().unwrap();
        // Post-snapshot mutations land only in the WAL.
        service
            .assert(users[1], Fact::ConceptProb("Ctx0".into(), 0.99))
            .unwrap();
        service.remove_rule("R1").unwrap();
        let want: Vec<Vec<DocScore>> = users
            .iter()
            .map(|&u| service.rank(u, &docs, docs.len()).unwrap())
            .collect();
        let epoch = service.kb().epoch();
        drop(service); // crash point: nothing after the last append survives

        let restored = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        assert_eq!(restored.kb().epoch(), epoch);
        let wal = restored.stats().wal;
        assert_eq!(
            (wal.records_replayed, wal.records_truncated),
            (2, 0),
            "only the post-snapshot suffix replays: {wal:?}"
        );
        // Snapshot-covered tenants boot warm: the first rank adds no new
        // binding misses.
        for &u in &users {
            let u = restored
                .kb()
                .voc
                .find_individual(restored.kb().voc.individual_name(u))
                .unwrap();
            let misses_at_boot = restored.tenant_stats(u).unwrap().bindings.misses;
            restored.rank(u, &docs, docs.len()).unwrap();
            assert_eq!(
                restored.tenant_stats(u).unwrap().bindings.misses,
                misses_at_boot,
                "warm-seeded tenant must not cold-bind on its first rank"
            );
        }
        for (&u, want) in users.iter().zip(&want) {
            let got = restored.rank(u, &docs, docs.len()).unwrap();
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_keeps_wal_attached_and_sequence_continuous() {
        let dir = scratch_dir("clear");
        let mut service = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        let (users, _docs) = populate_durable(&service);
        let appended_before = service.stats().wal.records_appended;
        assert!(appended_before > 0);

        service.clear();
        assert_eq!(
            service.stats().wal,
            WalStats::default(),
            "clear resets WAL counters with the other stats"
        );
        assert!(service.is_durable(), "clear must not detach the log");
        assert_eq!(service.rules().len(), 2, "clear keeps KB and rules");

        // Post-clear mutations keep appending to the same log...
        service
            .assert(users[0], Fact::ConceptProb("Ctx0".into(), 0.5))
            .unwrap();
        assert_eq!(service.stats().wal.records_appended, 1);
        let epoch = service.kb().epoch();
        drop(service);

        // ...and the sequence numbering stayed continuous: recovery (which
        // enforces seq continuity) replays every record, before and after
        // the clear.
        let restored = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        let wal = restored.stats().wal;
        assert_eq!(wal.records_truncated, 0, "{wal:?}");
        assert_eq!(wal.records_replayed, appended_before + 1, "{wal:?}");
        assert_eq!(restored.kb().epoch(), epoch);
        assert_eq!(restored.rules().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_snapshot_requires_durable_service() {
        let (kb, rules, _, _) = fixture(1, 2);
        let service = RankingService::new(LineageEngine::new(), kb, rules);
        assert!(!service.is_durable());
        assert!(service.save_snapshot().is_err());
    }
}
