//! The [`RankingService`] itself: request execution over the tenant map
//! and the shared evaluation pool.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use capra_dl::{Concept, IndividualId};
use capra_events::EvictionPolicy;

use crate::bind::{bind_rules_shared, RuleBinding};
use crate::engines::{rank, DocScore, EvalScratch, ScoringConfig, ScoringEngine};
use crate::multiuser::{group_scores, GroupStrategy};
use crate::parallel::{
    effective_threads, rank_top_k_bound_parallel, score_all_bound_parallel, ScratchPool,
};
use crate::persist::compact::{covered_prefix, delete_segments};
use crate::persist::snapshot::encode_snapshot;
use crate::persist::wal::{
    apply_op, decode_op, segment_file_name, segment_paths, SegmentLimit, Wal, WalOp,
    LEGACY_WAL_FILE,
};
use crate::persist::{
    recover, snapshot_paths, sync_dir, CompactionPolicy, FlushPolicy, PersistError, Recovered,
    WalStats,
};
use crate::serve::request::{Fact, Request, Response};
use crate::serve::tenants::TenantSessions;
use crate::session::{read_through_scores, score_key, SessionStats};
use crate::topk::rank_top_k_bound;
use crate::{Kb, PreferenceRule, Result, RuleRepository, ScoringEnv};

/// The persistence attachment of a durable service.
struct DurableState {
    /// Directory holding `wal-<first_seq>.log` segments and
    /// `snapshot-<seq>.snap` files.
    dir: PathBuf,
    /// The open write-ahead log.
    wal: Wal,
}

/// Sizing and policy knobs of a [`RankingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Shards the tenant map is partitioned into (≥ 1). Shards are the
    /// unit a future concurrent front-end locks independently; for an
    /// in-process service they only affect the storage layout.
    pub shards: usize,
    /// Maximum live tenant sessions across all shards (≥ 1); inserting
    /// past the cap evicts the least-recently-used tenant. Eviction only
    /// forces a deterministic re-derivation on the tenant's next request.
    pub max_sessions: usize,
    /// Eviction policy of the shared evaluation-snapshot tier (see
    /// [`capra_events::EvictionPolicy`]); bounds the service's
    /// [`capra_events::CacheFootprint`] under KB mutation.
    pub policy: EvictionPolicy,
    /// Worker threads for scoring dispatch. `1` (the default) serves
    /// requests sequentially on the caller's thread; larger values fan
    /// uncached documents out over the work-stealing parallel path, and
    /// fan [`RankingService::rank_group`] members out over the pool.
    pub threads: usize,
    /// Evaluation strategy for every engine run the service dispatches
    /// (see [`ScoringConfig`]; columnar batch sweeps by default). Mixed
    /// into each tenant's score-cache key, so reconfiguring a service
    /// never serves one path's cached scores to the other.
    pub scoring: ScoringConfig,
    /// Snapshots kept on disk after [`RankingService::save_snapshot`]
    /// prunes (newest first; clamped ≥ 1, and ≥ 2 when `compaction` is
    /// enabled — the compaction invariant needs two covering snapshots).
    pub snapshot_retain: usize,
    /// Byte threshold after which the active WAL segment is sealed and a
    /// fresh one started (see [`crate::WalStats::rotations`]).
    pub segment_bytes: u64,
    /// Record-count threshold for segment rotation (`u64::MAX` = bytes
    /// only).
    pub segment_records: u64,
    /// Whether [`RankingService::save_snapshot`] deletes covered WAL
    /// prefix segments afterwards (see [`CompactionPolicy`]; default
    /// `Never` keeps the whole log as the authoritative history).
    pub compaction: CompactionPolicy,
}

impl Default for ServiceConfig {
    /// Eight shards, 1024 live sessions, the default eviction policy,
    /// sequential dispatch, columnar evaluation, two retained snapshots,
    /// 8 MiB WAL segments, and no compaction.
    fn default() -> Self {
        Self {
            shards: 8,
            max_sessions: 1024,
            policy: EvictionPolicy::default(),
            threads: 1,
            scoring: ScoringConfig::default(),
            snapshot_retain: 2,
            segment_bytes: 8 * 1024 * 1024,
            segment_records: u64::MAX,
            compaction: CompactionPolicy::Never,
        }
    }
}

/// Service-wide counters, aggregated from every tenant's
/// [`SessionStats`] (live tenants plus counters retired with evicted
/// ones) and the shared evaluation tier.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Tenant sessions currently live.
    pub sessions_live: usize,
    /// Tenant sessions evicted by the LRU cap so far.
    pub sessions_evicted: u64,
    /// `rank`/`rank_group` requests *received* (batched or direct),
    /// whether they succeeded or returned an error — the denominator for
    /// request-level error rates.
    pub rank_requests: u64,
    /// Facts *successfully recorded* (batched or direct); rejected facts
    /// (e.g. an invalid probability) mutate nothing and do not count.
    pub asserts: u64,
    /// Coalesced dispatch runs executed by [`RankingService::submit`]
    /// (each run shares one scratch and pays one snapshot republish).
    pub coalesced_runs: u64,
    /// Component-wise total of every tenant's [`SessionStats`] — binding
    /// and score cache traffic with [`crate::CacheStats::hit_rate`]s —
    /// with the *shared* evaluation-tier footprint in
    /// [`SessionStats::footprint`] (tenants hold no evaluation memos of
    /// their own).
    pub sessions: SessionStats,
    /// Write-ahead-log traffic: records/bytes appended since the service
    /// opened (or was last cleared), and — from the last recovery —
    /// records replayed and records lost to torn or corrupt log suffixes.
    /// All zero for a service that was not opened with
    /// [`RankingService::open_durable`].
    pub wal: WalStats,
}

/// What the parallel group fan-out hands back to the read-through pass.
#[derive(Default)]
struct GroupFanout {
    /// Scores computed off-thread: member → document → σ.
    scores: HashMap<IndividualId, HashMap<IndividualId, f64>>,
    /// Bindings derived off-thread for members whose binding cache was
    /// stale; seeded back into the member's tenant before their counting
    /// read-through so the sequential pass never re-derives them.
    bindings: HashMap<IndividualId, Vec<Arc<RuleBinding>>>,
}

/// A multi-tenant ranking front-end: one engine, one knowledge base, one
/// rule repository, any number of users — each with an LRU-capped cached
/// session, all sharing one bounded evaluation-memo tier. See the
/// [module docs](crate::serve) for the design.
///
/// ```
/// use capra_core::serve::{Fact, RankingService};
/// use capra_core::{FactorizedEngine, Kb, PreferenceRule, RuleRepository, Score};
///
/// let mut kb = Kb::new();
/// let peter = kb.individual("peter");
/// let mary = kb.individual("mary");
/// kb.assert_concept_prob(peter, "Weekend", 0.7).unwrap();
/// let docs: Vec<_> = (0..8)
///     .map(|i| {
///         let d = kb.individual(&format!("doc{i}"));
///         kb.assert_concept_prob(d, "Nice", 0.1 + 0.1 * i as f64).unwrap();
///         d
///     })
///     .collect();
/// let mut rules = RuleRepository::new();
/// rules.add(PreferenceRule::new(
///     "R",
///     kb.parse("Weekend").unwrap(),
///     kb.parse("Nice").unwrap(),
///     Score::new(0.8).unwrap(),
/// )).unwrap();
///
/// let mut service = RankingService::new(FactorizedEngine::new(), kb, rules);
/// // Two tenants rank the same candidates; each gets their own session.
/// let cold = service.rank(peter, &docs, 3).unwrap();
/// let _ = service.rank(mary, &docs, 3).unwrap();
/// let warm = service.rank(peter, &docs, 3).unwrap(); // served from caches
/// assert_eq!(cold[0].doc, warm[0].doc);
/// assert_eq!(service.stats().sessions_live, 2);
///
/// // A context switch invalidates exactly what it touched (re-asserting
/// // disjoins a fresh event, so the Weekend probability rises).
/// service.assert(peter, Fact::ConceptProb("Weekend".into(), 0.3)).unwrap();
/// let shifted = service.rank(peter, &docs, 3).unwrap();
/// assert_ne!(shifted[0].score.to_bits(), warm[0].score.to_bits());
/// ```
pub struct RankingService<E> {
    engine: E,
    kb: Kb,
    rules: RuleRepository,
    tenants: TenantSessions,
    pool: ScratchPool,
    threads: usize,
    rank_requests: u64,
    asserts: u64,
    coalesced_runs: u64,
    /// `Some` when the service was opened with
    /// [`RankingService::open_durable`]; mutations then append to the WAL.
    durable: Option<DurableState>,
    /// WAL traffic counters surfaced via [`ServiceStats::wal`].
    wal_stats: WalStats,
    /// Snapshots [`RankingService::save_snapshot`] keeps (clamped from
    /// [`ServiceConfig::snapshot_retain`]).
    snapshot_retain: usize,
    /// Whether snapshots compact the covered WAL prefix afterwards.
    compaction: CompactionPolicy,
}

impl<E: ScoringEngine + Sync> RankingService<E> {
    /// A service over `engine`, `kb` and `rules` with the default
    /// [`ServiceConfig`].
    pub fn new(engine: E, kb: Kb, rules: RuleRepository) -> Self {
        Self::with_config(engine, kb, rules, ServiceConfig::default())
    }

    /// A service with explicit sizing and policy knobs.
    pub fn with_config(engine: E, kb: Kb, rules: RuleRepository, config: ServiceConfig) -> Self {
        let retain_floor = match config.compaction {
            CompactionPolicy::Never => 1,
            // Compaction deletes segments covered by the two newest
            // snapshots; retaining fewer would delete a snapshot the
            // invariant still leans on.
            CompactionPolicy::Covered => 2,
        };
        Self {
            engine,
            kb,
            rules,
            tenants: TenantSessions::new(config.shards, config.max_sessions),
            pool: ScratchPool::with_config(config.policy, config.scoring),
            threads: config.threads.max(1),
            rank_requests: 0,
            asserts: 0,
            coalesced_runs: 0,
            durable: None,
            wal_stats: WalStats::default(),
            snapshot_retain: config.snapshot_retain.max(retain_floor),
            compaction: config.compaction,
        }
    }

    /// Opens a *durable* service backed by `dir`: recovers the newest
    /// valid snapshot (if any), replays the WAL suffix, and keeps the log
    /// open so every subsequent mutation is persisted under `flush`.
    ///
    /// Recovery is deliberately forgiving: a corrupt or truncated snapshot
    /// falls back to the next older one (or a cold start — the WAL keeps
    /// the full mutation history, so no durable state is lost either way),
    /// and a torn, bit-flipped or otherwise invalid WAL record truncates
    /// the log back to the last valid prefix instead of failing. The
    /// replayed/dropped record counts surface in [`ServiceStats::wal`].
    ///
    /// Post-recovery scores are bit-identical to the uninterrupted run:
    /// names re-intern in the original order, probabilities travel as raw
    /// bits, and the KB epoch stamped on every record is re-checked during
    /// replay. Tenants that were live at snapshot time have their rule
    /// bindings re-derived at boot, so their first post-restart rank pays
    /// no cold bind.
    ///
    /// ```
    /// use capra_core::serve::{Fact, RankingService};
    /// use capra_core::{FlushPolicy, LineageEngine};
    ///
    /// let dir = std::env::temp_dir().join(format!("capra-doc-{}", std::process::id()));
    /// std::fs::remove_dir_all(&dir).ok();
    /// let mut service = RankingService::open_durable(
    ///     LineageEngine::new(), Default::default(), &dir, FlushPolicy::EveryRecord).unwrap();
    /// let peter = service.individual("peter");
    /// service.assert(peter, Fact::ConceptProb("Weekend".into(), 0.7)).unwrap();
    /// let epoch = service.kb().epoch();
    /// drop(service); // "crash"
    ///
    /// let restored = RankingService::open_durable(
    ///     LineageEngine::new(), Default::default(), &dir, FlushPolicy::EveryRecord).unwrap();
    /// assert_eq!(restored.kb().epoch(), epoch);
    /// assert_eq!(restored.stats().wal.records_replayed, 2);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    pub fn open_durable(
        engine: E,
        config: ServiceConfig,
        dir: impl AsRef<Path>,
        flush: FlushPolicy,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(PersistError::from)?;

        // Migrate a pre-segment directory: the single-file `wal.log` is
        // byte-identical to a first segment (its first record is sequence
        // 1), so it just changes name. Replicas read it in place; only the
        // writer renames.
        let legacy = dir.join(LEGACY_WAL_FILE);
        if segment_paths(&dir).is_empty() && legacy.exists() {
            std::fs::rename(&legacy, dir.join(segment_file_name(1))).map_err(PersistError::from)?;
            sync_dir(&dir).map_err(PersistError::from)?;
        }

        let recovered = recover(&dir)?;

        // Physically drop segments past the valid chain (the segmented
        // equivalent of truncating the invalid suffix), then reopen the
        // active segment for appending — truncated to the chain's end —
        // or start a fresh one.
        for path in &recovered.resume.delete {
            std::fs::remove_file(path).map_err(PersistError::from)?;
            sync_dir(&dir).map_err(PersistError::from)?;
        }
        let wal = Wal::open_dir(
            &dir,
            flush,
            recovered.next_seq,
            recovered.resume.active,
            SegmentLimit {
                max_bytes: config.segment_bytes.max(1),
                max_records: config.segment_records.max(1),
            },
        )?;

        let mut service = Self::with_config(engine, Kb::new(), RuleRepository::new(), config);
        service.reinstall(recovered);
        service.durable = Some(DurableState { dir, wal });
        Ok(service)
    }

    /// Installs a [`Recovered`] state into this service: KB, rules, the
    /// persisted evaluation tier, the recovery counters, and warm binding
    /// seeds for the tenants that were live at snapshot time (their first
    /// post-boot request then needs no cold bind). Everything previously
    /// cached is dropped — also the re-open path behind
    /// [`crate::serve::ReplicaService`]'s resnapshot.
    pub(crate) fn reinstall(&mut self, recovered: Recovered) {
        let Recovered {
            kb,
            rules,
            prob,
            expect,
            warm_users,
            replayed,
            truncated,
            ..
        } = recovered;
        self.kb = kb;
        self.rules = rules;
        self.tenants.clear();
        self.pool = ScratchPool::with_config(self.pool.policy(), self.pool.scoring());
        self.wal_stats.records_replayed = replayed;
        self.wal_stats.records_truncated = truncated;
        // Re-publish the persisted evaluation tier through the ordinary
        // pool cycle (no-op when the snapshot carried none).
        self.pool.install_snapshot(&self.kb, prob, expect);
        for name in warm_users {
            let Some(user) = self.kb.voc.find_individual(&name) else {
                continue;
            };
            let env = ScoringEnv {
                kb: &self.kb,
                rules: &self.rules,
                user,
            };
            let bindings = bind_rules_shared(&env);
            self.tenants.session(user).bindings.seed(&env, &bindings);
        }
    }

    /// Replays one WAL record body against the live state — the replica
    /// tail-apply path, enforcing the same semantic checks recovery does
    /// (decodable operation, successful apply, post-apply epoch match).
    pub(crate) fn apply_replayed(
        &mut self,
        epoch: u64,
        body: &[u8],
    ) -> std::result::Result<(), PersistError> {
        let op = decode_op(body, &mut self.kb.voc)?;
        apply_op(&mut self.kb, &mut self.rules, op)?;
        if self.kb.epoch() != epoch {
            return Err(PersistError::Invalid(format!(
                "replayed record's epoch stamp {epoch} does not match the post-apply epoch {}",
                self.kb.epoch()
            )));
        }
        self.wal_stats.records_replayed += 1;
        Ok(())
    }

    /// Writes a full snapshot of the current state (KB, rules, the shared
    /// evaluation tier, and the live-tenant set) to the durable directory,
    /// atomically (write to a temp file, fsync, rename, fsync the
    /// directory). Older snapshots beyond the newest
    /// [`ServiceConfig::snapshot_retain`] are pruned.
    ///
    /// With [`CompactionPolicy::Never`] (the default) the WAL is kept
    /// whole — it is the authoritative history, which is what lets
    /// recovery survive *every* snapshot being lost. With
    /// [`CompactionPolicy::Covered`] the active segment is sealed first
    /// (so this snapshot's records become deletable by a later pass) and
    /// prefix segments covered by the two newest valid snapshots are
    /// deleted afterwards, oldest first, each unlink made durable before
    /// the next — a crash between any two deletes leaves a contiguous
    /// chain that recovers with zero loss.
    ///
    /// Errors with [`PersistError::Invalid`] if the service was not opened
    /// with [`RankingService::open_durable`].
    pub fn save_snapshot(&mut self) -> Result<()> {
        let compaction = self.compaction;
        let Some(durable) = &mut self.durable else {
            return Err(PersistError::Invalid(
                "save_snapshot requires a durable service (use open_durable)".into(),
            )
            .into());
        };
        durable.wal.flush()?;
        if compaction != CompactionPolicy::Never && durable.wal.rotate()? {
            self.wal_stats.rotations += 1;
        }
        let seq = durable.wal.next_seq() - 1;
        let tier = self.pool.export_tier(&self.kb);
        let warm: Vec<String> = self
            .tenants
            .live_users()
            .map(|u| self.kb.voc.individual_name(u).to_string())
            .collect();
        let bytes = encode_snapshot(&self.kb, &self.rules, &tier, &warm, seq);
        let tmp = durable.dir.join("snapshot.tmp");
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp).map_err(PersistError::from)?;
            f.write_all(&bytes).map_err(PersistError::from)?;
            f.sync_all().map_err(PersistError::from)?;
        }
        std::fs::rename(&tmp, durable.dir.join(format!("snapshot-{seq}.snap")))
            .map_err(PersistError::from)?;
        // Make the rename durable: without the directory fsync a crash
        // here can lose the new snapshot's directory entry even though its
        // bytes were synced.
        sync_dir(&durable.dir).map_err(PersistError::from)?;
        for (_, path) in snapshot_paths(&durable.dir)
            .into_iter()
            .skip(self.snapshot_retain)
        {
            if std::fs::remove_file(path).is_ok() {
                let _ = sync_dir(&durable.dir);
            }
        }
        if compaction == CompactionPolicy::Covered {
            let plan = covered_prefix(&durable.dir);
            let out = delete_segments(&durable.dir, &plan, None)?;
            self.wal_stats.segments_deleted += out.segments_deleted;
            self.wal_stats.bytes_reclaimed += out.bytes_reclaimed;
        }
        Ok(())
    }

    /// Whether this service persists mutations (was opened with
    /// [`RankingService::open_durable`]).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Appends one operation to the WAL, stamped with the current
    /// (post-apply) KB epoch. No-op for non-durable services.
    fn log(&mut self, op: WalOp) -> Result<()> {
        if let Some(durable) = &mut self.durable {
            let out = durable.wal.append(self.kb.epoch(), &op, &self.kb.voc)?;
            self.wal_stats.records_appended += 1;
            self.wal_stats.bytes_appended += out.bytes;
            if out.rotated {
                self.wal_stats.rotations += 1;
            }
        }
        Ok(())
    }

    /// The engine every request scores through.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The knowledge base (read-only; mutations go through
    /// [`RankingService::assert`] and [`RankingService::individual`] so
    /// the service sees every epoch movement).
    pub fn kb(&self) -> &Kb {
        &self.kb
    }

    /// The rule repository (read-only; mutations go through
    /// [`RankingService::add_rule`] / [`RankingService::remove_rule`]).
    pub fn rules(&self) -> &RuleRepository {
        &self.rules
    }

    /// Interns (or looks up) an individual — users and documents alike
    /// must be registered before they appear in requests. Looking up an
    /// existing name is a KB no-op and leaves every cache warm.
    ///
    /// On a durable service a *new* registration (the KB epoch moved) is
    /// logged best-effort: the signature has no error channel, and replay
    /// degrades gracefully if the record is lost — a later record that
    /// references the unknown name truncates at that point rather than
    /// crashing.
    pub fn individual(&mut self, name: &str) -> IndividualId {
        let before = self.kb.epoch();
        let id = self.kb.individual(name);
        if self.kb.epoch() != before && self.durable.is_some() {
            let _ = self.log(WalOp::Individual {
                name: name.to_string(),
            });
        }
        id
    }

    /// Parses a concept expression against the service KB's vocabulary —
    /// the way to build [`PreferenceRule`]s for a service that was opened
    /// cold via [`RankingService::open_durable`] (name interning mutates
    /// the vocabulary, so the read-only [`RankingService::kb`] view cannot
    /// parse).
    pub fn parse(&mut self, text: &str) -> Result<Concept> {
        self.kb.parse(text)
    }

    /// Adds a preference rule. Affected bindings re-derive lazily on each
    /// tenant's next request (the binding cache validates per rule).
    pub fn add_rule(&mut self, rule: PreferenceRule) -> Result<()> {
        let op = self.durable.is_some().then(|| WalOp::AddRule {
            name: rule.name.clone(),
            context: rule.context.clone(),
            preference: rule.preference.clone(),
            sigma: rule.sigma.get(),
        });
        self.rules.add(rule)?;
        if let Some(op) = op {
            self.log(op)?;
        }
        Ok(())
    }

    /// Removes the named preference rule.
    ///
    /// On a durable service the removal is logged after it succeeds; if
    /// the append itself fails the in-memory removal stands and the error
    /// is returned — the caller knows durability lagged.
    pub fn remove_rule(&mut self, name: &str) -> Result<PreferenceRule> {
        let rule = self.rules.remove(name)?;
        self.log(WalOp::RemoveRule {
            name: name.to_string(),
        })?;
        Ok(rule)
    }

    /// Asserts a typed [`Fact`] — the context-switch path. Bumps the KB's
    /// binding epoch, so every tenant's stale bindings (and only those)
    /// re-derive on their next request. A rejected fact (e.g. an invalid
    /// probability) mutates nothing, does not count toward
    /// [`ServiceStats::asserts`], and is never logged.
    pub fn assert(&mut self, subject: IndividualId, fact: Fact) -> Result<()> {
        let op = self.durable.is_some().then(|| self.fact_op(subject, &fact));
        match fact {
            Fact::Concept(concept) => {
                self.kb.assert_concept(subject, &concept);
            }
            Fact::ConceptProb(concept, p) => {
                self.kb.assert_concept_prob(subject, &concept, p)?;
            }
            Fact::Role(role, object) => {
                self.kb.assert_role(subject, &role, object);
            }
            Fact::RoleProb(role, object, p) => {
                self.kb.assert_role_prob(subject, &role, object, p)?;
            }
        }
        self.asserts += 1;
        if let Some(op) = op {
            self.log(op)?;
        }
        Ok(())
    }

    /// Translates a [`Fact`] into its WAL operation, resolving IDs back to
    /// names so the record is stable across restarts.
    fn fact_op(&self, subject: IndividualId, fact: &Fact) -> WalOp {
        let subject = self.kb.voc.individual_name(subject).to_string();
        match fact {
            Fact::Concept(concept) => WalOp::AssertConcept {
                subject,
                concept: concept.clone(),
            },
            Fact::ConceptProb(concept, p) => WalOp::AssertConceptProb {
                subject,
                concept: concept.clone(),
                p: *p,
            },
            Fact::Role(role, object) => WalOp::AssertRole {
                subject,
                role: role.clone(),
                object: self.kb.voc.individual_name(*object).to_string(),
            },
            Fact::RoleProb(role, object, p) => WalOp::AssertRoleProb {
                subject,
                role: role.clone(),
                object: self.kb.voc.individual_name(*object).to_string(),
                p: *p,
            },
        }
    }

    /// Ranks `docs` for `user`, returning the top `k` (best first).
    ///
    /// `k >= docs.len()` ranks the full set through the tenant's score
    /// cache — the steady-state warm path is a table lookup plus a sort.
    /// `k < docs.len()` uses bound-based early termination
    /// ([`crate::rank_top_k`]); the adaptively chosen exact scores are not
    /// added to the score cache.
    ///
    /// Scores are bit-identical to a cold [`crate::bind_rules`] +
    /// `score_all` + [`crate::rank`] for the same user, whatever mix of
    /// caches serves the request.
    pub fn rank(
        &mut self,
        user: IndividualId,
        docs: &[IndividualId],
        k: usize,
    ) -> Result<Vec<DocScore>> {
        let mut scratch = None;
        let out = self.rank_with_scratch(user, docs, k, &mut scratch);
        self.finish_scratch(scratch);
        out
    }

    /// Ranks `docs` for a group of users — each member scored through
    /// their own tenant session, combined with `strategy` (see
    /// [`crate::score_group`]) — returning the top `k` of the combined
    /// ranking. Group aggregation needs every member's full score list, so
    /// `k` only truncates the final ranking.
    pub fn rank_group(
        &mut self,
        users: &[IndividualId],
        docs: &[IndividualId],
        k: usize,
        strategy: &GroupStrategy,
    ) -> Result<Vec<DocScore>> {
        let mut scratch = None;
        let out = self.rank_group_with_scratch(users, docs, k, strategy, &mut scratch);
        self.finish_scratch(scratch);
        out
    }

    /// Executes a request batch in order, coalescing every run of
    /// consecutive rank-shaped requests into one dispatch: with
    /// sequential dispatch the run shares a single lazily checked-out
    /// evaluation scratch and pays at most one snapshot republish, so
    /// every request after the first starts from its predecessors' memos
    /// for free; with [`ServiceConfig::threads`] > 1 uncached work fans
    /// out through the shared pool exactly as direct requests do (sharing
    /// then happens via the pool's republished snapshots). An
    /// [`Request::Assert`] bumps the KB epoch and therefore acts as a
    /// barrier between runs.
    ///
    /// Responses are returned in request order; a failed request yields
    /// its error without aborting the rest of the batch.
    pub fn submit(&mut self, batch: impl IntoIterator<Item = Request>) -> Vec<Result<Response>> {
        let mut out = Vec::new();
        let mut pending = Vec::new();
        for request in batch {
            match request {
                Request::Assert { subject, fact } => {
                    self.flush_run(&mut pending, &mut out);
                    out.push(self.assert(subject, fact).map(|()| Response::Asserted));
                }
                ranking => pending.push(ranking),
            }
        }
        self.flush_run(&mut pending, &mut out);
        out
    }

    /// Dispatches one coalesced run of rank-shaped requests (see
    /// [`RankingService::submit`]). The scratch is checked out lazily:
    /// a run answered entirely from score caches never touches the pool.
    fn flush_run(&mut self, pending: &mut Vec<Request>, out: &mut Vec<Result<Response>>) {
        if pending.is_empty() {
            return;
        }
        self.coalesced_runs += 1;
        let mut scratch = None;
        for request in pending.drain(..) {
            let response = match request {
                Request::Rank { user, docs, k } => self
                    .rank_with_scratch(user, &docs, k, &mut scratch)
                    .map(Response::Ranked),
                Request::RankGroup {
                    users,
                    docs,
                    k,
                    strategy,
                } => self
                    .rank_group_with_scratch(&users, &docs, k, &strategy, &mut scratch)
                    .map(Response::Ranked),
                Request::Assert { .. } => unreachable!("asserts flush the run"),
            };
            out.push(response);
        }
        self.finish_scratch(scratch);
    }

    /// Returns a lazily checked-out scratch to the pool and republishes
    /// its overlay; a `None` (the fully warm case — no evaluation ran)
    /// costs nothing.
    fn finish_scratch(&self, scratch: Option<EvalScratch>) {
        if let Some(scratch) = scratch {
            self.pool.give_back(scratch);
            self.pool.republish();
        }
    }

    /// The one request path behind [`RankingService::rank`] and the
    /// batched dispatch, over a lazily checked-out scratch: a
    /// steady-state warm request is answered from the score cache without
    /// ever touching the pool — same cost as a hand-managed session.
    /// Uncached work either uses the lazily checked-out scratch
    /// (sequential) or, with [`ServiceConfig::threads`] > 1, fans out
    /// through the shared pool directly — the same split for direct and
    /// batched requests, so batching never silently loses parallelism.
    /// The caller settles the scratch via
    /// [`RankingService::finish_scratch`].
    fn rank_with_scratch(
        &mut self,
        user: IndividualId,
        docs: &[IndividualId],
        k: usize,
        scratch: &mut Option<EvalScratch>,
    ) -> Result<Vec<DocScore>> {
        self.rank_requests += 1;
        let env = ScoringEnv {
            kb: &self.kb,
            rules: &self.rules,
            user,
        };
        let tenant = self.tenants.session(user);
        let bindings = tenant.bindings.bind(&env);
        if k < docs.len() {
            if self.threads > 1 {
                rank_top_k_bound_parallel(
                    &self.engine,
                    &env,
                    &bindings,
                    docs,
                    k,
                    self.threads,
                    &self.pool,
                    true,
                )
            } else {
                let scratch = scratch.get_or_insert_with(|| self.pool.checkout(&self.kb));
                rank_top_k_bound(&env, &self.engine, &bindings, docs, k, scratch)
            }
        } else {
            let scores = read_through_scores(
                &self.engine,
                user,
                self.pool.scoring(),
                &mut tenant.scores,
                docs,
                &bindings,
                |missing| {
                    if self.threads > 1 {
                        score_all_bound_parallel(
                            &self.engine,
                            &env,
                            &bindings,
                            missing,
                            self.threads,
                            &self.pool,
                            true,
                        )
                    } else {
                        let scratch = scratch.get_or_insert_with(|| self.pool.checkout(&self.kb));
                        self.engine
                            .score_all_bound(&env, &bindings, missing, scratch)
                    }
                },
            )?;
            Ok(rank(scores))
        }
    }

    /// The group path behind [`RankingService::rank_group`] and the
    /// batched dispatch (see [`RankingService::rank_with_scratch`] for
    /// the scratch and parallel-dispatch contract).
    ///
    /// With [`ServiceConfig::threads`] > 1 and more than one member, the
    /// *members* are the unit of parallelism: [`RankingService::group_fanout`]
    /// scores every member's uncached documents over the shared pool
    /// first, and the per-member read-through below then consumes those
    /// precomputed scores. Documents a member loses between the fan-out
    /// and their read-through (a mid-group LRU eviction re-derives the
    /// bindings, dropping the tenant's score entry) are scored again as
    /// `gaps` — rare, and bit-identical either way.
    fn rank_group_with_scratch(
        &mut self,
        users: &[IndividualId],
        docs: &[IndividualId],
        k: usize,
        strategy: &GroupStrategy,
        scratch: &mut Option<EvalScratch>,
    ) -> Result<Vec<DocScore>> {
        self.rank_requests += 1;
        let mut fanout = if self.threads > 1 && users.len() > 1 {
            self.group_fanout(users, docs)?
        } else {
            GroupFanout::default()
        };
        let computed = fanout.scores;
        let config = self.pool.scoring();
        let per_user = users
            .iter()
            .map(|&user| {
                let env = ScoringEnv {
                    kb: &self.kb,
                    rules: &self.rules,
                    user,
                };
                let tenant = self.tenants.session(user);
                if let Some(fresh) = fanout.bindings.remove(&user) {
                    tenant.bindings.seed(&env, &fresh);
                }
                let bindings = tenant.bindings.bind(&env);
                read_through_scores(
                    &self.engine,
                    user,
                    config,
                    &mut tenant.scores,
                    docs,
                    &bindings,
                    |missing| {
                        let ready = computed.get(&user);
                        let mut out = Vec::with_capacity(missing.len());
                        let mut gaps: Vec<IndividualId> = Vec::new();
                        for &doc in missing {
                            match ready.and_then(|scores| scores.get(&doc)) {
                                Some(&score) => out.push(DocScore { doc, score }),
                                None => gaps.push(doc),
                            }
                        }
                        if !gaps.is_empty() {
                            if self.threads > 1 {
                                out.extend(score_all_bound_parallel(
                                    &self.engine,
                                    &env,
                                    &bindings,
                                    &gaps,
                                    self.threads,
                                    &self.pool,
                                    true,
                                )?);
                            } else {
                                let scratch =
                                    scratch.get_or_insert_with(|| self.pool.checkout(&self.kb));
                                out.extend(
                                    self.engine
                                        .score_all_bound(&env, &bindings, &gaps, scratch)?,
                                );
                            }
                        }
                        Ok(out)
                    },
                )
            })
            .collect::<Result<Vec<_>>>()?;
        let mut ranked = rank(group_scores(&per_user, strategy)?);
        ranked.truncate(k);
        Ok(ranked)
    }

    /// The planning and scoring phases of the parallel group path: preview
    /// each *distinct* member's cached state without touching any counters
    /// ([`crate::session::BindingCache::peek`] and `peek_missing`), then
    /// fan the members with work out over the shared pool — workers claim
    /// members from an atomic cursor and keep one pooled scratch across
    /// claims, the same shape as parallel top-k's chunk stealing. Members
    /// whose binding cache is stale are *bound by their worker too*
    /// (binding is the per-member cost a cold group is dominated by); the
    /// derived bindings come back in [`GroupFanout::bindings`] so the
    /// read-through can seed them into the tenant instead of re-deriving
    /// sequentially. A stale binding also invalidates the member's score
    /// entry by pointer identity, so those members score every requested
    /// document. Memos travel between workers through the pool's
    /// republished snapshots. The counting cache pass happens afterwards,
    /// per member in request order, so counters and the surviving error
    /// (the minimum member index's) match the sequential path exactly.
    fn group_fanout(
        &mut self,
        users: &[IndividualId],
        docs: &[IndividualId],
    ) -> Result<GroupFanout> {
        let config = self.pool.scoring();
        let mut seen = HashSet::new();
        type PlanEntry = (
            IndividualId,
            Option<Vec<Arc<RuleBinding>>>,
            Vec<IndividualId>,
        );
        let mut plan: Vec<PlanEntry> = Vec::new();
        for &user in users {
            if !seen.insert(user) {
                continue;
            }
            let env = ScoringEnv {
                kb: &self.kb,
                rules: &self.rules,
                user,
            };
            let tenant = self.tenants.session(user);
            match tenant.bindings.peek(&env) {
                Some(bindings) => {
                    let missing = tenant.scores.peek_missing(
                        &score_key(&self.engine, user, config),
                        &bindings,
                        docs,
                    );
                    if !missing.is_empty() {
                        plan.push((user, Some(bindings), missing));
                    }
                }
                None => plan.push((user, None, docs.to_vec())),
            }
        }
        if plan.is_empty() {
            return Ok(GroupFanout::default());
        }
        let engine = &self.engine;
        let kb = &self.kb;
        let rules = &self.rules;
        let pool = &self.pool;
        let plan_ref = &plan;
        let threads = effective_threads(self.threads, plan.len());
        let cursor = AtomicUsize::new(0);
        // Raised by the first worker that hits an engine error: the rest
        // stop claiming members instead of scoring doomed ones.
        let failed = AtomicBool::new(false);
        type WorkerItem = (usize, Result<Vec<DocScore>>, Option<Vec<Arc<RuleBinding>>>);
        let worker_outputs: Vec<Vec<WorkerItem>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let failed = &failed;
                    scope.spawn(move || {
                        let mut scratch = pool.checkout(kb);
                        let mut out = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= plan_ref.len() {
                                break;
                            }
                            let (user, cached, missing) = &plan_ref[i];
                            let env = ScoringEnv {
                                kb,
                                rules,
                                user: *user,
                            };
                            let fresh = match cached {
                                Some(_) => None,
                                None => Some(bind_rules_shared(&env)),
                            };
                            let bindings = cached
                                .as_deref()
                                .or(fresh.as_deref())
                                .expect("either cached or freshly derived bindings");
                            let result =
                                engine.score_all_bound(&env, bindings, missing, &mut scratch);
                            let stop = result.is_err();
                            if stop {
                                failed.store(true, Ordering::Relaxed);
                            }
                            out.push((i, result, fresh));
                            if stop {
                                break;
                            }
                        }
                        pool.give_back(scratch);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group scoring worker panicked"))
                .collect()
        });
        self.pool.republish();
        let mut fanout = GroupFanout::default();
        let mut first_err: Option<(usize, crate::CoreError)> = None;
        for (i, result, fresh) in worker_outputs.into_iter().flatten() {
            if let Some(bindings) = fresh {
                fanout.bindings.insert(plan[i].0, bindings);
            }
            match result {
                Ok(scores) => {
                    fanout.scores.insert(
                        plan[i].0,
                        scores.into_iter().map(|s| (s.doc, s.score)).collect(),
                    );
                }
                Err(e) => {
                    let earlier = match &first_err {
                        None => true,
                        Some((j, _)) => i < *j,
                    };
                    if earlier {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(fanout),
        }
    }

    /// Service-wide counters and footprints (see [`ServiceStats`]).
    pub fn stats(&self) -> ServiceStats {
        let mut sessions = self.tenants.total_stats();
        sessions.footprint = self.pool.footprint();
        sessions.batch = self.pool.batch_stats();
        ServiceStats {
            sessions_live: self.tenants.live(),
            sessions_evicted: self.tenants.evicted(),
            rank_requests: self.rank_requests,
            asserts: self.asserts,
            coalesced_runs: self.coalesced_runs,
            wal: self.wal_stats,
            sessions,
        }
    }

    /// One tenant's cache counters, if their session is currently live
    /// (the footprint field is zero — evaluation memos are shared
    /// service-wide and reported by [`RankingService::stats`]).
    pub fn tenant_stats(&self, user: IndividualId) -> Option<SessionStats> {
        self.tenants.stats_of(user)
    }

    /// Drops every tenant session and the shared snapshot tier, and
    /// resets all [`ServiceStats`] counters — post-clear stats describe
    /// the fresh service only, matching the clear semantics of the cache
    /// layers below. Engine, KB, rules and configuration are kept, and
    /// results are unaffected: subsequent requests recompute
    /// bit-identical scores.
    ///
    /// On a durable service the WAL stays attached and open: the log file
    /// is untouched (it still reflects the KB and rules, which `clear`
    /// keeps), sequence numbers continue where they left off, and only the
    /// [`WalStats`] counters reset with the other stats.
    pub fn clear(&mut self) {
        self.tenants.clear();
        self.pool = ScratchPool::with_config(self.pool.policy(), self.pool.scoring());
        self.rank_requests = 0;
        self.asserts = 0;
        self.coalesced_runs = 0;
        self.wal_stats = WalStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{score_group, LineageEngine, PreferenceRule, Score, ScoringSession};

    fn fixture(
        n_users: usize,
        n_docs: usize,
    ) -> (Kb, RuleRepository, Vec<IndividualId>, Vec<IndividualId>) {
        let mut kb = Kb::new();
        let users: Vec<_> = (0..n_users)
            .map(|i| {
                let u = kb.individual(&format!("user{i}"));
                kb.assert_concept_prob(u, "Ctx0", 0.2 + 0.5 * (i as f64 / n_users as f64))
                    .unwrap();
                if i % 2 == 0 {
                    kb.assert_concept(u, "Ctx1");
                }
                u
            })
            .collect();
        let docs: Vec<_> = (0..n_docs)
            .map(|i| {
                let d = kb.individual(&format!("doc{i}"));
                kb.assert_concept_prob(d, "Feat0", 0.1 + 0.8 * (i as f64 / n_docs as f64))
                    .unwrap();
                kb.assert_concept_prob(d, "Feat1", 0.9 - 0.7 * (i as f64 / n_docs as f64))
                    .unwrap();
                d
            })
            .collect();
        let mut rules = RuleRepository::new();
        rules
            .add(PreferenceRule::new(
                "R0",
                kb.parse("Ctx0").unwrap(),
                kb.parse("Feat0").unwrap(),
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        rules
            .add(PreferenceRule::new(
                "R1",
                kb.parse("Ctx1").unwrap(),
                kb.parse("Feat0 AND Feat1").unwrap(),
                Score::new(0.4).unwrap(),
            ))
            .unwrap();
        (kb, rules, users, docs)
    }

    /// The cold reference a service `rank` must reproduce bit-for-bit.
    fn cold_rank(
        kb: &Kb,
        rules: &RuleRepository,
        user: IndividualId,
        docs: &[IndividualId],
        k: usize,
    ) -> Vec<DocScore> {
        let env = ScoringEnv { kb, rules, user };
        let mut full = rank(LineageEngine::new().score_all(&env, docs).unwrap());
        full.truncate(k);
        full
    }

    #[test]
    fn warm_rank_is_bit_identical_and_cached() {
        let (kb, rules, users, docs) = fixture(3, 12);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        for &user in &users {
            let want = cold_rank(service.kb(), &rules, user, &docs, docs.len());
            let cold = service.rank(user, &docs, docs.len()).unwrap();
            let warm = service.rank(user, &docs, docs.len()).unwrap();
            for ((a, b), c) in want.iter().zip(&cold).zip(&warm) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(b.doc, c.doc);
                assert_eq!(b.score.to_bits(), c.score.to_bits());
            }
        }
        let stats = service.stats();
        assert_eq!(stats.sessions_live, users.len());
        assert_eq!(stats.rank_requests, 2 * users.len() as u64);
        assert!(
            stats.sessions.scores.hits >= (users.len() * docs.len()) as u64,
            "second round is served from the score caches: {:?}",
            stats.sessions
        );
        assert!(stats.sessions.bindings.hit_rate() > 0.0);
    }

    #[test]
    fn top_k_is_exact_prefix() {
        // The lineage engine: exact under the fixture's correlated rules
        // (both share each document's Feat0 variable, which the strict
        // factorized engine rejects by design).
        let (kb, rules, users, docs) = fixture(2, 16);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        for k in [1, 5, 16, 99] {
            let engine = LineageEngine::new();
            let env = ScoringEnv {
                kb: service.kb(),
                rules: &rules,
                user: users[0],
            };
            let mut want = rank(engine.score_all(&env, &docs).unwrap());
            want.truncate(k);
            let got = service.rank(users[0], &docs, k).unwrap();
            assert_eq!(got.len(), k.min(docs.len()));
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.doc, b.doc, "k={k}");
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn rank_group_matches_score_group() {
        let (kb, rules, users, docs) = fixture(4, 10);
        let strategy = GroupStrategy::LeastMisery;
        let mut session = ScoringSession::new();
        let want = rank(
            score_group(
                &mut session,
                &LineageEngine::new(),
                &kb,
                &rules,
                &users,
                &docs,
                &strategy,
            )
            .unwrap(),
        );
        let mut service = RankingService::new(LineageEngine::new(), kb, rules);
        let got = service
            .rank_group(&users, &docs, docs.len(), &strategy)
            .unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // Truncation only shortens the list.
        let top3 = service.rank_group(&users, &docs, 3, &strategy).unwrap();
        assert_eq!(&got[..3], &top3[..]);
    }

    #[test]
    fn batch_coalesces_runs_and_preserves_order() {
        let (kb, rules, users, docs) = fixture(3, 8);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules);
        let batch = vec![
            Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: docs.len(),
            },
            Request::Rank {
                user: users[1],
                docs: docs.clone(),
                k: 4,
            },
            Request::Assert {
                subject: users[0],
                fact: Fact::ConceptProb("Ctx0".into(), 0.9),
            },
            Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: docs.len(),
            },
            Request::RankGroup {
                users: users.clone(),
                docs: docs.clone(),
                k: 3,
                strategy: GroupStrategy::Product,
            },
        ];
        let responses = service.submit(batch);
        assert_eq!(responses.len(), 5);
        assert!(matches!(responses[2], Ok(Response::Asserted)));
        let stats = service.stats();
        assert_eq!(
            stats.coalesced_runs, 2,
            "two rank runs separated by the assert barrier"
        );
        assert_eq!(stats.rank_requests, 4);
        assert_eq!(stats.asserts, 1);
        // Each ranked response equals the cold reference *at its point in
        // the batch*: the last one sees the asserted context switch.
        let want = cold_rank(service.kb(), service.rules(), users[0], &docs, docs.len());
        let got = responses[3].as_ref().unwrap().ranked().unwrap();
        for (a, b) in want.iter().zip(got) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        // The batched group request (after the barrier) matches the direct
        // group call on an identically-prepared service.
        let want_group = service
            .rank_group(&users, &docs, 3, &GroupStrategy::Product)
            .unwrap();
        let got_group = responses[4].as_ref().unwrap().ranked().unwrap();
        assert_eq!(got_group.len(), 3);
        for (a, b) in want_group.iter().zip(got_group) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn batch_errors_do_not_abort_the_rest() {
        let (kb, rules, users, docs) = fixture(2, 6);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules);
        let batch = vec![
            Request::Assert {
                subject: users[0],
                fact: Fact::ConceptProb("Ctx0".into(), 1.5), // invalid probability
            },
            Request::Rank {
                user: users[0],
                docs: docs.clone(),
                k: docs.len(),
            },
        ];
        let responses = service.submit(batch);
        assert!(responses[0].is_err(), "invalid probability is rejected");
        assert!(responses[1].is_ok(), "the batch continues past the error");
        assert_eq!(
            service.stats().asserts,
            0,
            "a rejected fact mutates nothing and is not counted as asserted"
        );
    }

    #[test]
    fn lru_eviction_is_invisible_in_results() {
        let (kb, rules, users, docs) = fixture(4, 8);
        let mut service = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules.clone(),
            ServiceConfig {
                max_sessions: 2,
                ..ServiceConfig::default()
            },
        );
        // Cycle users so every request past the first two evicts someone.
        for round in 0..3 {
            for &user in &users {
                let want = cold_rank(service.kb(), &rules, user, &docs, docs.len());
                let got = service.rank(user, &docs, docs.len()).unwrap();
                for (a, b) in want.iter().zip(&got) {
                    assert_eq!(a.doc, b.doc, "round {round}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
        let stats = service.stats();
        assert_eq!(stats.sessions_live, 2, "cap holds");
        assert!(stats.sessions_evicted >= 4, "cycling 4 users over cap 2");
    }

    #[test]
    fn parallel_dispatch_matches_sequential() {
        let (kb, rules, users, docs) = fixture(2, 24);
        let mut seq = RankingService::new(LineageEngine::new(), kb.clone(), rules.clone());
        let mut par = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules,
            ServiceConfig {
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        for &user in &users {
            for k in [4, docs.len()] {
                let a = seq.rank(user, &docs, k).unwrap();
                let b = par.rank(user, &docs, k).unwrap();
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.doc, y.doc);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
        // Batched dispatch honours the thread count too: a batch through
        // the parallel service matches the sequential one bit for bit.
        let batch = |docs: &[IndividualId]| {
            vec![
                Request::Assert {
                    subject: users[0],
                    fact: Fact::ConceptProb("Ctx0".into(), 0.85),
                },
                Request::Rank {
                    user: users[0],
                    docs: docs.to_vec(),
                    k: 6,
                },
                Request::RankGroup {
                    users: users.to_vec(),
                    docs: docs.to_vec(),
                    k: docs.len(),
                    strategy: GroupStrategy::Product,
                },
            ]
        };
        let a = seq.submit(batch(&docs));
        let b = par.submit(batch(&docs));
        for (x, y) in a.iter().zip(&b) {
            match (x.as_ref().unwrap(), y.as_ref().unwrap()) {
                (Response::Asserted, Response::Asserted) => {}
                (Response::Ranked(xs), Response::Ranked(ys)) => {
                    assert_eq!(xs.len(), ys.len());
                    for (s, t) in xs.iter().zip(ys) {
                        assert_eq!(s.doc, t.doc);
                        assert_eq!(s.score.to_bits(), t.score.to_bits());
                    }
                }
                other => panic!("response shape mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_counters_surface_in_service_stats() {
        let (kb, rules, users, docs) = fixture(2, 8);
        let mut columnar = RankingService::new(LineageEngine::new(), kb.clone(), rules.clone());
        columnar.rank(users[0], &docs, docs.len()).unwrap();
        let batch = columnar.stats().sessions.batch;
        assert!(batch.sweeps > 0, "a full-set rank runs column sweeps");
        assert_eq!(batch.lanes, docs.len() as u64, "one lane per document");
        assert!(batch.fallbacks <= batch.lanes, "dedup never exceeds lanes");
        assert!(batch.lanes_per_sweep() > 1.0, "lanes amortize the sweep");

        // The same request through a scalar-pinned service records nothing
        // — the counters attribute work to the path that did it.
        let mut scalar = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules,
            ServiceConfig {
                scoring: ScoringConfig::scalar(),
                ..ServiceConfig::default()
            },
        );
        scalar.rank(users[0], &docs, docs.len()).unwrap();
        assert_eq!(scalar.stats().sessions.batch, crate::BatchStats::default());
    }

    #[test]
    fn group_fanout_matches_sequential_groups() {
        // The member fan-out (threads > 1) against the sequential group
        // path, including duplicate members and an LRU cap smaller than
        // the group — the mid-group eviction hazard the phased design
        // covers with its gap recompute.
        let (kb, rules, users, docs) = fixture(4, 12);
        let members: Vec<_> = users.iter().copied().chain([users[1]]).collect();
        let mut seq = RankingService::new(LineageEngine::new(), kb.clone(), rules.clone());
        let mut fan = RankingService::with_config(
            LineageEngine::new(),
            kb,
            rules,
            ServiceConfig {
                max_sessions: 2,
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        for strategy in [GroupStrategy::Product, GroupStrategy::LeastMisery] {
            let want = seq
                .rank_group(&members, &docs, docs.len(), &strategy)
                .unwrap();
            let got = fan
                .rank_group(&members, &docs, docs.len(), &strategy)
                .unwrap();
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        assert!(
            fan.stats().sessions.batch.sweeps > 0,
            "the fan-out's pooled scratches feed the batch counters"
        );
    }

    #[test]
    fn clear_drops_state_but_keeps_serving() {
        let (kb, rules, users, docs) = fixture(2, 8);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules.clone());
        let before = service.rank(users[0], &docs, docs.len()).unwrap();
        assert!(service.stats().sessions.footprint.entries > 0);
        service.clear();
        let stats = service.stats();
        assert_eq!(stats.sessions_live, 0);
        assert_eq!(stats.sessions.footprint.entries, 0);
        assert_eq!(
            (stats.rank_requests, stats.asserts, stats.coalesced_runs),
            (0, 0, 0),
            "clear resets the request counters with the caches, so one \
             stats snapshot never mixes pre- and post-clear epochs"
        );
        let after = service.rank(users[0], &docs, docs.len()).unwrap();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn rule_updates_apply_to_subsequent_requests() {
        let (kb, rules, users, docs) = fixture(1, 6);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules);
        let before = service.rank(users[0], &docs, docs.len()).unwrap();
        let removed = service.remove_rule("R0").unwrap();
        let after = service.rank(users[0], &docs, docs.len()).unwrap();
        assert_ne!(
            before.iter().map(|s| s.score.to_bits()).collect::<Vec<_>>(),
            after.iter().map(|s| s.score.to_bits()).collect::<Vec<_>>(),
            "dropping an applicable rule changes scores"
        );
        service.add_rule(removed).unwrap();
        let restored = service.rank(users[0], &docs, docs.len()).unwrap();
        for (a, b) in before.iter().zip(&restored) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    /// Fresh scratch directory for a durability test (removed first, so a
    /// previous failed run can't leak state in).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("capra-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Builds the `fixture(3, 8)` state through the durable mutation API,
    /// so every step lands in the WAL.
    fn populate_durable(
        service: &mut RankingService<LineageEngine>,
    ) -> (Vec<IndividualId>, Vec<IndividualId>) {
        let (n_users, n_docs) = (3, 8);
        let users: Vec<_> = (0..n_users)
            .map(|i| {
                let u = service.individual(&format!("user{i}"));
                service
                    .assert(
                        u,
                        Fact::ConceptProb("Ctx0".into(), 0.2 + 0.5 * (i as f64 / n_users as f64)),
                    )
                    .unwrap();
                if i % 2 == 0 {
                    service.assert(u, Fact::Concept("Ctx1".into())).unwrap();
                }
                u
            })
            .collect();
        let docs: Vec<_> = (0..n_docs)
            .map(|i| {
                let d = service.individual(&format!("doc{i}"));
                service
                    .assert(
                        d,
                        Fact::ConceptProb("Feat0".into(), 0.1 + 0.8 * (i as f64 / n_docs as f64)),
                    )
                    .unwrap();
                service
                    .assert(
                        d,
                        Fact::ConceptProb("Feat1".into(), 0.9 - 0.7 * (i as f64 / n_docs as f64)),
                    )
                    .unwrap();
                d
            })
            .collect();
        let (ctx0, feat0) = (
            service.parse("Ctx0").unwrap(),
            service.parse("Feat0").unwrap(),
        );
        service
            .add_rule(PreferenceRule::new(
                "R0",
                ctx0,
                feat0,
                Score::new(0.8).unwrap(),
            ))
            .unwrap();
        let (ctx1, both) = (
            service.parse("Ctx1").unwrap(),
            service.parse("Feat0 AND Feat1").unwrap(),
        );
        service
            .add_rule(PreferenceRule::new(
                "R1",
                ctx1,
                both,
                Score::new(0.4).unwrap(),
            ))
            .unwrap();
        (users, docs)
    }

    #[test]
    fn durable_snapshot_plus_wal_suffix_restores_bit_identical_scores() {
        let dir = scratch_dir("roundtrip");
        let mut service = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        assert!(service.is_durable());
        let (users, docs) = populate_durable(&mut service);
        for &u in &users {
            service.rank(u, &docs, docs.len()).unwrap();
        }
        service.save_snapshot().unwrap();
        // Post-snapshot mutations land only in the WAL.
        service
            .assert(users[1], Fact::ConceptProb("Ctx0".into(), 0.99))
            .unwrap();
        service.remove_rule("R1").unwrap();
        let want: Vec<Vec<DocScore>> = users
            .iter()
            .map(|&u| service.rank(u, &docs, docs.len()).unwrap())
            .collect();
        let epoch = service.kb().epoch();
        drop(service); // crash point: nothing after the last append survives

        let mut restored = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        assert_eq!(restored.kb().epoch(), epoch);
        let wal = restored.stats().wal;
        assert_eq!(
            (wal.records_replayed, wal.records_truncated),
            (2, 0),
            "only the post-snapshot suffix replays: {wal:?}"
        );
        // Snapshot-covered tenants boot warm: the first rank adds no new
        // binding misses.
        for &u in &users {
            let u = restored
                .kb()
                .voc
                .find_individual(restored.kb().voc.individual_name(u))
                .unwrap();
            let misses_at_boot = restored.tenant_stats(u).unwrap().bindings.misses;
            restored.rank(u, &docs, docs.len()).unwrap();
            assert_eq!(
                restored.tenant_stats(u).unwrap().bindings.misses,
                misses_at_boot,
                "warm-seeded tenant must not cold-bind on its first rank"
            );
        }
        for (&u, want) in users.iter().zip(&want) {
            let got = restored.rank(u, &docs, docs.len()).unwrap();
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_keeps_wal_attached_and_sequence_continuous() {
        let dir = scratch_dir("clear");
        let mut service = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        let (users, _docs) = populate_durable(&mut service);
        let appended_before = service.stats().wal.records_appended;
        assert!(appended_before > 0);

        service.clear();
        assert_eq!(
            service.stats().wal,
            WalStats::default(),
            "clear resets WAL counters with the other stats"
        );
        assert!(service.is_durable(), "clear must not detach the log");
        assert_eq!(service.rules().len(), 2, "clear keeps KB and rules");

        // Post-clear mutations keep appending to the same log...
        service
            .assert(users[0], Fact::ConceptProb("Ctx0".into(), 0.5))
            .unwrap();
        assert_eq!(service.stats().wal.records_appended, 1);
        let epoch = service.kb().epoch();
        drop(service);

        // ...and the sequence numbering stayed continuous: recovery (which
        // enforces seq continuity) replays every record, before and after
        // the clear.
        let restored = RankingService::open_durable(
            LineageEngine::new(),
            ServiceConfig::default(),
            &dir,
            FlushPolicy::EveryRecord,
        )
        .unwrap();
        let wal = restored.stats().wal;
        assert_eq!(wal.records_truncated, 0, "{wal:?}");
        assert_eq!(wal.records_replayed, appended_before + 1, "{wal:?}");
        assert_eq!(restored.kb().epoch(), epoch);
        assert_eq!(restored.rules().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_snapshot_requires_durable_service() {
        let (kb, rules, _, _) = fixture(1, 2);
        let mut service = RankingService::new(LineageEngine::new(), kb, rules);
        assert!(!service.is_durable());
        assert!(service.save_snapshot().is_err());
    }
}
