//! Deterministic workload replay: drive a [`RankingService`] with a
//! [`Workload`] file and hash the resulting ranking transcript.
//!
//! ## Determinism contract
//!
//! Replaying the same workload file against a freshly built service —
//! same engine, any cache/eviction configuration — produces a
//! **bit-identical transcript**: every response, in file order, with
//! every score at the exact same bits. That holds because
//!
//! * records are applied strictly in file order on one thread of
//!   control ([`RankingService::submit`] preserves request order and
//!   asserts act as epoch barriers),
//! * individual names resolve in a deterministic first-occurrence
//!   order, so the interned handle order is a pure function of the file,
//! * service caches and eviction never change a score, only who pays to
//!   derive it (property-tested in `tests/serve_consistency.rs` and
//!   `tests/eviction_bounded.rs`).
//!
//! The transcript is summarized as an FNV-1a hash over (record tag,
//! document *names*, score bits, error text) — stable across processes,
//! so `generate && replay && replay` diffing equal hashes is a CI-able
//! guard (`tests/workload_replay.rs` and the `xtask` CLI both lean on
//! it).

use std::collections::HashMap;
use std::fmt;

use capra_dl::IndividualId;

use crate::engines::ScoringEngine;
use crate::persist::workload::{Fnv64, Workload, WorkloadFact, WorkloadRecord};
use crate::serve::request::{Fact, Request, Response};
use crate::serve::service::{RankingService, ServiceConfig};
use crate::Result;

/// Records submitted per [`RankingService::submit`] batch during replay.
/// Purely a memory bound: submission is in-order and asserts are batch
/// barriers anyway, so the chunk size never changes the transcript.
const REPLAY_CHUNK: usize = 256;

/// Builds a service primed with a workload's initial KB and rules —
/// the canonical "replay target" constructor. The workload keeps its
/// own copies; the clone gets a fresh KB identity so no cache state can
/// leak between services built from one workload.
pub fn workload_service<E: ScoringEngine + Sync>(
    engine: E,
    config: ServiceConfig,
    workload: &Workload,
) -> RankingService<E> {
    RankingService::with_config(engine, workload.kb.clone(), workload.rules.clone(), config)
}

/// The outcome of one replay: request accounting plus the transcript
/// hash (see the `serve::replay` module docs for what the hash covers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// FNV-1a 64 over the full response transcript.
    pub transcript_hash: u64,
    /// Total records replayed.
    pub requests: u64,
    /// Single-user rank requests.
    pub ranks: u64,
    /// Group rank requests.
    pub group_ranks: u64,
    /// Context events applied.
    pub asserts: u64,
    /// Requests that returned an error (errors are part of the
    /// transcript — a deterministic rejection hashes identically too).
    pub errors: u64,
    /// Total ranked documents returned across all rank responses.
    pub docs_ranked: u64,
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transcript {:#018x}: {} requests ({} rank, {} group, {} assert), \
             {} docs ranked, {} errors",
            self.transcript_hash,
            self.requests,
            self.ranks,
            self.group_ranks,
            self.asserts,
            self.docs_ranked,
            self.errors
        )
    }
}

/// Replays `workload` against `service`, in file order, and returns the
/// transcript report.
///
/// The service is normally one built by [`workload_service`] (or a
/// durable/replica restore of the same state); names absent from the
/// service's KB are registered on the fly in first-occurrence order, so
/// replay is total — it never fails on an unknown name, and per-request
/// errors are recorded in the transcript instead of aborting the run.
///
/// ```
/// use capra_core::persist::{Workload, WorkloadMeta, WorkloadRecord};
/// use capra_core::serve::{replay_workload, workload_service};
/// use capra_core::{FactorizedEngine, Kb, PreferenceRule, RuleRepository, Score};
///
/// let mut kb = Kb::new();
/// let u = kb.individual("u");
/// let d = kb.individual("d");
/// kb.assert_concept_prob(u, "Ctx", 0.7).unwrap();
/// kb.assert_concept_prob(d, "Feat", 0.9).unwrap();
/// let mut rules = RuleRepository::new();
/// rules.add(PreferenceRule::new(
///     "R", kb.parse("Ctx").unwrap(), kb.parse("Feat").unwrap(),
///     Score::new(0.8).unwrap(),
/// )).unwrap();
/// let w = Workload {
///     meta: WorkloadMeta::default(),
///     kb,
///     rules,
///     records: vec![WorkloadRecord::Rank { user: "u".into(), docs: vec!["d".into()], k: 1 }],
/// };
///
/// let a = replay_workload(&workload_service(FactorizedEngine::new(), Default::default(), &w), &w).unwrap();
/// let b = replay_workload(&workload_service(FactorizedEngine::new(), Default::default(), &w), &w).unwrap();
/// assert_eq!(a.transcript_hash, b.transcript_hash); // bit-identical replays
/// ```
pub fn replay_workload<E: ScoringEngine + Sync>(
    service: &RankingService<E>,
    workload: &Workload,
) -> Result<ReplayReport> {
    // Resolve every name once, in deterministic first-occurrence order.
    // Registration order is part of the determinism contract (it fixes
    // the interned handle order), which is why resolution is hoisted out
    // of the request loop instead of interleaved with it.
    let mut ids: HashMap<&str, IndividualId> = HashMap::new();
    for record in &workload.records {
        match record {
            WorkloadRecord::Assert { subject, fact } => {
                resolve(service, &mut ids, subject);
                if let WorkloadFact::Role(_, object) | WorkloadFact::RoleProb(_, object, _) = fact {
                    resolve(service, &mut ids, object);
                }
            }
            WorkloadRecord::Rank { user, docs, .. } => {
                resolve(service, &mut ids, user);
                for doc in docs {
                    resolve(service, &mut ids, doc);
                }
            }
            WorkloadRecord::RankGroup { users, docs, .. } => {
                for user in users {
                    resolve(service, &mut ids, user);
                }
                for doc in docs {
                    resolve(service, &mut ids, doc);
                }
            }
        }
    }
    // All names are registered now; this snapshot's vocabulary covers
    // every id the transcript will mention.
    let kb = service.kb();

    let mut report = ReplayReport::default();
    let mut hasher = Fnv64::new();
    for chunk in workload.records.chunks(REPLAY_CHUNK) {
        let requests: Vec<Request> = chunk.iter().map(|r| to_request(r, &ids)).collect();
        for (record, outcome) in chunk.iter().zip(service.submit(requests)) {
            report.requests += 1;
            match record {
                WorkloadRecord::Assert { .. } => {
                    report.asserts += 1;
                    hasher.update(b"A");
                }
                WorkloadRecord::Rank { .. } => {
                    report.ranks += 1;
                    hasher.update(b"R");
                }
                WorkloadRecord::RankGroup { .. } => {
                    report.group_ranks += 1;
                    hasher.update(b"G");
                }
            }
            match outcome {
                Ok(Response::Asserted) => hasher.update(b"ok"),
                Ok(Response::Ranked(scores)) => {
                    hasher.update_u64(scores.len() as u64);
                    report.docs_ranked += scores.len() as u64;
                    for s in &scores {
                        let name = kb.voc.individual_name(s.doc);
                        hasher.update_u64(name.len() as u64);
                        hasher.update(name.as_bytes());
                        hasher.update_u64(s.score.to_bits());
                    }
                }
                Err(e) => {
                    report.errors += 1;
                    let text = e.to_string();
                    hasher.update(b"E");
                    hasher.update_u64(text.len() as u64);
                    hasher.update(text.as_bytes());
                }
            }
        }
    }
    report.transcript_hash = hasher.finish();
    Ok(report)
}

/// Registers `name` with the service on first sight and records its id.
/// Registration goes through [`RankingService::individual`], which is a
/// no-op (and epoch-neutral) for names the KB already knows.
fn resolve<'w, E: ScoringEngine + Sync>(
    service: &RankingService<E>,
    ids: &mut HashMap<&'w str, IndividualId>,
    name: &'w str,
) {
    if !ids.contains_key(name) {
        let id = service.individual(name);
        ids.insert(name, id);
    }
}

/// Translates a name-carrying workload record into a service request,
/// using the pre-resolved id map (every name is present — resolution
/// walked the same records).
fn to_request(record: &WorkloadRecord, ids: &HashMap<&str, IndividualId>) -> Request {
    let id = |name: &str| ids[name];
    match record {
        WorkloadRecord::Assert { subject, fact } => Request::Assert {
            subject: id(subject),
            fact: match fact {
                WorkloadFact::Concept(c) => Fact::Concept(c.clone()),
                WorkloadFact::ConceptProb(c, p) => Fact::ConceptProb(c.clone(), *p),
                WorkloadFact::Role(role, object) => Fact::Role(role.clone(), id(object)),
                WorkloadFact::RoleProb(role, object, p) => {
                    Fact::RoleProb(role.clone(), id(object), *p)
                }
            },
        },
        WorkloadRecord::Rank { user, docs, k } => Request::Rank {
            user: id(user),
            docs: docs.iter().map(|d| id(d.as_str())).collect(),
            k: *k as usize,
        },
        WorkloadRecord::RankGroup {
            users,
            docs,
            k,
            strategy,
        } => Request::RankGroup {
            users: users.iter().map(|u| id(u.as_str())).collect(),
            docs: docs.iter().map(|d| id(d.as_str())).collect(),
            k: *k as usize,
            strategy: strategy.clone(),
        },
    }
}
