//! Byte-level primitives shared by the snapshot and WAL formats: a
//! little-endian [`Writer`] / [`Reader`] pair, the CRC32 used for all
//! integrity checks, and `[len][crc][payload]` section framing.

use super::PersistError;

/// CRC32 (IEEE, reflected, polynomial `0xEDB88320`) over `bytes`. Bitwise
/// (no table) — the payloads checksummed here are small enough that table
/// lookup buys nothing worth the extra state.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append-only little-endian byte sink. The encode half never fails: it
/// writes into memory and the caller decides where the bytes go.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A float as its raw IEEE-754 bits — round-trips bit-exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A string as `u32` byte length + UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source over a borrowed slice. Every
/// read returns `Err(PersistError::Truncated)` instead of panicking when
/// the input is short.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Invalid("string is not valid UTF-8".into()))
    }

    /// Asserts the input was consumed exactly — trailing garbage after a
    /// correctly framed value means the frame length lied.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Invalid(format!(
                "{} trailing byte(s) after the last value",
                self.remaining()
            )))
        }
    }
}

/// Appends a `[u32 len][u32 crc32][payload]` section frame.
pub(crate) fn put_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one section frame, verifying its CRC, and returns the payload.
pub(crate) fn read_section<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], PersistError> {
    let len = r.u32()? as usize;
    let expected = r.u32()?;
    let payload = r.take(len)?;
    let found = crc32(payload);
    if found != expected {
        return Err(PersistError::ChecksumMismatch { expected, found });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalars_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(u64::MAX - 3);
        w.f64(0.1 + 0.2);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn short_reads_report_truncation_not_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(
            r.u32(),
            Err(PersistError::Truncated {
                needed: 4,
                available: 2
            })
        ));
        // A lying string length is a truncation too.
        let mut w = Writer::new();
        w.u32(100);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str(), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn section_framing_detects_corruption() {
        let mut out = Vec::new();
        put_section(&mut out, b"payload");
        let mut ok = Reader::new(&out);
        assert_eq!(read_section(&mut ok).unwrap(), b"payload");
        ok.finish().unwrap();

        let mut flipped = out.clone();
        *flipped.last_mut().unwrap() ^= 0x10;
        let mut r = Reader::new(&flipped);
        assert!(matches!(
            read_section(&mut r),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        let mut r = Reader::new(&out[..out.len() - 2]);
        assert!(matches!(
            read_section(&mut r),
            Err(PersistError::Truncated { .. })
        ));
    }
}
